//! Extending G-OLA with user-defined functions and aggregates (paper §2:
//! "user-defined functions and aggregates").
//!
//! Registers a scalar UDF (`clamp01`) and a UDAF (`harmonic_mean`) and runs
//! them online — the UDAF automatically gets bootstrap confidence intervals
//! and participates in multiset semantics with zero extra work.
//!
//! Run with: `cargo run --release --example udaf_and_udf`

use std::sync::Arc;

use g_ola::agg::{Udaf, UdafRegistry, UdafState};
use g_ola::common::{DataType, Error, Result, Value};
use g_ola::core::{OnlineConfig, OnlineExecutor};
use g_ola::expr::{FunctionRegistry, ScalarFn};
use g_ola::plan::MetaPlan;
use g_ola::sql::{parse_select, Binder};
use g_ola::storage::{Catalog, MiniBatchPartitioner, Partitioner};
use g_ola::workloads::ConvivaGenerator;

/// Scalar UDF: clamp a ratio into [0, 1].
struct Clamp01;

impl ScalarFn for Clamp01 {
    fn call(&self, args: &[Value]) -> Result<Value> {
        Ok(Value::Float(args[0].expect_f64("clamp01")?.clamp(0.0, 1.0)))
    }

    fn return_type(&self, arg_types: &[DataType]) -> Result<DataType> {
        if arg_types.len() != 1 {
            return Err(Error::bind("clamp01 expects 1 argument"));
        }
        Ok(DataType::Float)
    }
}

/// UDAF: weighted harmonic mean (sensitive to small values — a favourite
/// for availability/latency style metrics).
struct HarmonicMean;

#[derive(Clone, Default)]
struct HarmonicState {
    weight: f64,
    inv_sum: f64,
}

impl Udaf for HarmonicMean {
    fn name(&self) -> &str {
        "harmonic_mean"
    }

    fn return_type(&self, arg: DataType) -> Result<DataType> {
        if arg.is_numeric() || arg == DataType::Null {
            Ok(DataType::Float)
        } else {
            Err(Error::bind("harmonic_mean expects a numeric argument"))
        }
    }

    fn new_state(&self) -> Box<dyn UdafState> {
        Box::new(HarmonicState::default())
    }
}

impl UdafState for HarmonicState {
    fn update(&mut self, value: &Value, weight: f64) {
        if let Some(x) = value.as_f64() {
            if x > 0.0 && weight > 0.0 {
                self.weight += weight;
                self.inv_sum += weight / x;
            }
        }
    }

    fn finalize(&self, _scale: f64) -> Value {
        if self.inv_sum == 0.0 {
            Value::Null
        } else {
            Value::Float(self.weight / self.inv_sum)
        }
    }

    fn clone_box(&self) -> Box<dyn UdafState> {
        Box::new(self.clone())
    }
}

fn main() -> Result<()> {
    let mut catalog = Catalog::new();
    catalog.register(
        "sessions",
        Arc::new(ConvivaGenerator::default().generate(80_000)),
    )?;

    // Register the extensions.
    let mut functions = FunctionRegistry::with_builtins();
    functions.register("clamp01", Arc::new(Clamp01))?;
    let mut udafs = UdafRegistry::with_builtins();
    udafs.register(Arc::new(HarmonicMean))?;

    let sql = "SELECT harmonic_mean(join_time) AS harmonic_join, \
                      AVG(clamp01(play_time / 600.0)) AS engagement_score \
               FROM sessions \
               WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";
    println!("query with UDF + UDAF over an uncertain filter:\n{sql}\n");

    // With custom registries we drive the lower-level API directly.
    let stmt = parse_select(sql)?;
    let graph = Binder::with_registries(&catalog, functions, udafs).bind(&stmt)?;
    let meta = MetaPlan::compile(&graph, "sessions")?;
    let config = OnlineConfig::default().with_batches(20);
    let partitioner = Arc::new(Partitioner::Uniform(MiniBatchPartitioner::new(
        catalog.get("sessions")?,
        20,
        config.partition_seed,
    )?));
    let mut exec = OnlineExecutor::new(&catalog, meta, partitioner, config)?;
    while !exec.is_finished() {
        let report = exec.step()?;
        if report.batch_index % 4 == 0 || report.is_final() {
            let h = report.estimate_at(0, 0).expect("harmonic estimate");
            let s = report.estimate_at(0, 1).expect("score estimate");
            println!(
                "  batch {:>2}/{:>2}: harmonic_join = {h}   engagement = {s}",
                report.batch_index + 1,
                report.num_batches
            );
        }
    }
    println!("\nnote: the UDAF's ± error bars came from the shared poissonized");
    println!("bootstrap machinery — the UDAF itself knows nothing about sampling.");
    Ok(())
}
