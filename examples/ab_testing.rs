//! Demo scenario 2 (paper §6.2): A/B testing.
//!
//! MyTube ships variant B of its player to half the users and wants to know
//! *as early as possible* whether retention improved. The analyst watches
//! per-variant engagement estimates with confidence intervals and stops the
//! query the moment the intervals separate — instead of predicting a sample
//! size up front (the S-AQP pain point G-OLA removes, §1).
//!
//! Run with: `cargo run --release --example ab_testing`

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::workloads::MyTubeGenerator;

const AB_QUERY: &str = "SELECT experiment, AVG(play_time) AS engagement, COUNT(*) AS sessions \
     FROM mytube_sessions GROUP BY experiment ORDER BY experiment";

fn main() -> g_ola::common::Result<()> {
    let rows = 200_000;
    println!("MyTube A/B test monitor — {rows} sessions, variants A and B\n");
    let catalog = MyTubeGenerator::default().catalog(rows);
    let session = OnlineSession::new(catalog, OnlineConfig::default().with_batches(60));

    println!("query:\n{AB_QUERY}\n");
    println!(
        "{:>6} {:>6} | {:>22} | {:>22} | verdict",
        "batch", "data%", "A engagement (95% CI)", "B engagement (95% CI)"
    );

    for report in session.execute_online(AB_QUERY)? {
        let report = report?;
        // Rows are sorted by variant: row 0 = A, row 1 = B.
        let a = report.estimate_at(0, 1).expect("A estimate").clone();
        let b = report.estimate_at(1, 1).expect("B estimate").clone();
        let (ci_a, ci_b) = match (a.ci_percentile(0.95), b.ci_percentile(0.95)) {
            (Some(x), Some(y)) => (x, y),
            _ => continue,
        };
        let separated = ci_a.hi < ci_b.lo || ci_b.hi < ci_a.lo;
        println!(
            "{:>6} {:>5.0}% | {:8.2} [{:7.2},{:7.2}] | {:8.2} [{:7.2},{:7.2}] | {}",
            report.batch_index + 1,
            report.progress() * 100.0,
            a.value,
            ci_a.lo,
            ci_a.hi,
            b.value,
            ci_b.lo,
            ci_b.hi,
            if separated {
                "SIGNIFICANT"
            } else {
                "keep watching"
            }
        );
        if separated {
            let winner = if b.value > a.value { "B" } else { "A" };
            let lift = (b.value - a.value) / a.value * 100.0;
            println!(
                "\nintervals separated after {:.0}% of the data ({:?}).",
                report.progress() * 100.0,
                report.cumulative_time
            );
            println!("variant {winner} wins; observed lift {lift:+.1}% in mean play time.");
            println!("stopping the query here — no need to scan the rest.");
            return Ok(());
        }
    }
    println!("\nprocessed all data without separation — no detectable effect.");
    Ok(())
}
