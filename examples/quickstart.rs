//! Quickstart: the paper's running example (Example 1, "Slow Buffering
//! Impact") executed online.
//!
//! Generates a synthetic Conviva-like session log, runs the SBI query
//! through G-OLA, and prints the refining estimate after every mini-batch —
//! stopping early once the relative standard deviation drops below 1%,
//! exactly the accuracy/time trade-off OLA hands to the user.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, ConvivaGenerator};

fn main() -> g_ola::common::Result<()> {
    let rows = 200_000;
    println!("generating {rows} synthetic session-log rows...");
    let sessions = ConvivaGenerator::default().generate(rows);

    let mut catalog = Catalog::new();
    catalog.register("sessions", Arc::new(sessions))?;

    let config = OnlineConfig::default().with_batches(50);
    let session = OnlineSession::new(catalog, config);

    println!(
        "\nquery (paper Example 1 — Slow Buffering Impact):\n  {}\n",
        conviva::SBI
    );
    let prepared = session.prepare(conviva::SBI)?;
    println!("lineage blocks:\n{}", prepared.meta.explain());

    let exact = session.execute_exact(conviva::SBI)?;
    let truth = exact.rows()[0].get(0).as_f64().expect("numeric answer");

    println!("online execution (stops at 1% relative stddev):");
    let mut stopped = None;
    for report in session.execute_online(conviva::SBI)? {
        let report = report?;
        println!("  {report}");
        if report.primary_rel_stddev().is_some_and(|r| r < 0.01) {
            stopped = Some(report);
            break;
        }
    }
    let report = stopped.expect("should converge below 1% rel stddev");
    let est = report.primary().expect("primary estimate");
    println!(
        "\nstopped after {:.0}% of the data in {:?}",
        report.progress() * 100.0,
        report.cumulative_time
    );
    println!("estimate: {est}   (exact answer: {truth:.4})");
    let ci = report.ci().expect("confidence interval");
    println!(
        "95% CI {ci} — {} the exact answer",
        if ci.contains(truth) {
            "contains"
        } else {
            "MISSES"
        }
    );
    Ok(())
}
