//! The paper's TPC-H evaluation queries (§5) running online.
//!
//! Executes the adapted Q11 / Q17 / Q18 / Q20 over the denormalized
//! synthetic fact table, showing per-batch refinement, uncertain-set sizes
//! and any failure-triggered recomputations — then verifies the final
//! answer against the exact batch engine.
//!
//! Run with: `cargo run --release --example tpch_online`

use std::sync::Arc;

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::{tpch, TpchGenerator};

fn main() -> g_ola::common::Result<()> {
    let rows = 100_000;
    println!("generating ~{rows} denormalized TPC-H-like lineitems...");
    let fact = TpchGenerator::default().generate(rows);
    let mut catalog = Catalog::new();
    catalog.register("lineitem_denorm", Arc::new(fact))?;
    let session = OnlineSession::new(catalog, OnlineConfig::default().with_batches(25));

    for (name, sql) in tpch::queries() {
        println!("\n=== {name} ===\n{sql}\n");
        // Time the exact engine for the comparison line.
        let t0 = gola_common::timing::Stopwatch::start();
        let exact = session.execute_exact(sql)?;
        let batch_exact_time = t0.elapsed();

        let mut final_report = None;
        for report in session.execute_online(sql)? {
            let report = report?;
            let every = (report.num_batches / 5).max(1);
            if report.batch_index % every == 0 || report.is_final() {
                println!("  {report}");
            }
            final_report = Some(report);
        }
        let report = final_report.expect("at least one batch");
        println!(
            "  exact engine: {batch_exact_time:?}; online total: {:?} \
             ({} rows in final answer)",
            report.cumulative_time,
            report.table.num_rows()
        );

        // Verify the final online answer exactly matches batch execution.
        let mut sorted_online = report.table.rows().to_vec();
        let mut sorted_exact = exact.rows().to_vec();
        let cmp = |a: &g_ola::common::Row, b: &g_ola::common::Row| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        };
        sorted_online.sort_by(cmp);
        sorted_exact.sort_by(cmp);
        assert_eq!(sorted_online.len(), sorted_exact.len(), "{name}: row count");
        for (a, b) in sorted_online.iter().zip(&sorted_exact) {
            for (x, y) in a.iter().zip(b.iter()) {
                if let (Some(fx), Some(fy)) = (x.as_f64(), y.as_f64()) {
                    assert!(
                        (fx - fy).abs() / fy.abs().max(1.0) < 1e-6,
                        "{name}: {fx} vs {fy}"
                    );
                }
            }
        }
        println!("  ✓ final online answer matches the exact engine");
    }
    Ok(())
}
