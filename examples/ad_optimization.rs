//! Demo scenario 1 (paper §6.2): real-time ad optimization.
//!
//! MyTube Inc. wants to re-optimize ad placement every minute rather than
//! every day. The analyst's dashboard aggregates revenue and engagement per
//! ad category and hour-of-day band, keeping only ads whose sessions buffer
//! *worse than average* (the nested aggregate that makes this query
//! non-monotonic). G-OLA streams the answer with error bars; the dashboard
//! redraws as the estimates tighten.
//!
//! Run with: `cargo run --release --example ad_optimization`

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::workloads::MyTubeGenerator;

const AD_HEALTH: &str = "SELECT a.category, \
            SUM(s.ad_revenue) AS revenue, \
            AVG(s.play_time) AS engagement, \
            COUNT(*) AS troubled_sessions \
     FROM mytube_sessions s JOIN ads a ON s.ad_id = a.ad_id \
     WHERE s.buffer_time > (SELECT AVG(buffer_time) FROM mytube_sessions) \
     GROUP BY a.category ORDER BY revenue DESC";

fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64) as usize;
    format!("{}{}", "█".repeat(filled), "░".repeat(width - filled))
}

fn main() -> g_ola::common::Result<()> {
    let rows = 150_000;
    println!("MyTube real-time ad optimization — {rows} sessions\n");
    let catalog = MyTubeGenerator::default().catalog(rows);
    let session = OnlineSession::new(catalog, OnlineConfig::default().with_batches(40));

    println!("dashboard query:\n{AD_HEALTH}\n");

    let mut shown = 0usize;
    for report in session.execute_online(AD_HEALTH)? {
        let report = report?;
        // Redraw the dashboard every few batches (a UI would debounce too).
        if report.batch_index % 8 != 0 && !report.is_final() {
            continue;
        }
        shown += 1;
        println!(
            "── after {:>3.0}% of data ({:?}, batch {}/{}) ──",
            report.progress() * 100.0,
            report.cumulative_time,
            report.batch_index + 1,
            report.num_batches,
        );
        let max_rev = report
            .table
            .rows()
            .iter()
            .filter_map(|r| r.get(1).as_f64())
            .fold(1.0_f64, f64::max);
        for (i, row) in report.table.rows().iter().enumerate() {
            let category = row.get(0);
            let revenue = row.get(1).as_f64().unwrap_or(0.0);
            let engagement = row.get(2).as_f64().unwrap_or(0.0);
            let pm = report
                .estimate_at(i, 1)
                .and_then(|e| e.ci_percentile(0.95))
                .map(|ci| format!("±{:7.1}", ci.half_width()))
                .unwrap_or_else(|| "        ".into());
            println!(
                "  {category:<10} {} {revenue:9.1} {pm}  engagement {engagement:6.1}s",
                bar(revenue, max_rev, 24)
            );
        }
        println!();
        if report.is_final() {
            println!("final (exact) standings above — processed everything.");
        }
    }
    assert!(shown > 0);
    Ok(())
}
