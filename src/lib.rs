//! # G-OLA — Generalized On-Line Aggregation
//!
//! A from-scratch Rust reproduction of *G-OLA: Generalized On-Line
//! Aggregation for Interactive Analysis on Big Data* (SIGMOD 2015).
//!
//! This facade crate re-exports the whole workspace under one name. The
//! typical entry point is [`core::OnlineSession`]:
//!
//! ```no_run
//! use g_ola::prelude::*;
//!
//! # fn main() -> gola_common::Result<()> {
//! let sessions = gola_workloads::conviva::ConvivaGenerator::default().generate(100_000);
//! let mut catalog = Catalog::new();
//! catalog.register("sessions", std::sync::Arc::new(sessions))?;
//!
//! let session = OnlineSession::new(catalog, OnlineConfig::default());
//! let query = "SELECT AVG(play_time) FROM sessions \
//!              WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";
//! for report in session.execute_online(query)? {
//!     let report = report?;
//!     println!("{report}");
//!     if report.primary_rel_stddev().unwrap_or(f64::MAX) < 0.01 {
//!         break; // user is satisfied — stop the query (OLA contract)
//!     }
//! }
//! # Ok(())
//! # }
//! ```

pub use gola_agg as agg;
pub use gola_baselines as baselines;
pub use gola_bootstrap as bootstrap;
pub use gola_common as common;
pub use gola_core as core;
pub use gola_engine as engine;
pub use gola_expr as expr;
pub use gola_obs as obs;
pub use gola_plan as plan;
pub use gola_sql as sql;
pub use gola_storage as storage;
pub use gola_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use gola_common::{DataType, Error, Result, Row, Schema, Value};
    pub use gola_core::{BatchReport, ContractStop, OnlineConfig, OnlineSession};
    pub use gola_engine::BatchEngine;
    pub use gola_plan::QueryContract;
    pub use gola_storage::{
        Catalog, MiniBatchPartitioner, Partitioner, StratifiedPartitioner, Table,
    };
}
