//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the real criterion cannot
//! be fetched. This crate implements just enough of its API for
//! `benches/micro.rs` to compile and produce useful numbers: `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a simple
//! warmup + timed-run loop reporting mean ns/iter (and derived throughput);
//! there is no statistical analysis, plotting, or saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation, used to derive elements/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // GOLA_BENCH_MS shortens runs for smoke-testing the harness.
        let ms = std::env::var("GOLA_BENCH_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            measure: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 4 + 1),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_one(self, name, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    c: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate the iteration count against the warmup budget.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= c.warmup || iters >= 1 << 40 {
            let per_iter = b.elapsed.as_nanos().max(1) as u64 / iters;
            iters = (c.measure.as_nanos() as u64 / per_iter.max(1)).max(1);
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / ns.max(1e-9);
            format!("  ({per_sec:.3e}/s)")
        }
        None => String::new(),
    };
    println!("{name:<48} {ns:>12.1} ns/iter{rate}");
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
