//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! real proptest cannot be vendored. This crate reimplements the (small)
//! subset of its API that the workspace's property tests use: the
//! `proptest!` macro, `prop_assert*` macros, `prop_oneof!`, `Just`, range
//! and tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! string-pattern strategies for the handful of character classes the tests
//! draw from, `any::<T>()`, `.prop_map`, and `.prop_recursive`.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! generated from a deterministic per-test SplitMix64 stream (no persisted
//! failure regressions), and there is no shrinking — a failing case reports
//! its case number and message and panics immediately. For a reproduction
//! codebase that needs randomized coverage rather than minimal
//! counterexamples, this is a reasonable trade.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// A failed `prop_assert*` inside a test body.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test path and case
    /// index, so every `cargo test` run explores the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the test path, mixed with the case index.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            let mut rng = TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            // Warm the stream so nearby case indices decorrelate.
            rng.next_u64();
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values for one test parameter.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::from_fn(move |rng| f(self.generate(rng)))
        }

        /// Build recursive structures: `depth` rounds of wrapping the current
        /// strategy with `f`, choosing between shallower and deeper variants
        /// at generation time. `desired_size` and `expected_branch` are
        /// accepted for API compatibility but unused.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let shallow = strat.clone();
                let deep = f(strat).boxed();
                strat = BoxedStrategy::from_fn(move |rng| {
                    if rng.next_below(3) == 0 {
                        shallow.generate(rng)
                    } else {
                        deep.generate(rng)
                    }
                });
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.generate(rng))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> BoxedStrategy<T> {
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy(Rc::new(f))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // next_f64 is in [0,1); stretch slightly so the top endpoint is
            // reachable, then clamp.
            let f = (rng.next_f64() * 1.0000000000000002).min(1.0);
            self.start() + f * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String-pattern strategies: a `&str` used as a strategy is interpreted
    /// as a tiny regex subset — a single character class (`[a-z]`,
    /// `[ -~]`, or `\PC` for "printable") followed by an optional `{lo,hi}`
    /// repetition. This covers every pattern the workspace's tests use;
    /// anything else panics loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, rest) = parse_class(self);
            let (lo, hi) = parse_repeat(rest, self);
            let len = lo + rng.next_below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.next_below(class.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class(pattern: &str) -> (Vec<char>, &str) {
        if let Some(rest) = pattern.strip_prefix("\\PC") {
            // "Not a control character": printable ASCII plus a few
            // multi-byte code points to exercise UTF-8 handling.
            let mut class: Vec<char> = (0x20u8..=0x7E).map(char::from).collect();
            class.extend(['\u{e9}', '\u{3bb}', '\u{2192}', '\u{6f22}']);
            return (class, rest);
        }
        if let Some(body) = pattern.strip_prefix('[') {
            let end = body.find(']').unwrap_or_else(|| {
                panic!("unsupported string strategy pattern {pattern:?}: unterminated class")
            });
            let (spec, rest) = (&body[..end], &body[end + 1..]);
            let chars: Vec<char> = spec.chars().collect();
            let mut class = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                if i + 2 < chars.len() && chars[i + 1] == '-' {
                    let (a, b) = (chars[i], chars[i + 2]);
                    assert!(a <= b, "bad range in string strategy pattern {pattern:?}");
                    for c in a..=b {
                        class.push(c);
                    }
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            assert!(
                !class.is_empty(),
                "empty class in string strategy pattern {pattern:?}"
            );
            return (class, rest);
        }
        panic!(
            "unsupported string strategy pattern {pattern:?}: \
             this proptest stand-in handles only `[...]` classes and `\\PC`"
        );
    }

    fn parse_repeat(rest: &str, pattern: &str) -> (usize, usize) {
        if rest.is_empty() {
            return (1, 1);
        }
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in string pattern {pattern:?}"));
        let parse = |s: &str| -> usize {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad repetition bound in string pattern {pattern:?}"))
        };
        match body.split_once(',') {
            Some((lo, hi)) => (parse(lo), parse(hi)),
            None => {
                let n = parse(body);
                (n, n)
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "arbitrary value" generator, for `any::<T>()`.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, wide-magnitude values; NaN/inf are not useful defaults
            // for the numeric code under test.
            (rng.next_f64() - 0.5) * 2e15
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for `collection::vec`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_incl - self.size.lo + 1;
            let len = self.size.lo + rng.next_below(span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Declare property tests. Supports the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0i64..100, v in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!("proptest case {} of {}: {}", __case, stringify!($name), __e);
                }
            }
        }
        $crate::__proptest_fns! { [$cfg] $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Uniform choice among strategy alternatives (unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop::` path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
