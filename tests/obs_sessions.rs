//! Per-session observability under the multi-tenant scheduler.
//!
//! The registry was built single-session: every executor resolved the
//! same global `report.*` cells, so two concurrent sessions would
//! interleave writes through one gauge — last writer wins, values from
//! *some* session. Under the `QueryService` each session's executor
//! resolves `session="s<id>"`-labeled series instead; this test pins:
//!
//! 1. **Isolation** — concurrent sessions write disjoint labeled cells;
//!    each session's counters land exactly its own batch count, and no
//!    unlabeled `report.*` cell exists at all.
//! 2. **Determinism** — two identical service runs export byte-identical
//!    snapshots (labels included), in both JSON and Prometheus form.
//! 3. **Service telemetry** — admission/completion counters and the
//!    active/queued gauges settle to their exact expected values.
//!
//! One test function, same reason as `tests/obs_inert.rs`: the registry
//! is process-global and test functions in one binary run concurrently.

use std::sync::Arc;

use g_ola::core::sched::{QueryService, ServiceConfig};
use g_ola::core::OnlineConfig;
use g_ola::obs;
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, ConvivaGenerator};

/// Run two concurrent sessions (different queries) to completion through
/// one service and return the registry's exports.
fn run_service(catalog: &Catalog) -> (String, String) {
    let service = QueryService::new(
        catalog.clone(),
        ServiceConfig {
            max_active: 2,
            queue_capacity: 2,
            threads: 1,
            base: OnlineConfig::for_tests(8).with_trials(16),
        },
    );
    let a = service.submit(conviva::SBI).expect("SBI admits");
    let b = service.submit(conviva::C1).expect("C1 admits");
    let reports_a = a.inspect(|r| assert!(r.is_ok(), "SBI batch")).count();
    let reports_b = b.inspect(|r| assert!(r.is_ok(), "C1 batch")).count();
    assert_eq!(reports_a, 8, "SBI runs all batches");
    assert_eq!(reports_b, 8, "C1 runs all batches");
    drop(service);
    (obs::snapshot_json(false), obs::prometheus(false))
}

#[test]
fn concurrent_sessions_have_isolated_deterministic_metrics() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(4000)),
        )
        .expect("register table");

    obs::set_enabled(true);
    let (snap, prom) = run_service(&catalog);
    obs::reset();
    let (snap_again, prom_again) = run_service(&catalog);
    obs::set_enabled(false);

    // 1. Isolation: each session owns its labeled cells; the sessions ran
    //    8 batches each and neither overwrote the other's count.
    for session in ["s0", "s1"] {
        assert!(
            snap.contains(&format!(
                "\"report.batches{{session=\\\"{session}\\\"}}\": 8"
            )),
            "per-session batch counter missing for {session}: {snap}"
        );
        assert!(
            snap.contains(&format!("report.ci_width{{session=\\\"{session}\\\"}}")),
            "per-session gauge missing for {session}: {snap}"
        );
    }
    // No unlabeled report.* series may exist in a service run — an
    // unlabeled cell is exactly the cross-session corruption vector.
    assert!(
        !snap.contains("\"report.batches\":"),
        "unlabeled series leaked: {snap}"
    );
    // Prometheus splits the label back out into real label syntax, one
    // family header shared by both series.
    assert!(
        prom.contains("gola_report_batches_total{session=\"s0\"} 8"),
        "prometheus labels: {prom}"
    );
    assert!(
        prom.contains("gola_report_batches_total{session=\"s1\"} 8"),
        "prometheus labels: {prom}"
    );
    assert_eq!(
        prom.matches("# TYPE gola_report_batches_total counter")
            .count(),
        1,
        "labeled series must share one family header: {prom}"
    );

    // 2. Determinism: identical runs, byte-identical exports.
    assert_eq!(snap, snap_again, "JSON snapshot must be deterministic");
    assert_eq!(prom, prom_again, "Prometheus export must be deterministic");

    // 3. Service telemetry.
    assert!(
        snap.contains("\"service.submitted\": 2"),
        "snapshot: {snap}"
    );
    assert!(
        snap.contains("\"service.completed\": 2"),
        "snapshot: {snap}"
    );
    assert!(snap.contains("\"service.active\": 0"), "snapshot: {snap}");
    assert!(snap.contains("\"service.queued\": 0"), "snapshot: {snap}");
}
