//! Determinism contract of the parallel runtime: for every workload query,
//! a `threads = 1` run and a `threads = 4` run must produce **identical**
//! per-batch reports — same estimates (bit-for-bit), same confidence
//! intervals, same uncertain-set sizes, same recompute counts.
//!
//! This holds because ingest uses fixed-size candidate chunks whose
//! boundaries are independent of the thread count, folds each chunk into a
//! private shard, and merges shards in chunk index order — so the float
//! operation sequence per accumulator never changes.

use std::sync::Arc;

use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, tpch, ConvivaGenerator, TpchGenerator};

fn run(catalog: &Catalog, sql: &str, threads: usize) -> Vec<BatchReport> {
    let config = OnlineConfig::for_tests(8)
        .with_trials(32)
        .with_threads(threads);
    let session = OnlineSession::new(catalog.clone(), config);
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| r.expect("batch succeeds")).collect()
}

/// Compare two runs batch by batch, bit-for-bit on every float.
fn assert_identical(name: &str, a: &[BatchReport], b: &[BatchReport]) {
    assert_eq!(a.len(), b.len(), "{name}: batch count");
    for (ra, rb) in a.iter().zip(b) {
        let i = ra.batch_index;
        assert_eq!(
            ra.uncertain_tuples, rb.uncertain_tuples,
            "{name} batch {i}: uncertain-set size"
        );
        assert_eq!(
            ra.recomputations, rb.recomputations,
            "{name} batch {i}: recompute count"
        );
        assert_eq!(
            ra.row_certain, rb.row_certain,
            "{name} batch {i}: row certainty"
        );
        assert_eq!(
            ra.table.num_rows(),
            rb.table.num_rows(),
            "{name} batch {i}: result rows"
        );
        for (x, y) in ra.table.rows().iter().zip(rb.table.rows()) {
            for (u, v) in x.iter().zip(y.iter()) {
                match (u.as_f64(), v.as_f64()) {
                    (Some(fu), Some(fv)) => assert_eq!(
                        fu.to_bits(),
                        fv.to_bits(),
                        "{name} batch {i}: cell {fu} vs {fv}"
                    ),
                    _ => assert_eq!(u, v, "{name} batch {i}: cell"),
                }
            }
        }
        assert_eq!(
            ra.estimates.len(),
            rb.estimates.len(),
            "{name} batch {i}: estimates"
        );
        for (ea, eb) in ra.estimates.iter().zip(&rb.estimates) {
            assert_eq!(
                (ea.row, ea.col),
                (eb.row, eb.col),
                "{name} batch {i}: cell id"
            );
            assert_eq!(
                ea.estimate.value.to_bits(),
                eb.estimate.value.to_bits(),
                "{name} batch {i}: estimate value"
            );
            assert_eq!(
                ea.estimate.replicas.len(),
                eb.estimate.replicas.len(),
                "{name} batch {i}: replica count"
            );
            for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
            }
            match (
                ea.estimate.ci_percentile(0.95),
                eb.estimate.ci_percentile(0.95),
            ) {
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.lo.to_bits(), cb.lo.to_bits(), "{name} batch {i}: CI lo");
                    assert_eq!(ca.hi.to_bits(), cb.hi.to_bits(), "{name} batch {i}: CI hi");
                }
                (None, None) => {}
                other => panic!("{name} batch {i}: CI presence differs: {other:?}"),
            }
        }
    }
}

fn check(catalog: &Catalog, name: &str, sql: &str) {
    let seq = run(catalog, sql, 1);
    let par = run(catalog, sql, 4);
    assert_identical(name, &seq, &par);
}

#[test]
fn conviva_queries_thread_invariant() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(6000)),
        )
        .unwrap();
    check(&catalog, "SBI", conviva::SBI);
    check(&catalog, "C1", conviva::C1);
    check(&catalog, "C2", conviva::C2);
    check(&catalog, "C3", conviva::C3);
}

fn run_with(catalog: &Catalog, sql: &str, config: OnlineConfig) -> Vec<BatchReport> {
    let session = OnlineSession::new(catalog.clone(), config);
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| r.expect("batch succeeds")).collect()
}

/// Stratified partitioning and error-bounded contracts preserve the
/// thread-count determinism contract: the schedule is fixed by (table,
/// column, k, seed) and the stopping decision is a pure function of the
/// (bit-identical) reports, so `threads = 1` and `threads = 4` must agree
/// on every report *and* on the stopping batch.
#[test]
fn stratified_and_error_contract_thread_invariant() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(6000)),
        )
        .unwrap();
    let base = OnlineConfig::for_tests(8).with_trials(32);

    // Stratified mini-batches on the group column.
    let strat = |threads| {
        run_with(
            &catalog,
            conviva::C2,
            base.clone()
                .with_stratify_column("geo")
                .with_threads(threads),
        )
    };
    assert_identical("C2/stratified", &strat(1), &strat(4));

    // Error-bounded contract: both runs must stop at the same batch with
    // the same reports (stopping is deterministic — no wall clock).
    let contracted = |threads| {
        run_with(
            &catalog,
            "SELECT geo, AVG(play_time) FROM sessions GROUP BY geo ERROR 5% CONFIDENCE 95%",
            base.clone().with_threads(threads),
        )
    };
    let seq = contracted(1);
    let par = contracted(4);
    assert_identical("C2/error-contract", &seq, &par);
    let stop = |r: &[BatchReport]| r.last().and_then(|r| r.contract.as_ref()?.stop);
    assert_eq!(stop(&seq), stop(&par), "stopping reason must agree");

    // Stratified + contract together.
    let both = |threads| {
        run_with(
            &catalog,
            "SELECT geo, AVG(play_time) FROM sessions GROUP BY geo ERROR 5% CONFIDENCE 95%",
            base.clone()
                .with_stratify_column("geo")
                .with_threads(threads),
        )
    };
    assert_identical("C2/stratified+contract", &both(1), &both(4));
}

#[test]
fn tpch_queries_thread_invariant() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "lineitem_denorm",
            Arc::new(TpchGenerator::default().generate(6000)),
        )
        .unwrap();
    check(&catalog, "Q11", tpch::Q11);
    check(&catalog, "Q17", tpch::Q17);
    check(&catalog, "Q18", tpch::Q18);
    check(&catalog, "Q20", tpch::Q20);
}
