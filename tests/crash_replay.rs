//! Crash-replay contract: if an online run dies mid-stream, a fresh
//! executor that replays the same batch sequence must publish **the same
//! reports, bit for bit** — including runs whose history contains
//! failure-triggered recomputations, so the `recover` replay path itself
//! is covered, not just the happy path.
//!
//! The "crash" is simulated by dropping the execution after consuming a
//! prefix of its reports (all executor state is lost); the "restart" is a
//! brand-new session over the same catalog and config. Nothing is
//! checkpointed — determinism of ingest order, bootstrap weights, and
//! recovery is what makes replay exact.

use std::sync::Arc;

use g_ola::bootstrap::BootstrapSpec;
use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::ConvivaGenerator;

const NUM_BATCHES: usize = 5;
const CRASH_AFTER: usize = 3; // reports consumed before the "crash"

/// A query whose run (under this exact data/config) triggers multiple
/// failure-triggered recomputations, and a scalar one with a single
/// recomputation — found by the conformance harness's generator.
const GROUPED_SQL: &str = "SELECT device, MAX(ad_revenue) AS a0 FROM sessions a \
     WHERE join_time > 1.5 * (SELECT AVG(join_time) FROM sessions t WHERE t.geo = a.geo) \
     OR content_id = 189 GROUP BY device ORDER BY a0 DESC";
const SCALAR_SQL: &str = "SELECT SUM(play_time) AS a0, AVG(buffer_time) AS a1, \
     AVG(buffer_time * 2.4) AS a2 FROM sessions a \
     WHERE buffer_time <= 0.8 * (SELECT AVG(play_time) FROM sessions t WHERE t.ad_id = a.ad_id) \
     ORDER BY a1";

fn catalog() -> Catalog {
    let gen = ConvivaGenerator {
        seed: 0x5EED_DA7A,
        ..ConvivaGenerator::default()
    };
    let mut c = Catalog::new();
    c.register("sessions", Arc::new(gen.generate(360))).unwrap();
    c
}

fn config() -> OnlineConfig {
    OnlineConfig {
        num_batches: NUM_BATCHES,
        bootstrap: BootstrapSpec::new(24, 0x60_1A),
        partition_seed: 0xF1_00_DB,
        ..OnlineConfig::default()
    }
}

/// Run `sql` and collect at most `upto` reports, then drop the execution.
fn run_prefix(catalog: &Catalog, sql: &str, upto: usize) -> Vec<BatchReport> {
    let session = OnlineSession::new(catalog.clone(), config());
    let exec = session.execute_online(sql).expect("query compiles");
    exec.take(upto)
        .map(|r| r.expect("batch succeeds"))
        .collect()
}

/// Bit-exact comparison of two reports from the same batch index.
fn assert_report_identical(name: &str, a: &BatchReport, b: &BatchReport) {
    let i = a.batch_index;
    assert_eq!(i, b.batch_index, "{name}: batch index");
    assert_eq!(a.rows_seen, b.rows_seen, "{name} batch {i}: rows seen");
    assert_eq!(
        a.uncertain_tuples, b.uncertain_tuples,
        "{name} batch {i}: uncertain-set size"
    );
    assert_eq!(
        a.recomputations, b.recomputations,
        "{name} batch {i}: recompute count"
    );
    assert_eq!(a.row_certain, b.row_certain, "{name} batch {i}: certainty");
    assert_eq!(
        a.table.num_rows(),
        b.table.num_rows(),
        "{name} batch {i}: result rows"
    );
    for (x, y) in a.table.rows().iter().zip(b.table.rows()) {
        for (u, v) in x.iter().zip(y.iter()) {
            match (u.as_f64(), v.as_f64()) {
                (Some(fu), Some(fv)) => {
                    assert_eq!(fu.to_bits(), fv.to_bits(), "{name} batch {i}: cell")
                }
                _ => assert_eq!(u, v, "{name} batch {i}: cell"),
            }
        }
    }
    assert_eq!(
        a.estimates.len(),
        b.estimates.len(),
        "{name} batch {i}: estimates"
    );
    for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(
            (ea.row, ea.col),
            (eb.row, eb.col),
            "{name} batch {i}: cell id"
        );
        assert_eq!(
            ea.estimate.value.to_bits(),
            eb.estimate.value.to_bits(),
            "{name} batch {i}: estimate value"
        );
        assert_eq!(
            ea.estimate.replicas.len(),
            eb.estimate.replicas.len(),
            "{name} batch {i}: replica count"
        );
        for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
        }
    }
}

fn check_crash_replay(name: &str, sql: &str, min_recomputes: usize) {
    let catalog = catalog();

    // The uninterrupted run — the reports the user actually saw.
    let full = run_prefix(&catalog, sql, NUM_BATCHES);
    assert_eq!(full.len(), NUM_BATCHES, "{name}: full run length");
    let recomputes = full.last().unwrap().recomputations;
    assert!(
        recomputes >= min_recomputes,
        "{name}: expected ≥ {min_recomputes} recomputations so replay covers \
         the recover path, got {recomputes} — query/data drifted, repin it"
    );

    // Crash: consume a prefix, then lose the executor entirely.
    let crashed = run_prefix(&catalog, sql, CRASH_AFTER);
    assert_eq!(crashed.len(), CRASH_AFTER, "{name}: crashed run length");

    // Restart from scratch: the replay must walk through the identical
    // report sequence — matching the crashed prefix AND the uninterrupted
    // run's published reports, through to the exact final answer.
    let replay = run_prefix(&catalog, sql, NUM_BATCHES);
    for (a, b) in crashed.iter().zip(&replay) {
        assert_report_identical(name, a, b);
    }
    for (a, b) in full.iter().zip(&replay) {
        assert_report_identical(name, a, b);
    }
}

#[test]
fn crash_replay_reproduces_reports_grouped() {
    check_crash_replay("grouped", GROUPED_SQL, 2);
}

/// The durable path: the same crash-replay contract, but the restart
/// rebuilds the catalog **from segment files on disk** instead of from a
/// live object. Seal the workload into a durable stream in several
/// segments, close it, run to completion; then drop every in-memory
/// handle, reopen the catalog from the manifest, and replay. The replayed
/// stream must be bit-identical to the pre-crash run — and to a plain
/// in-memory run over the same rows, pinning that the segment round-trip
/// (validity bitmaps, float bits, dictionary codes) loses nothing.
#[test]
fn crash_replay_survives_restart_from_durable_segments() {
    use g_ola::storage::StreamTable;

    let dir = std::env::temp_dir().join(format!("gola-crash-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let rows = {
        let gen = ConvivaGenerator {
            seed: 0x5EED_DA7A,
            ..ConvivaGenerator::default()
        };
        gen.generate(360)
    };

    // Ingest: three sealed segments, in deterministic append order.
    let stream = StreamTable::create_dir(Arc::clone(rows.schema()), &dir).expect("create stream");
    for third in rows.rows().chunks(120) {
        stream.append_rows(third).expect("append");
        stream.seal().expect("seal");
    }
    stream.close().expect("close");
    assert_eq!(stream.num_segments(), 3);
    assert_eq!(stream.watermark(), 360);

    let durable_catalog = |stream: Arc<StreamTable>| {
        let mut c = Catalog::new();
        c.register_stream("sessions", stream).unwrap();
        c
    };

    // The run the user saw before the crash.
    let before = run_prefix(&durable_catalog(stream), GROUPED_SQL, NUM_BATCHES);
    assert_eq!(before.len(), NUM_BATCHES);

    // "Crash": every in-memory handle is gone; only the files remain.
    let reopened = StreamTable::open_dir(&dir).expect("reopen from manifest");
    assert_eq!(reopened.num_segments(), 3);
    assert_eq!(reopened.watermark(), 360);
    assert!(reopened.is_closed(), "closed state must persist");

    let after = run_prefix(&durable_catalog(reopened), GROUPED_SQL, NUM_BATCHES);
    assert_eq!(after.len(), NUM_BATCHES);
    for (a, b) in before.iter().zip(&after) {
        assert_report_identical("durable-replay", a, b);
    }

    // And the whole durable pipeline must agree with a plain in-memory
    // table holding the same rows — segment files are a lossless detour.
    let in_memory = run_prefix(&catalog(), GROUPED_SQL, NUM_BATCHES);
    for (a, b) in in_memory.iter().zip(&after) {
        assert_report_identical("durable-vs-memory", a, b);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_replay_reproduces_reports_scalar() {
    check_crash_replay("scalar", SCALAR_SQL, 1);
}
