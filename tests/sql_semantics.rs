//! Table-driven SQL semantics tests: tricky NULL / three-valued-logic /
//! expression cases checked against hand-computed expectations on both the
//! exact engine and the online executor (which must agree).

use std::sync::Arc;

use g_ola::common::{DataType, Row, Schema, Value};
use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::{Catalog, Table};

/// A small table with NULLs sprinkled through every column.
///   k    x      y     s
///   1    1.0    10    "a"
///   1    NULL   20    "b"
///   2    3.0    NULL  "a"
///   2    4.0    40    NULL
///   3    -5.0   50    "c"
fn catalog() -> Catalog {
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Int),
        ("s", DataType::Str),
    ]));
    let rows = vec![
        Row::new(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(10),
            Value::str("a"),
        ]),
        Row::new(vec![
            Value::Int(1),
            Value::Null,
            Value::Int(20),
            Value::str("b"),
        ]),
        Row::new(vec![
            Value::Int(2),
            Value::Float(3.0),
            Value::Null,
            Value::str("a"),
        ]),
        Row::new(vec![
            Value::Int(2),
            Value::Float(4.0),
            Value::Int(40),
            Value::Null,
        ]),
        Row::new(vec![
            Value::Int(3),
            Value::Float(-5.0),
            Value::Int(50),
            Value::str("c"),
        ]),
    ];
    let mut c = Catalog::new();
    c.register("t", Arc::new(Table::try_new(schema, rows).unwrap()))
        .unwrap();
    c
}

/// Run on the exact engine, assert single-row expectations, then run online
/// to completion and assert it agrees.
fn check(sql: &str, expected: &[Value]) {
    let session = OnlineSession::new(catalog(), OnlineConfig::for_tests(2));
    let exact = session.execute_exact(sql).unwrap();
    assert_eq!(exact.num_rows(), 1, "{sql}");
    let exact_row = exact.row(0);
    for (i, want) in expected.iter().enumerate() {
        let got = exact_row.get(i);
        match (got.as_f64(), want.as_f64()) {
            (Some(g), Some(w)) => {
                assert!((g - w).abs() < 1e-9, "{sql} col {i}: {got} vs {want}")
            }
            _ => assert_eq!(got, want, "{sql} col {i}"),
        }
    }
    let online = session
        .execute_online(sql)
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_eq!(online.table.num_rows(), 1, "{sql} online");
    let online_row = online.table.row(0);
    for (i, want) in expected.iter().enumerate() {
        let got = online_row.get(i);
        match (got.as_f64(), want.as_f64()) {
            (Some(g), Some(w)) => {
                assert!(
                    (g - w).abs() < 1e-9,
                    "{sql} online col {i}: {got} vs {want}"
                )
            }
            _ => assert_eq!(got, want, "{sql} online col {i}"),
        }
    }
}

#[test]
fn aggregates_skip_nulls() {
    // AVG(x) over {1, 3, 4, -5} (one NULL skipped).
    check(
        "SELECT AVG(x), COUNT(x), COUNT(*) FROM t",
        &[Value::Float(0.75), Value::Float(4.0), Value::Float(5.0)],
    );
    // SUM(y) over {10, 20, 40, 50}.
    check(
        "SELECT SUM(y), MIN(y), MAX(y) FROM t",
        &[Value::Float(120.0), Value::Int(10), Value::Int(50)],
    );
}

#[test]
fn null_comparisons_filter() {
    // x > 0: NULL x fails the filter.
    check("SELECT COUNT(*) FROM t WHERE x > 0", &[Value::Float(3.0)]);
    // NOT (x > 0): NULL still fails (NOT NULL = NULL).
    check(
        "SELECT COUNT(*) FROM t WHERE NOT x > 0",
        &[Value::Float(1.0)],
    );
    // IS NULL / IS NOT NULL.
    check(
        "SELECT COUNT(*) FROM t WHERE x IS NULL",
        &[Value::Float(1.0)],
    );
    check(
        "SELECT COUNT(*) FROM t WHERE s IS NOT NULL",
        &[Value::Float(4.0)],
    );
}

#[test]
fn three_valued_and_or() {
    // (x > 0 OR y > 15): row2 (x NULL, y 20) and row5 (x -5, y 50) pass
    // via OR's TRUE arm — every row qualifies.
    check(
        "SELECT COUNT(*) FROM t WHERE x > 0 OR y > 15",
        &[Value::Float(5.0)],
    );
    // (x > 0 AND y > 15): row2 fails (NULL AND TRUE = NULL).
    check(
        "SELECT COUNT(*) FROM t WHERE x > 0 AND y > 15",
        &[Value::Float(1.0)],
    );
}

#[test]
fn in_list_null_semantics() {
    check(
        "SELECT COUNT(*) FROM t WHERE s IN ('a', 'c')",
        &[Value::Float(3.0)],
    );
    // NOT IN with a NULL in a row's s: NULL never passes.
    check(
        "SELECT COUNT(*) FROM t WHERE s NOT IN ('a')",
        &[Value::Float(2.0)],
    );
    check(
        "SELECT COUNT(*) FROM t WHERE k IN (1, 3)",
        &[Value::Float(3.0)],
    );
}

#[test]
fn between_and_case() {
    check(
        "SELECT COUNT(*) FROM t WHERE y BETWEEN 15 AND 45",
        &[Value::Float(2.0)],
    );
    // CASE with NULL handling: coalesce-style bucketing.
    check(
        "SELECT SUM(CASE WHEN x IS NULL THEN 0 ELSE 1 END) FROM t",
        &[Value::Float(4.0)],
    );
    check(
        "SELECT AVG(CASE WHEN y > 25 THEN 1.0 ELSE 0.0 END) FROM t",
        &[Value::Float(0.4)],
    );
}

#[test]
fn arithmetic_null_propagation_and_division() {
    // x + y is NULL for rows 2 and 3 → AVG over {11, 44, 45}.
    check("SELECT AVG(x + y) FROM t", &[Value::Float(100.0 / 3.0)]);
    // Division by zero yields NULL (skipped by aggregates): only rows 4
    // (40/1) and 5 (50/2) produce values.
    check("SELECT COUNT(y / (k - 1)) FROM t", &[Value::Float(2.0)]);
}

#[test]
fn scalar_functions_compose() {
    check(
        "SELECT SUM(abs(x)), MAX(greatest(x, 2.0)) FROM t",
        &[Value::Float(13.0), Value::Float(4.0)],
    );
    check(
        "SELECT COUNT(*) FROM t WHERE coalesce(s, 'missing') = 'missing'",
        &[Value::Float(1.0)],
    );
    check(
        "SELECT MIN(if(x < 0, 'neg', 'pos')) FROM t WHERE x IS NOT NULL",
        &[Value::str("neg")],
    );
}

#[test]
fn cast_semantics() {
    check(
        "SELECT SUM(CAST(s = 'a' AS INT)) FROM t WHERE s IS NOT NULL",
        &[Value::Float(2.0)],
    );
    check(
        "SELECT MAX(CAST(y AS FLOAT) / 2) FROM t",
        &[Value::Float(25.0)],
    );
}

#[test]
fn group_by_nulls_form_their_own_group() {
    let session = OnlineSession::new(catalog(), OnlineConfig::for_tests(2));
    let exact = session
        .execute_exact("SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s")
        .unwrap();
    // Groups: NULL, a, b, c — NULL sorts first.
    assert_eq!(exact.num_rows(), 4);
    assert!(exact.rows()[0].get(0).is_null());
    assert_eq!(exact.rows()[0].get(1), &Value::Float(1.0));
    assert_eq!(exact.rows()[1].get(0), &Value::str("a"));
    assert_eq!(exact.rows()[1].get(1), &Value::Float(2.0));
    let online = session
        .execute_online("SELECT s, COUNT(*) FROM t GROUP BY s ORDER BY s")
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_eq!(online.table.num_rows(), 4);
    assert!(online.table.rows()[0].get(0).is_null());
}

#[test]
fn nested_aggregate_with_nulls() {
    // Inner AVG(x) = 0.75; outer counts rows with x > 0.75 → {1? no (1.0 > 0.75 yes!), 3, 4} → 3.
    check(
        "SELECT COUNT(*) FROM t WHERE x > (SELECT AVG(x) FROM t)",
        &[Value::Float(3.0)],
    );
    // NULL x never passes even against an uncertain inner value.
    check(
        "SELECT COUNT(*) FROM t WHERE x < (SELECT AVG(x) FROM t)",
        &[Value::Float(1.0)],
    );
}

#[test]
fn empty_groups_and_empty_tables() {
    check(
        "SELECT COUNT(*), SUM(x), AVG(x) FROM t WHERE k > 99",
        &[Value::Float(0.0), Value::Null, Value::Null],
    );
}

#[test]
fn order_by_with_nulls_first() {
    let session = OnlineSession::new(catalog(), OnlineConfig::for_tests(2));
    let exact = session.execute_exact("SELECT x FROM t ORDER BY x").unwrap();
    assert!(exact.rows()[0].get(0).is_null());
    assert_eq!(exact.rows()[1].get(0), &Value::Float(-5.0));
    assert_eq!(exact.rows()[4].get(0), &Value::Float(4.0));
}
