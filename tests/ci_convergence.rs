//! Convergence of the reported confidence intervals under the
//! finite-population correction.
//!
//! As batches accumulate, the sampling fraction n/N grows, the fpc factor
//! √(1 − n/N) falls, and the reported CI must tighten: non-increasing
//! width batch over batch, and **exactly zero** at the final batch — once
//! every tuple has been seen there is no sampling error left, matching the
//! baselines' behaviour (`crates/baselines`).
//!
//! Bootstrap replica spread is itself a random quantity that can tick up
//! slightly between batches, so strict per-step monotonicity is checked
//! with a small multiplicative slack; the fpc guarantees the trend.

use std::sync::Arc;

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::ConvivaGenerator;

/// Per-step slack on non-increase: replica spread is a noisy estimate of a
/// shrinking quantity, so allow a step to regress by at most 10% before
/// calling it a violation. The final-batch check has NO slack (exact 0.0).
const STEP_SLACK: f64 = 1.10;

fn ci_widths(sql: &str) -> Vec<f64> {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(8000)),
        )
        .unwrap();
    let config = OnlineConfig::for_tests(8).with_trials(64);
    let session = OnlineSession::new(catalog, config);
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| {
        let r = r.expect("batch succeeds");
        let ci = r.ci().expect("primary CI present");
        assert!(
            ci.width() >= 0.0 && ci.width().is_finite(),
            "CI width must be finite and non-negative, got {}",
            ci.width()
        );
        ci.width()
    })
    .collect()
}

fn assert_converges(kind: &str, widths: &[f64]) {
    assert_eq!(widths.len(), 8, "{kind}: one report per batch");
    for (i, pair) in widths.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0] * STEP_SLACK,
            "{kind}: CI width grew from {} (batch {i}) to {} (batch {}); \
             all widths: {widths:?}",
            pair[0],
            pair[1],
            i + 1
        );
    }
    let last = *widths.last().unwrap();
    assert_eq!(
        last, 0.0,
        "{kind}: final batch saw every tuple, its CI must collapse to \
         exactly zero; all widths: {widths:?}"
    );
    assert!(
        widths[0] > 0.0,
        "{kind}: first batch must report genuine uncertainty"
    );
}

#[test]
fn count_ci_width_converges_to_zero() {
    let widths = ci_widths("SELECT COUNT(*) FROM sessions WHERE buffer_time > 8.0");
    assert_converges("COUNT", &widths);
}

#[test]
fn sum_ci_width_converges_to_zero() {
    let widths = ci_widths("SELECT SUM(buffer_time) FROM sessions WHERE play_time > 100.0");
    assert_converges("SUM", &widths);
}

#[test]
fn avg_ci_width_converges_to_zero() {
    let widths = ci_widths("SELECT AVG(play_time) FROM sessions");
    assert_converges("AVG", &widths);
}
