//! The multi-tenant preemption-safety contract, end to end.
//!
//! N concurrent sessions time-slicing one shared worker pool through the
//! `QueryService` must each see a report stream **bit-identical** to the
//! same query run solo on a single-threaded session. Batch-granularity
//! preemption plus the engine's threads=1/N contract make this hold by
//! construction; this test holds the whole threaded stack (channels,
//! scheduler thread, shared pool) to it — across seeds × {2, 4, 8}
//! concurrent sessions, same bit-for-bit discipline as
//! `tests/parallel_equivalence.rs`.

use std::sync::Arc;

use g_ola::core::sched::{QueryService, ServiceConfig};
use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, ConvivaGenerator};

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(4000)),
        )
        .expect("register table");
    catalog
}

fn base_config(seed: u64) -> OnlineConfig {
    OnlineConfig::for_tests(6).with_trials(16).with_seed(seed)
}

fn solo_stream(catalog: &Catalog, sql: &str, seed: u64) -> Vec<BatchReport> {
    let session = OnlineSession::new(catalog.clone(), base_config(seed).with_threads(1));
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| r.expect("batch succeeds")).collect()
}

fn assert_identical(name: &str, solo: &[BatchReport], service: &[BatchReport]) {
    assert_eq!(solo.len(), service.len(), "{name}: stream length");
    for (a, b) in solo.iter().zip(service) {
        let i = a.batch_index;
        assert_eq!(b.batch_index, i, "{name}: batch order");
        assert_eq!(a.rows_seen, b.rows_seen, "{name} batch {i}: rows seen");
        assert_eq!(
            a.uncertain_tuples, b.uncertain_tuples,
            "{name} batch {i}: uncertain-set size"
        );
        assert_eq!(
            a.recomputations, b.recomputations,
            "{name} batch {i}: recompute count"
        );
        assert_eq!(a.row_certain, b.row_certain, "{name} batch {i}: certainty");
        for (x, y) in a.table.rows().iter().zip(b.table.rows()) {
            for (u, v) in x.iter().zip(y.iter()) {
                match (u.as_f64(), v.as_f64()) {
                    (Some(fu), Some(fv)) => assert_eq!(
                        fu.to_bits(),
                        fv.to_bits(),
                        "{name} batch {i}: cell {fu} vs {fv}"
                    ),
                    _ => assert_eq!(u, v, "{name} batch {i}: cell"),
                }
            }
        }
        assert_eq!(
            a.estimates.len(),
            b.estimates.len(),
            "{name} batch {i}: estimate count"
        );
        for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
            assert_eq!(
                ea.estimate.value.to_bits(),
                eb.estimate.value.to_bits(),
                "{name} batch {i}: estimate value"
            );
            for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
            }
        }
    }
}

/// Run `n` sessions concurrently through one service and return each
/// session's full stream, in submission order.
fn service_streams(
    catalog: &Catalog,
    queries: &[(&str, &str)],
    seed: u64,
    threads: usize,
) -> Vec<Vec<BatchReport>> {
    let service = QueryService::new(
        catalog.clone(),
        ServiceConfig {
            max_active: queries.len(),
            queue_capacity: queries.len(),
            threads,
            base: base_config(seed),
        },
    );
    // Submit everything up front so the scheduler genuinely interleaves,
    // then drain the per-session channels in any order (delivery order
    // within one session is the scheduler's round order).
    let handles: Vec<_> = queries
        .iter()
        .map(|(name, sql)| {
            service
                .submit(sql)
                .unwrap_or_else(|e| panic!("{name} admits: {e}"))
        })
        .collect();
    handles
        .into_iter()
        .zip(queries)
        .map(|(handle, (name, _))| {
            handle
                .map(|r| r.unwrap_or_else(|e| panic!("{name} batch fails: {e}")))
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_streams_are_bit_identical_to_solo_runs() {
    let catalog = catalog();
    let suite = conviva::queries();
    for &n in &[2usize, 4, 8] {
        for seed in [7u64, 20_260_809] {
            // n sessions cycling through the query suite, all distinct
            // work in flight at once on a threads=2 shared pool.
            let queries: Vec<(&str, &str)> = (0..n).map(|i| suite[i % suite.len()]).collect();
            let streams = service_streams(&catalog, &queries, seed, 2);
            for ((name, sql), stream) in queries.iter().zip(&streams) {
                let solo = solo_stream(&catalog, sql, seed);
                assert!(
                    !stream.is_empty(),
                    "{name} (n={n}, seed={seed}): empty stream"
                );
                assert_identical(&format!("{name} (n={n}, seed={seed})"), &solo, stream);
            }
        }
    }
}

#[test]
fn cancellation_frees_a_slot_for_queued_sessions() {
    let catalog = catalog();
    let service = QueryService::new(
        catalog.clone(),
        ServiceConfig {
            max_active: 1,
            queue_capacity: 1,
            threads: 1,
            base: base_config(3),
        },
    );
    let first = service.submit(conviva::SBI).expect("first admits");
    let second = service.submit(conviva::C1).expect("second queues");
    // Cancel the active session: the queued one must activate and run to
    // completion (admitted sessions are never dropped).
    first.cancel();
    let stream: Vec<BatchReport> = second.map(|r| r.expect("batch succeeds")).collect();
    let solo = solo_stream(&catalog, conviva::C1, 3);
    assert_identical("C1 after cancel", &solo, &stream);
}
