//! End-to-end reproduction check: every query from the paper's evaluation
//! (§5 — SBI, C1–C3, Q11, Q17, Q18, Q20) runs online and converges to the
//! exact batch-engine answer, with sensible intermediate behaviour.

use std::sync::Arc;

use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::{Catalog, Table};
use g_ola::workloads::{conviva, tpch, ConvivaGenerator, TpchGenerator};

fn conviva_session(n: usize, k: usize) -> OnlineSession {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(n)),
        )
        .unwrap();
    OnlineSession::new(catalog, OnlineConfig::for_tests(k))
}

fn tpch_session(n: usize, k: usize) -> OnlineSession {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "lineitem_denorm",
            Arc::new(TpchGenerator::default().generate(n)),
        )
        .unwrap();
    OnlineSession::new(catalog, OnlineConfig::for_tests(k))
}

/// `tol == 0.0` demands bit-for-bit equality — since SUM/AVG/VAR fold
/// through exact expansions, the final-batch online answer is identical to
/// the batch engine's regardless of mini-batch order.
fn assert_tables_match(online: &Table, exact: &Table, tol: f64, name: &str) {
    assert_eq!(online.num_rows(), exact.num_rows(), "{name}: row count");
    let sort = |t: &Table| {
        let mut rows = t.rows().to_vec();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    };
    for (a, b) in sort(online).iter().zip(sort(exact).iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            match (x.as_f64(), y.as_f64()) {
                (Some(fx), Some(fy)) if tol == 0.0 => {
                    assert_eq!(
                        fx.to_bits(),
                        fy.to_bits(),
                        "{name}: {fx} vs {fy} (row {a} vs {b})"
                    );
                }
                (Some(fx), Some(fy)) => {
                    let scale = fy.abs().max(1.0);
                    assert!(
                        (fx - fy).abs() / scale < tol,
                        "{name}: {fx} vs {fy} (row {a} vs {b})"
                    );
                }
                _ => assert_eq!(x, y, "{name}: non-numeric mismatch"),
            }
        }
    }
}

fn check(session: &OnlineSession, name: &str, sql: &str) {
    let exact = session.execute_exact(sql).unwrap();
    let exec = session.execute_online(sql).unwrap();
    let last = exec.run_to_completion().unwrap();
    assert!(last.is_final(), "{name}");
    assert_tables_match(&last.table, &exact, 0.0, name);
}

#[test]
fn conviva_suite_online_matches_exact() {
    let s = conviva_session(4000, 10);
    for (name, sql) in conviva::queries() {
        check(&s, name, sql);
    }
}

#[test]
fn tpch_suite_online_matches_exact() {
    let s = tpch_session(4000, 10);
    for (name, sql) in tpch::queries() {
        check(&s, name, sql);
    }
}

#[test]
fn sbi_progressive_refinement_behaves() {
    let s = conviva_session(12_000, 24);
    let exec = s.execute_online(conviva::SBI).unwrap();
    let reports: Vec<_> = exec.map(|r| r.unwrap()).collect();
    let truth = reports.last().unwrap().primary().unwrap().value;
    // All estimates near truth; errors trend downward; uncertain sets are
    // small relative to the data (paper §3.2: "uncertain sets are very
    // small in practice").
    let mut rsds = Vec::new();
    for r in &reports {
        let est = r.primary().unwrap().value;
        assert!((est - truth).abs() / truth.abs() < 0.25);
        if let Some(rsd) = r.primary_rel_stddev() {
            rsds.push(rsd);
        }
        assert!(
            r.uncertain_tuples < 12_000 / 4,
            "|U| = {}",
            r.uncertain_tuples
        );
    }
    let early: f64 = rsds[..4].iter().sum::<f64>() / 4.0;
    let late: f64 = rsds[rsds.len() - 4..].iter().sum::<f64>() / 4.0;
    assert!(late < early, "rel-stddev did not shrink: {early} -> {late}");
}

#[test]
fn q17_early_stopping_is_accurate() {
    let s = tpch_session(8000, 20);
    let exact = s.execute_exact(tpch::Q17).unwrap();
    let truth = exact.rows()[0].get(0).as_f64().unwrap();
    let report = s
        .execute_online(tpch::Q17)
        .unwrap()
        .run_until_rel_stddev(0.05)
        .unwrap();
    let est = report.primary().unwrap().value;
    assert!(
        (est - truth).abs() / truth.abs() < 0.2,
        "early estimate {est} vs truth {truth}"
    );
}

#[test]
fn q11_uncertain_rows_get_flagged_then_settle() {
    let s = tpch_session(6000, 12);
    let reports: Vec<_> = s
        .execute_online(tpch::Q11)
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    // Early batches should contain at least one row whose membership is
    // still uncertain (groups near the threshold).
    let early_uncertain = reports[..4]
        .iter()
        .any(|r| r.row_certain.iter().any(|&c| !c));
    assert!(early_uncertain, "expected borderline groups early on");
    // Final batch: everything certain.
    assert!(reports.last().unwrap().row_certain.iter().all(|&c| c));
}

#[test]
fn multiplicity_scaled_estimates_are_unbiased_early() {
    // COUNT with multiplicity m = k/i should estimate the full-table count
    // from the first batch.
    let s = conviva_session(5000, 10);
    let mut exec = s
        .execute_online("SELECT COUNT(*) FROM sessions WHERE join_failed = 0")
        .unwrap();
    let first = exec.next().unwrap().unwrap();
    let exact = s
        .execute_exact("SELECT COUNT(*) FROM sessions WHERE join_failed = 0")
        .unwrap();
    let truth = exact.rows()[0].get(0).as_f64().unwrap();
    let est = first.primary().unwrap().value;
    assert!(
        (est - truth).abs() / truth < 0.15,
        "first-batch scaled count {est} vs {truth}"
    );
    assert!((first.multiplicity - 10.0).abs() < 1e-9);
}
