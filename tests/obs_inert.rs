//! The observability no-perturbation contract.
//!
//! Enabling the metrics registry must not change a single bit of any
//! `BatchReport`, at any thread count: instrumentation is write-only with
//! respect to the computation (`tests/parallel_equivalence.rs` proves the
//! thread-count half of the contract; this test proves the metrics half).
//! On top of that, the registry itself must be deterministic — two
//! identical runs export byte-identical default snapshots, and no
//! wall-clock-derived value appears without the explicit `timings` opt-in.
//!
//! Everything lives in ONE test function: the registry is process-global
//! and `cargo test` runs test functions concurrently, so splitting these
//! assertions up would race on `set_enabled` / `reset`.

use std::sync::Arc;

use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::obs;
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, ConvivaGenerator};

fn run(catalog: &Catalog, sql: &str, threads: usize) -> Vec<BatchReport> {
    let config = OnlineConfig::for_tests(8)
        .with_trials(32)
        .with_threads(threads);
    let session = OnlineSession::new(catalog.clone(), config);
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| r.expect("batch succeeds")).collect()
}

/// Compare two runs batch by batch, bit-for-bit on every float (same
/// discipline as `tests/parallel_equivalence.rs`).
fn assert_identical(name: &str, a: &[BatchReport], b: &[BatchReport]) {
    assert_eq!(a.len(), b.len(), "{name}: batch count");
    for (ra, rb) in a.iter().zip(b) {
        let i = ra.batch_index;
        assert_eq!(
            ra.uncertain_tuples, rb.uncertain_tuples,
            "{name} batch {i}: uncertain-set size"
        );
        assert_eq!(
            ra.recomputations, rb.recomputations,
            "{name} batch {i}: recompute count"
        );
        assert_eq!(
            ra.row_certain, rb.row_certain,
            "{name} batch {i}: row certainty"
        );
        for (x, y) in ra.table.rows().iter().zip(rb.table.rows()) {
            for (u, v) in x.iter().zip(y.iter()) {
                match (u.as_f64(), v.as_f64()) {
                    (Some(fu), Some(fv)) => assert_eq!(
                        fu.to_bits(),
                        fv.to_bits(),
                        "{name} batch {i}: cell {fu} vs {fv}"
                    ),
                    _ => assert_eq!(u, v, "{name} batch {i}: cell"),
                }
            }
        }
        assert_eq!(
            ra.estimates.len(),
            rb.estimates.len(),
            "{name} batch {i}: estimates"
        );
        for (ea, eb) in ra.estimates.iter().zip(&rb.estimates) {
            assert_eq!(
                ea.estimate.value.to_bits(),
                eb.estimate.value.to_bits(),
                "{name} batch {i}: estimate value"
            );
            for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
            }
            match (
                ea.estimate.ci_percentile(0.95),
                eb.estimate.ci_percentile(0.95),
            ) {
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.lo.to_bits(), cb.lo.to_bits(), "{name} batch {i}: CI lo");
                    assert_eq!(ca.hi.to_bits(), cb.hi.to_bits(), "{name} batch {i}: CI hi");
                }
                (None, None) => {}
                other => panic!("{name} batch {i}: CI presence differs: {other:?}"),
            }
        }
    }
}

#[test]
fn observability_is_inert_and_deterministic() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(6000)),
        )
        .unwrap();
    let sql = conviva::SBI;

    // Baselines with the registry off (the process default).
    assert!(!obs::enabled(), "registry must default to off");
    let off1 = run(&catalog, sql, 1);
    let off4 = run(&catalog, sql, 4);

    // Same runs with the registry on, snapshotting after each.
    obs::set_enabled(true);
    let on1 = run(&catalog, sql, 1);
    let snap1 = obs::snapshot_json(false);
    let prom1 = obs::prometheus(false);
    obs::reset();
    let on1_again = run(&catalog, sql, 1);
    let snap1_again = obs::snapshot_json(false);
    obs::reset();
    let on4 = run(&catalog, sql, 4);
    let snap4 = obs::snapshot_json(false);
    let prom4 = obs::prometheus(false);
    obs::set_enabled(false);

    // 1. Inert: metrics on vs off, bit-identical at both thread counts.
    assert_identical("threads=1 obs on vs off", &off1, &on1);
    assert_identical("threads=4 obs on vs off", &off4, &on4);
    assert_identical("threads=1 vs threads=4", &off1, &off4);

    // 2. Deterministic registry: identical runs, byte-identical snapshots.
    assert_identical("threads=1 repeat", &on1, &on1_again);
    assert_eq!(
        snap1, snap1_again,
        "two identical runs must export identical default snapshots"
    );

    // 3. No wall-clock values without the timings opt-in. The only
    //    histograms the engine registers are duration histograms, so a
    //    default snapshot must contain no `sum` at all, no span seconds,
    //    and no timestamp.
    for snap in [&snap1, &snap4] {
        assert!(!snap.contains("generated_unix_ms"), "timestamp leaked");
        assert!(!snap.contains("\"sum\""), "duration sum leaked: {snap}");
        assert!(!snap.contains("total_seconds"), "span seconds leaked");
    }
    assert!(!prom4.contains("_seconds_total"), "span seconds leaked");
    assert!(
        !prom4.contains("queue_wait_seconds_sum"),
        "duration sum leaked"
    );

    // 4. The expected instruments actually registered and counted.
    assert!(snap1.contains("\"report.batches\": 8"), "snapshot: {snap1}");
    for name in ["classify", "fold", "publish", "report", "ingest", "join"] {
        assert!(
            snap1.contains(&format!("\"{name}\"")),
            "span '{name}' missing from snapshot: {snap1}"
        );
    }
    // Parent links are schedule-independent: classify closes under ingest
    // even when it runs on a pool worker thread.
    assert!(prom4.contains("gola_span_classify_parent_total{parent=\"ingest\"}"));
    assert!(prom1.contains("gola_report_batches_total 8"));
    // The threads=4 run exercises the worker pool; threads=1 takes the
    // uninstrumented sequential fast path.
    assert!(snap4.contains("\"pool.jobs\""), "snapshot: {snap4}");
    assert!(
        !snap1.contains("\"pool.jobs\""),
        "threads=1 must not touch pool instruments: {snap1}"
    );
}
