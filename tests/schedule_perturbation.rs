//! Seeded schedule-perturbation stress for the parallel runtime — the
//! dynamic complement to `golint`'s static `schedule-leak` rule.
//!
//! `parallel_equivalence` shows threads=1 ≡ threads=N under the pool's
//! *natural* dispatch order. That order is still fairly tame: jobs are
//! queued in submission order and workers drain front-to-back. Here the
//! `WorkerPool` is put in perturbation mode (`schedule_perturbation` in
//! [`OnlineConfig`]), which Fisher–Yates-shuffles every run's job queue
//! under a per-run seeded RNG — chunk classify/fold jobs, block ingest
//! jobs, and publish chunks all start (and therefore complete) in
//! adversarial orders. Every perturbed run must still produce the exact
//! bit-identical `BatchReport` stream as the unperturbed sequential
//! reference; any divergence means some accumulator or output ordering
//! silently depends on the physical schedule.

use std::sync::Arc;

use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::storage::Catalog;
use g_ola::workloads::{conviva, tpch, ConvivaGenerator, TpchGenerator};

fn run(catalog: &Catalog, sql: &str, threads: usize, perturb: Option<u64>) -> Vec<BatchReport> {
    let mut config = OnlineConfig::for_tests(8)
        .with_trials(32)
        .with_threads(threads);
    config.schedule_perturbation = perturb;
    let session = OnlineSession::new(catalog.clone(), config);
    let exec = session.execute_online(sql).expect("query compiles");
    exec.map(|r| r.expect("batch succeeds")).collect()
}

/// Compare two runs batch by batch, bit-for-bit on every float.
fn assert_identical(name: &str, a: &[BatchReport], b: &[BatchReport]) {
    assert_eq!(a.len(), b.len(), "{name}: batch count");
    for (ra, rb) in a.iter().zip(b) {
        let i = ra.batch_index;
        assert_eq!(
            ra.uncertain_tuples, rb.uncertain_tuples,
            "{name} batch {i}: uncertain-set size"
        );
        assert_eq!(
            ra.recomputations, rb.recomputations,
            "{name} batch {i}: recompute count"
        );
        assert_eq!(
            ra.row_certain, rb.row_certain,
            "{name} batch {i}: row certainty"
        );
        assert_eq!(
            ra.table.num_rows(),
            rb.table.num_rows(),
            "{name} batch {i}: result rows"
        );
        for (x, y) in ra.table.rows().iter().zip(rb.table.rows()) {
            for (u, v) in x.iter().zip(y.iter()) {
                match (u.as_f64(), v.as_f64()) {
                    (Some(fu), Some(fv)) => assert_eq!(
                        fu.to_bits(),
                        fv.to_bits(),
                        "{name} batch {i}: cell {fu} vs {fv}"
                    ),
                    _ => assert_eq!(u, v, "{name} batch {i}: cell"),
                }
            }
        }
        assert_eq!(
            ra.estimates.len(),
            rb.estimates.len(),
            "{name} batch {i}: estimates"
        );
        for (ea, eb) in ra.estimates.iter().zip(&rb.estimates) {
            assert_eq!(
                (ea.row, ea.col),
                (eb.row, eb.col),
                "{name} batch {i}: cell id"
            );
            assert_eq!(
                ea.estimate.value.to_bits(),
                eb.estimate.value.to_bits(),
                "{name} batch {i}: estimate value"
            );
            for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
                assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
            }
        }
    }
}

/// Unperturbed sequential reference vs. shuffled parallel runs across
/// several thread counts and shuffle seeds.
fn check(catalog: &Catalog, name: &str, sql: &str) {
    let reference = run(catalog, sql, 1, None);
    for threads in [2, 4] {
        for seed in [0x5EED_0001u64, 0xDECADE, 0xFEED_BEEF] {
            let perturbed = run(catalog, sql, threads, Some(seed));
            assert_identical(
                &format!("{name} (threads={threads}, seed={seed:#x})"),
                &reference,
                &perturbed,
            );
        }
    }
}

#[test]
fn conviva_queries_survive_shuffled_schedules() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "sessions",
            Arc::new(ConvivaGenerator::default().generate(6000)),
        )
        .unwrap();
    check(&catalog, "SBI", conviva::SBI);
    check(&catalog, "C2", conviva::C2);
    check(&catalog, "C3", conviva::C3);
}

#[test]
fn tpch_queries_survive_shuffled_schedules() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            "lineitem_denorm",
            Arc::new(TpchGenerator::default().generate(6000)),
        )
        .unwrap();
    check(&catalog, "Q11", tpch::Q11);
    check(&catalog, "Q17", tpch::Q17);
    check(&catalog, "Q18", tpch::Q18);
}

/// The shuffle must also leave pool-level panic semantics untouched: the
/// first panic by *submission* index propagates, regardless of the order
/// jobs physically ran in.
#[test]
fn perturbed_pool_keeps_panic_order() {
    use g_ola::core::WorkerPool;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    for seed in [1u64, 2, 3, 4, 5] {
        let pool = WorkerPool::with_perturbation(4, seed);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
            .map(|i| {
                Box::new(move || {
                    if i == 5 || i == 11 {
                        panic!("job {i} exploded");
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(jobs))).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(msg, "job 5 exploded", "seed {seed}");
    }
}
