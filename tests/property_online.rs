//! Randomized end-to-end differential: for random tables, random batch
//! counts, seeds and a suite of query shapes (monotonic, nested, grouped,
//! correlated, membership), the online executor's final answer must equal
//! the exact batch engine's.

use std::sync::Arc;

use g_ola::common::{DataType, Row, Schema, Value};
use g_ola::core::{OnlineConfig, OnlineSession};
use g_ola::storage::{Catalog, Table};
use proptest::prelude::*;

fn random_table(rows: &[(i64, f64, f64, bool)]) -> Table {
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("flag", DataType::Bool),
    ]));
    let rows: Vec<Row> = rows
        .iter()
        .map(|(k, x, y, b)| {
            Row::new(vec![
                Value::Int(*k),
                Value::Float(*x),
                Value::Float(*y),
                Value::Bool(*b),
            ])
        })
        .collect();
    Table::new_unchecked(schema, rows)
}

const QUERIES: &[&str] = &[
    // Monotonic.
    "SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t",
    "SELECT k, AVG(x) FROM t GROUP BY k ORDER BY k",
    // Nested uncorrelated.
    "SELECT AVG(y) FROM t WHERE x > (SELECT AVG(x) FROM t)",
    "SELECT COUNT(*) FROM t WHERE x < 0.5 * (SELECT AVG(x) FROM t) + 1.0",
    // Correlated (decorrelated into a grouped block).
    "SELECT SUM(y) FROM t a WHERE x > (SELECT AVG(x) FROM t b WHERE b.k = a.k)",
    // Grouped with HAVING against a global scalar.
    "SELECT k, SUM(x) AS s FROM t GROUP BY k \
     HAVING SUM(x) > 0.2 * (SELECT SUM(x) FROM t) ORDER BY s DESC",
    // Membership semi-join.
    "SELECT COUNT(*), AVG(y) FROM t WHERE k IN \
     (SELECT k FROM t GROUP BY k HAVING SUM(x) > 5.0)",
];

fn tables_equal(a: &Table, b: &Table) -> Result<(), String> {
    if a.num_rows() != b.num_rows() {
        return Err(format!("row count {} vs {}", a.num_rows(), b.num_rows()));
    }
    let sort = |t: &Table| {
        let mut rows = t.rows().to_vec();
        rows.sort_by(|x, y| {
            for (u, v) in x.iter().zip(y.iter()) {
                let ord = u.total_cmp(v);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    };
    for (ra, rb) in sort(a).iter().zip(sort(b).iter()) {
        for (x, y) in ra.iter().zip(rb.iter()) {
            match (x.as_f64(), y.as_f64()) {
                (Some(fx), Some(fy)) => {
                    if (fx - fy).abs() > 1e-6 * (1.0 + fy.abs()) {
                        return Err(format!("{fx} vs {fy}"));
                    }
                }
                _ => {
                    if x != y {
                        return Err(format!("{x} vs {y}"));
                    }
                }
            }
        }
    }
    Ok(())
}

proptest! {
    // End-to-end runs are relatively slow; a modest case count still covers
    // a lot of ground across 7 query shapes per case.
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn online_final_answer_equals_exact(
        rows in prop::collection::vec(
            (0i64..6, -10.0f64..10.0, -5.0f64..5.0, any::<bool>()),
            20..120,
        ),
        batches in 2usize..8,
        seed in any::<u64>(),
        trials in 0u32..24,
    ) {
        let mut catalog = Catalog::new();
        catalog.register("t", Arc::new(random_table(&rows))).unwrap();
        let config = OnlineConfig::for_tests(batches)
            .with_seed(seed)
            .with_trials(trials);
        let session = OnlineSession::new(catalog, config);
        for sql in QUERIES {
            let exact = session.execute_exact(sql).unwrap();
            let last = session
                .execute_online(sql)
                .unwrap()
                .run_to_completion()
                .unwrap();
            if let Err(msg) = tables_equal(&last.table, &exact) {
                prop_assert!(false, "query {sql}: {msg}");
            }
        }
    }
}
