//! Moving-N contracts for growing streams (DESIGN.md §3.12).
//!
//! A query over a [`StreamTable`] sees a population that can still grow:
//! `N` in the finite-population correction and the multiplicity is the
//! stream's **live** total (sealed + buffered), not a query-start
//! snapshot. These tests pin the two halves of that contract:
//!
//! * **FPC regression** — an append after batch `k` strictly widens (or
//!   holds) later CIs relative to a run without the append; under the old
//!   static-N assumption `n` could reach the stale `N` and collapse the CI
//!   to zero while data was still arriving.
//! * **Bit-identity** — with a deterministic append/seal/close schedule
//!   (driven between iterator steps), the full report stream is identical
//!   bit for bit at `threads = 1` vs `threads = N` and across same-seed
//!   reruns, extra segment-batches included.

use std::sync::Arc;

use g_ola::bootstrap::BootstrapSpec;
use g_ola::common::Row;
use g_ola::core::{BatchReport, OnlineConfig, OnlineSession};
use g_ola::storage::{Catalog, StreamTable};
use g_ola::workloads::ConvivaGenerator;

const SQL: &str = "SELECT device, AVG(play_time) AS a0, SUM(buffer_time) AS a1 FROM sessions \
     GROUP BY device ORDER BY a0 DESC";
const BASE_BATCHES: usize = 4;

/// The full 360-row workload; the first 240 are sealed before the query
/// starts, the rest arrive while it runs.
fn all_rows() -> (Arc<g_ola::common::Schema>, Vec<Row>) {
    let gen = ConvivaGenerator {
        seed: 0x16_E57,
        ..ConvivaGenerator::default()
    };
    let table = gen.generate(360);
    (Arc::clone(table.schema()), table.rows())
}

fn config(threads: usize) -> OnlineConfig {
    OnlineConfig {
        num_batches: BASE_BATCHES,
        bootstrap: BootstrapSpec::new(24, 0xB0_075),
        partition_seed: 0x5EED,
        ..OnlineConfig::default()
    }
    .with_threads(threads)
}

fn session_over(stream: &Arc<StreamTable>, threads: usize) -> OnlineSession {
    let mut catalog = Catalog::new();
    catalog
        .register_stream("sessions", Arc::clone(stream))
        .expect("register stream");
    OnlineSession::new(catalog, config(threads))
}

/// Bit-exact comparison of two reports from the same schedule position.
fn assert_report_identical(name: &str, a: &BatchReport, b: &BatchReport) {
    let i = a.batch_index;
    assert_eq!(i, b.batch_index, "{name}: batch index");
    assert_eq!(
        a.num_batches, b.num_batches,
        "{name} batch {i}: num_batches"
    );
    assert_eq!(a.rows_seen, b.rows_seen, "{name} batch {i}: rows seen");
    assert_eq!(a.total_rows, b.total_rows, "{name} batch {i}: total rows");
    assert_eq!(
        a.multiplicity.to_bits(),
        b.multiplicity.to_bits(),
        "{name} batch {i}: multiplicity"
    );
    assert_eq!(a.row_certain, b.row_certain, "{name} batch {i}: certainty");
    assert_eq!(
        a.table.num_rows(),
        b.table.num_rows(),
        "{name} batch {i}: result rows"
    );
    for (x, y) in a.table.rows().iter().zip(b.table.rows()) {
        for (u, v) in x.iter().zip(y.iter()) {
            match (u.as_f64(), v.as_f64()) {
                (Some(fu), Some(fv)) => {
                    assert_eq!(fu.to_bits(), fv.to_bits(), "{name} batch {i}: cell")
                }
                _ => assert_eq!(u, v, "{name} batch {i}: cell"),
            }
        }
    }
    assert_eq!(
        a.estimates.len(),
        b.estimates.len(),
        "{name} batch {i}: estimate count"
    );
    for (ea, eb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(
            (ea.row, ea.col),
            (eb.row, eb.col),
            "{name} batch {i}: cell id"
        );
        assert_eq!(
            ea.estimate.value.to_bits(),
            eb.estimate.value.to_bits(),
            "{name} batch {i}: estimate value"
        );
        assert_eq!(
            ea.estimate.fpc.to_bits(),
            eb.estimate.fpc.to_bits(),
            "{name} batch {i}: fpc"
        );
        for (x, y) in ea.estimate.replicas.iter().zip(&eb.estimate.replicas) {
            assert_eq!(x.to_bits(), y.to_bits(), "{name} batch {i}: replica");
        }
    }
}

/// Drive the canonical growing schedule: 240 rows sealed up front, one
/// segment sealed mid-run, one more appended + sealed at close. Appends
/// happen between iterator steps, so the schedule — and therefore the
/// report stream — is deterministic.
fn run_growing_schedule(threads: usize) -> Vec<BatchReport> {
    let (schema, rows) = all_rows();
    let stream = StreamTable::new(schema);
    stream.append_rows(&rows[..240]).expect("seed rows");
    stream.seal().expect("seed segment");
    let session = session_over(&stream, threads);
    let mut exec = session.execute_online(SQL).expect("query compiles");
    let mut reports = Vec::new();
    for _ in 0..2 {
        reports.push(exec.next().expect("base batch").expect("succeeds"));
    }
    // Mid-run growth: one segment becomes a future mini-batch, and 60 more
    // rows sit in the write buffer — visible to N, not yet queryable.
    stream.append_rows(&rows[240..300]).expect("append");
    stream.seal().expect("seal mid-run segment");
    stream.append_rows(&rows[300..]).expect("append tail");
    for _ in 2..BASE_BATCHES {
        reports.push(exec.next().expect("base batch").expect("succeeds"));
    }
    // The mid-run segment surfaces as an extra batch.
    reports.push(exec.next().expect("extra batch").expect("succeeds"));
    // Close: the tail seals, the stream ends, the final batch is exact.
    stream.close().expect("close");
    reports.push(exec.next().expect("final batch").expect("succeeds"));
    assert!(exec.next().is_none(), "stream drained ⇒ iterator ends");
    reports
}

#[test]
fn growing_schedule_is_bit_identical_across_threads_and_reruns() {
    let solo = run_growing_schedule(1);
    assert_eq!(solo.len(), BASE_BATCHES + 2);

    // Same-seed rerun: bit-exact.
    let rerun = run_growing_schedule(1);
    for (a, b) in solo.iter().zip(&rerun) {
        assert_report_identical("rerun", a, b);
    }
    // threads = N: bit-exact (the paper-repo's core contract, extended to
    // batches that did not exist when the query started).
    let pooled = run_growing_schedule(4);
    for (a, b) in solo.iter().zip(&pooled) {
        assert_report_identical("threads", a, b);
    }
}

#[test]
fn final_report_of_a_drained_stream_is_exact() {
    let reports = run_growing_schedule(1);
    let last = reports.last().expect("reports");
    assert!(last.is_final(), "drained + closed ⇒ final");
    assert_eq!(last.rows_seen, 360);
    assert_eq!(last.total_rows, 360);
    assert_eq!(last.multiplicity, 1.0, "final multiplicity is exactly 1");
    for cell in &last.estimates {
        assert_eq!(cell.estimate.fpc, 0.0, "final FPC is exactly 0");
    }
    // No earlier report may claim finality: while the stream was open the
    // schedule could still grow.
    for r in &reports[..reports.len() - 1] {
        assert!(
            !r.is_final(),
            "batch {} claimed finality early",
            r.batch_index
        );
    }
}

#[test]
fn append_after_batch_k_widens_or_holds_the_ci() {
    let (schema, rows) = all_rows();

    // Control: same 240-row snapshot, nothing ever appended mid-run.
    let control_stream = StreamTable::new(Arc::clone(&schema));
    control_stream.append_rows(&rows[..240]).expect("seed");
    control_stream.seal().expect("seal");
    let session = session_over(&control_stream, 1);
    let mut exec = session.execute_online(SQL).expect("compiles");
    let control: Vec<BatchReport> = (0..BASE_BATCHES)
        .map(|_| exec.next().expect("batch").expect("succeeds"))
        .collect();

    // Grown: identical snapshot and seeds, but 120 rows arrive after
    // batch 1 (60 sealed + 60 buffered — both count toward the live N).
    let grown_stream = StreamTable::new(schema);
    grown_stream.append_rows(&rows[..240]).expect("seed");
    grown_stream.seal().expect("seal");
    let session = session_over(&grown_stream, 1);
    let mut exec = session.execute_online(SQL).expect("compiles");
    let mut grown: Vec<BatchReport> = Vec::new();
    for k in 0..BASE_BATCHES {
        if k == 2 {
            grown_stream.append_rows(&rows[240..300]).expect("append");
            grown_stream.seal().expect("seal");
            grown_stream.append_rows(&rows[300..]).expect("append tail");
        }
        grown.push(exec.next().expect("batch").expect("succeeds"));
    }

    // Before the append the two runs are the same run.
    for k in 0..2 {
        assert_report_identical("pre-append", &control[k], &grown[k]);
    }
    // After it, the same processed rows are extrapolated to the larger
    // live N: SUM-like estimates scale by exactly the multiplicity ratio,
    // AVG-like ones are unchanged, and every CI is computed against the
    // live N — wider, never narrower. With the old static N the control's
    // batch 3 hits n == N and its correction collapses; the grown run's
    // must not.
    for k in 2..BASE_BATCHES {
        let (c, g) = (&control[k], &grown[k]);
        assert_eq!(g.total_rows, 360, "live N counts sealed + buffered rows");
        assert_eq!(c.total_rows, 240);
        assert_eq!(g.rows_seen, c.rows_seen, "same base schedule");
        let scale = g.multiplicity / c.multiplicity;
        assert!(
            (scale - 360.0 / 240.0).abs() < 1e-12,
            "batch {k}: multiplicity must track the live N"
        );
        let mut widened = 0usize;
        for (cc, gc) in c.estimates.iter().zip(&g.estimates) {
            // Output columns: 0 = device (key), 1 = AVG(play_time),
            // 2 = SUM(buffer_time).
            let (cv, gv) = (cc.estimate.value, gc.estimate.value);
            if cc.col == 1 {
                assert!(
                    (gv - cv).abs() <= 1e-9 * cv.abs(),
                    "batch {k}: AVG is population-size free ({cv} vs {gv})"
                );
            } else {
                assert!(
                    (gv - cv * scale).abs() <= 1e-9 * (cv * scale).abs(),
                    "batch {k}: SUM must scale by the multiplicity ratio \
                     ({cv} * {scale} vs {gv})"
                );
            }
            assert!(
                gc.estimate.fpc >= cc.estimate.fpc,
                "batch {k}: FPC must widen or hold ({} < {})",
                gc.estimate.fpc,
                cc.estimate.fpc
            );
            let (Some(ci_c), Some(ci_g)) = (
                cc.estimate.ci_percentile(c.ci_level),
                gc.estimate.ci_percentile(g.ci_level),
            ) else {
                continue;
            };
            assert!(
                ci_g.half_width() >= ci_c.half_width(),
                "batch {k}: CI narrowed after an append ({} < {})",
                ci_g.half_width(),
                ci_c.half_width()
            );
            if ci_g.half_width() > ci_c.half_width() {
                widened += 1;
            }
        }
        assert!(widened > 0, "batch {k}: the append widened no CI at all");
    }
    // The control's last batch sees n == N on a still-open stream: the
    // correction legitimately reaches zero against the *current*
    // population, but the report must not claim finality — N can move.
    assert!(!control.last().unwrap().is_final());
}
