//! Criterion microbenchmarks for the engine's hot paths: expression
//! evaluation, three-valued classification, weighted/replicated aggregate
//! updates, bootstrap weight derivation, mini-batch partitioning and
//! hash-join probing.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use gola_agg::{AggKind, ReplicatedStates};
use gola_bootstrap::BootstrapSpec;
use gola_common::rng::poisson_weight;
use gola_common::{row, DataType, Schema, Value};
use gola_expr::eval::{eval, eval_predicate, eval_tri, ExactContext};
use gola_expr::{BinOp, Expr, SubqueryId};
use gola_storage::{MiniBatchPartitioner, Table};

fn bench_expr_eval(c: &mut Criterion) {
    let r = row![42i64, 3.5f64, 17.0f64];
    let e = Expr::binary(
        BinOp::Add,
        Expr::binary(BinOp::Mul, Expr::col(1), Expr::lit(2.0)),
        Expr::binary(BinOp::Div, Expr::col(2), Expr::col(0)),
    );
    let mut g = c.benchmark_group("expr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("eval_arithmetic", |b| {
        b.iter(|| {
            let ctx = ExactContext::new(black_box(&r));
            eval(black_box(&e), &ctx).unwrap()
        })
    });
    let pred = Expr::and(
        Expr::gt(Expr::col(1), Expr::lit(2.0)),
        Expr::lt(Expr::col(2), Expr::lit(100.0)),
    );
    g.bench_function("eval_predicate", |b| {
        b.iter(|| {
            let ctx = ExactContext::new(black_box(&r));
            eval_predicate(black_box(&pred), &ctx).unwrap()
        })
    });
    g.finish();
}

struct RangeCtx {
    row: gola_common::Row,
    range: gola_expr::RangeVal,
}

impl gola_expr::EvalContext for RangeCtx {
    fn column(&self, idx: usize) -> &Value {
        self.row.get(idx)
    }
    fn scalar_current(&self, _: SubqueryId, _: &[Value]) -> gola_common::Result<Value> {
        Ok(Value::Float(37.0))
    }
    fn scalar_range(&self, _: SubqueryId, _: &[Value]) -> gola_common::Result<gola_expr::RangeVal> {
        Ok(self.range.clone())
    }
    fn member_current(&self, _: SubqueryId, _: &[Value]) -> gola_common::Result<bool> {
        Ok(false)
    }
    fn member_tri(&self, _: SubqueryId, _: &[Value]) -> gola_common::Result<gola_expr::Tri> {
        Ok(gola_expr::Tri::Maybe)
    }
}

fn bench_classification(c: &mut Criterion) {
    // The inner loop of uncertain/deterministic partitioning: classify a
    // tuple against a variation range (paper §3.2).
    let ctx = RangeCtx {
        row: row![35.0f64],
        range: gola_expr::RangeVal::num(28.9, 45.1),
    };
    let pred = Expr::gt(
        Expr::col(0),
        Expr::binary(
            BinOp::Mul,
            Expr::lit(1.1),
            Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![],
            },
        ),
    );
    let mut g = c.benchmark_group("classify");
    g.throughput(Throughput::Elements(1));
    g.bench_function("eval_tri_uncertain", |b| {
        b.iter(|| eval_tri(black_box(&pred), black_box(&ctx)).unwrap())
    });
    g.finish();
}

fn bench_agg_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("agg");
    let spec = BootstrapSpec::new(100, 42);
    let kinds = [AggKind::Sum, AggKind::Avg];
    let values = [Value::Float(12.5), Value::Float(12.5)];

    g.throughput(Throughput::Elements(1));
    g.bench_function("replicated_update_100_trials", |b| {
        let mut rs = ReplicatedStates::new(&kinds, 100);
        let mut t = 0u64;
        b.iter(|| {
            rs.update(black_box(&values), t, &spec);
            t = t.wrapping_add(1);
        })
    });
    g.bench_function("replicated_update_0_trials", |b| {
        let mut rs = ReplicatedStates::new(&kinds, 0);
        let mut t = 0u64;
        b.iter(|| {
            rs.update(black_box(&values), t, &BootstrapSpec::new(0, 42));
            t = t.wrapping_add(1);
        })
    });
    g.finish();
}

fn bench_bootstrap_weights(c: &mut Criterion) {
    let mut g = c.benchmark_group("bootstrap");
    g.throughput(Throughput::Elements(1));
    g.bench_function("poisson_weight", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let w = poisson_weight(black_box(t), 7, 42);
            t = t.wrapping_add(1);
            w
        })
    });
    g.finish();
}

fn make_table(n: usize) -> Arc<Table> {
    let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]));
    Arc::new(Table::new_unchecked(
        schema,
        (0..n).map(|i| row![i as i64]).collect(),
    ))
}

fn bench_partitioner(c: &mut Criterion) {
    let table = make_table(100_000);
    let mut g = c.benchmark_group("partition");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("partition_100k_rows_100_batches", |b| {
        b.iter(|| MiniBatchPartitioner::new(Arc::clone(&table), 100, 7).unwrap())
    });
    let p = MiniBatchPartitioner::new(Arc::clone(&table), 100, 7).unwrap();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("materialize_one_batch", |b| {
        b.iter(|| p.batch(black_box(50)))
    });
    g.finish();
}

fn bench_hash_probe(c: &mut Criterion) {
    // Group lookup by Vec<Value> key — the hash-aggregate hot path.
    let mut map: gola_common::FxHashMap<Vec<Value>, u64> = gola_common::FxHashMap::default();
    for i in 0..10_000i64 {
        map.insert(vec![Value::Int(i)], i as u64);
    }
    let mut g = c.benchmark_group("hash");
    g.throughput(Throughput::Elements(1));
    g.bench_function("group_key_probe", |b| {
        let mut i = 0i64;
        b.iter(|| {
            let key = vec![Value::Int(black_box(i % 10_000))];
            i = i.wrapping_add(1);
            *map.get(&key).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_expr_eval,
    bench_classification,
    bench_agg_updates,
    bench_bootstrap_weights,
    bench_partitioner,
    bench_hash_probe
);
criterion_main!(benches);
