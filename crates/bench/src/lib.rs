//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one experiment from the paper's
//! evaluation (see `DESIGN.md` §4 for the per-experiment index, and
//! `EXPERIMENTS.md` for recorded results). The binaries print both a
//! human-readable table and machine-readable CSV lines (prefixed `csv,`)
//! so results can be scraped into plots.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gola_core::{BatchReport, OnlineConfig, OnlineExecutor, OnlineSession, PreparedQuery};
use gola_storage::{Catalog, MiniBatchPartitioner};
use gola_workloads::{ConvivaGenerator, TpchGenerator};

/// Global scale factor from `GOLA_SCALE` (default 1.0). Use e.g.
/// `GOLA_SCALE=0.1` for a quick smoke run of every figure.
pub fn scale() -> f64 {
    std::env::var("GOLA_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .max(0.01)
}

/// Scaled row count.
pub fn rows(base: usize) -> usize {
    ((base as f64 * scale()) as usize).max(1000)
}

/// Worker-thread count shared by all bench binaries: `--threads N` (or
/// `--threads=N`) on the command line, else `GOLA_THREADS`, else 1.
pub fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--threads" {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return v;
            }
        }
        if let Some(v) = a.strip_prefix("--threads=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("GOLA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Apply the bench-wide worker-thread count to a config.
pub fn with_bench_threads(config: OnlineConfig) -> OnlineConfig {
    config.with_threads(threads_arg())
}

/// Catalog with the Conviva-like sessions fact table.
pub fn conviva_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "sessions",
        Arc::new(ConvivaGenerator::default().generate(n)),
    )
    .expect("fresh catalog");
    c
}

/// Catalog with the denormalized TPC-H-like fact table.
pub fn tpch_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "lineitem_denorm",
        Arc::new(TpchGenerator::default().generate(n)),
    )
    .expect("fresh catalog");
    c
}

/// Run a query online to completion, returning every report.
pub fn run_online(catalog: &Catalog, sql: &str, config: &OnlineConfig) -> Vec<BatchReport> {
    let session = OnlineSession::new(catalog.clone(), config.clone());
    let exec = session.execute_online(sql).expect("query must compile");
    exec.map(|r| r.expect("batch must succeed")).collect()
}

/// Build the pieces for driving executors manually (shared partitioner so
/// different strategies see identical batches).
pub fn prepare(
    catalog: &Catalog,
    sql: &str,
    config: &OnlineConfig,
) -> (PreparedQuery, Arc<MiniBatchPartitioner>) {
    let session = OnlineSession::new(catalog.clone(), config.clone());
    let prepared = session.prepare(sql).expect("query must compile");
    let table = catalog.get(&prepared.stream_table).expect("stream table");
    let k = config.num_batches.min(table.num_rows()).max(1);
    let partitioner =
        Arc::new(MiniBatchPartitioner::new(table, k, config.partition_seed).expect("partitioner"));
    (prepared, partitioner)
}

/// Construct a G-OLA executor over a shared partitioner.
pub fn gola_executor(
    catalog: &Catalog,
    prepared: &PreparedQuery,
    partitioner: Arc<MiniBatchPartitioner>,
    config: &OnlineConfig,
) -> OnlineExecutor {
    // Same (table, k, seed) ⇒ the clone produces bit-identical batches, so
    // baselines sharing `partitioner` still see the exact same schedule.
    let uniform = Arc::new(gola_storage::Partitioner::Uniform((*partitioner).clone()));
    OnlineExecutor::new(catalog, prepared.meta.clone(), uniform, config.clone()).expect("executor")
}

/// Time the exact batch engine on a query.
pub fn time_exact(catalog: &Catalog, sql: &str) -> (Duration, gola_storage::Table) {
    let graph = gola_sql::compile(sql, catalog).expect("compile");
    let engine = gola_engine::BatchEngine::new(catalog);
    let t0 = Instant::now();
    let out = engine.execute(&graph).expect("exact execution");
    (t0.elapsed(), out)
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{c:>w$}  "));
        }
        println!("{s}");
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Emit one machine-readable CSV line (prefixed so it survives mixed with
/// human output).
pub fn csv_line(fields: &[String]) {
    println!("csv,{}", fields.join(","));
}

/// Format a duration as fractional seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_clamped_positive() {
        assert!(scale() >= 0.01);
        assert!(rows(10) >= 1000);
    }

    #[test]
    fn harness_round_trip_smoke() {
        let catalog = conviva_catalog(2000);
        let config = OnlineConfig::for_tests(4);
        let reports = run_online(&catalog, "SELECT AVG(play_time) FROM sessions", &config);
        assert_eq!(reports.len(), 4);
        let (elapsed, table) = time_exact(&catalog, "SELECT AVG(play_time) FROM sessions");
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(table.num_rows(), 1);
    }

    #[test]
    fn prepare_and_manual_executor() {
        let catalog = tpch_catalog(2000);
        let config = OnlineConfig::for_tests(4);
        let (prepared, partitioner) = prepare(&catalog, gola_workloads::tpch::Q17, &config);
        let mut exec = gola_executor(&catalog, &prepared, partitioner, &config);
        let r = exec.step().unwrap();
        assert_eq!(r.batch_index, 0);
    }
}
