//! **Figure 3(b)**: per-batch query-time ratio of classical delta
//! maintenance (CDM) to G-OLA for the first 10 mini-batches, over the
//! evaluation queries C1–C3 (Conviva) and Q11/Q17/Q18/Q20 (TPC-H).
//!
//! Paper's observed shape: the ratio grows roughly linearly with the batch
//! index — CDM re-reads all previously-seen data every batch while G-OLA's
//! per-batch cost stays near-constant (bounded by |ΔDᵢ| + |Uᵢ|).
//!
//! Run: `cargo run --release -p gola-bench --bin fig3b`

use std::sync::Arc;

use gola_baselines::CdmExecutor;
use gola_bench::*;
use gola_core::OnlineConfig;
use gola_workloads::{conviva, tpch};

const BATCHES: usize = 10;

fn main() {
    let conviva_rows = rows(150_000);
    let tpch_rows = rows(150_000);
    println!(
        "== Figure 3(b): CDM / G-OLA per-batch time ratio, first {BATCHES} batches ==\n\
         (conviva {conviva_rows} rows, tpch {tpch_rows} rows)\n"
    );
    let conviva_cat = conviva_catalog(conviva_rows);
    let tpch_cat = tpch_catalog(tpch_rows);

    let mut suites: Vec<(&str, &str, &gola_storage::Catalog)> = Vec::new();
    for (name, sql) in [
        ("C1", conviva::C1),
        ("C2", conviva::C2),
        ("C3", conviva::C3),
    ] {
        suites.push((name, sql, &conviva_cat));
    }
    for (name, sql) in tpch::queries() {
        suites.push((name, sql, &tpch_cat));
    }

    let config = with_bench_threads(
        OnlineConfig::default()
            .with_batches(BATCHES)
            .with_trials(50),
    );
    let mut ratios: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, sql, catalog) in suites {
        let (prepared, partitioner) = prepare(catalog, sql, &config);

        let mut gola = gola_executor(catalog, &prepared, Arc::clone(&partitioner), &config);
        let mut gola_times = Vec::with_capacity(BATCHES);
        while !gola.is_finished() {
            gola_times.push(gola.step().expect("gola batch").batch_time);
        }

        let mut cdm = CdmExecutor::new(catalog, prepared.meta.clone(), partitioner, config.clone())
            .expect("cdm executor");
        let mut cdm_times = Vec::with_capacity(BATCHES);
        while !cdm.is_finished() {
            cdm_times.push(cdm.step().expect("cdm batch").batch_time);
        }

        let series: Vec<f64> = cdm_times
            .iter()
            .zip(&gola_times)
            .map(|(c, g)| c.as_secs_f64() / g.as_secs_f64().max(1e-9))
            .collect();
        eprintln!("  {name}: done");
        ratios.push((name.to_string(), series));
    }

    let mut headers: Vec<&str> = vec!["batch"];
    let names: Vec<String> = ratios.iter().map(|(n, _)| n.clone()).collect();
    for n in &names {
        headers.push(n);
    }
    let mut table_rows = Vec::new();
    csv_line(
        &std::iter::once("figure".to_string())
            .chain(std::iter::once("batch".to_string()))
            .chain(names.iter().cloned())
            .collect::<Vec<_>>(),
    );
    for i in 0..BATCHES {
        let mut row = vec![format!("{}", i + 1)];
        let mut csv = vec!["3b".to_string(), format!("{}", i + 1)];
        for (_, series) in &ratios {
            row.push(format!("{:.2}", series[i]));
            csv.push(format!("{:.3}", series[i]));
        }
        table_rows.push(row);
        csv_line(&csv[..]);
    }
    println!();
    print_table(&headers, &table_rows);

    // Shape check: the ratio at batch 10 should exceed the ratio at batch 2
    // for every query (linear growth), and substantially so on average.
    println!("\nshape summary (ratio growth batch 2 → batch {BATCHES}):");
    for (name, series) in &ratios {
        println!(
            "  {name:>4}: {:.2}x → {:.2}x ({})",
            series[1],
            series[BATCHES - 1],
            if series[BATCHES - 1] > series[1] {
                "grows ✓"
            } else {
                "FLAT ✗"
            }
        );
    }
}
