//! **Figure 3(a)**: relative standard deviation vs. query time for TPC-H
//! Q17 under G-OLA, with the traditional batch engine's latency as the
//! vertical bar.
//!
//! Paper's observed shape (100 GB, 100-node cluster): first approximate
//! answer after ~1.6% of the batch time; smooth refinement roughly every
//! 2.5 s; ~10× speedup at 2% relative stddev; ~60% end-to-end overhead over
//! batch execution. This binary reports the same series and summary numbers
//! at laptop scale.
//!
//! Run: `cargo run --release -p gola-bench --bin fig3a`

use gola_bench::*;
use gola_core::OnlineConfig;
use gola_workloads::tpch;

fn main() {
    let n = rows(400_000);
    println!("== Figure 3(a): rel-stddev vs time, TPC-H Q17, {n} rows ==\n");
    let catalog = tpch_catalog(n);

    let (batch_time, _) = time_exact(&catalog, tpch::Q17);
    println!(
        "traditional batch engine latency (vertical bar): {}s\n",
        secs(batch_time)
    );

    let config = with_bench_threads(OnlineConfig::default().with_batches(100).with_trials(100));
    let reports = run_online(&catalog, tpch::Q17, &config);

    let mut table_rows = Vec::new();
    csv_line(&[
        "figure".into(),
        "batch".into(),
        "time_s".into(),
        "rel_stddev_pct".into(),
    ]);
    let mut first_answer = None;
    let mut time_at_2pct = None;
    for r in &reports {
        let rsd = r.primary_rel_stddev();
        let t = r.cumulative_time;
        if first_answer.is_none() {
            first_answer = Some(t);
        }
        if time_at_2pct.is_none() && rsd.is_some_and(|x| x <= 0.02) {
            time_at_2pct = Some(t);
        }
        // Plot the first 10 batches, then every 10th (as the paper does).
        if r.batch_index < 10 || (r.batch_index + 1) % 10 == 0 {
            table_rows.push(vec![
                format!("{}", r.batch_index + 1),
                secs(t),
                rsd.map(|x| format!("{:.3}", x * 100.0))
                    .unwrap_or_else(|| "-".into()),
                format!("{}", r.uncertain_tuples),
            ]);
        }
        csv_line(&[
            "3a".into(),
            format!("{}", r.batch_index + 1),
            secs(t),
            rsd.map(|x| format!("{:.4}", x * 100.0)).unwrap_or_default(),
        ]);
    }
    print_table(&["batch", "time_s", "rel_stddev_%", "|U|"], &table_rows);

    let total = reports.last().unwrap().cumulative_time;
    let first = first_answer.unwrap();
    println!("\nsummary (paper's in-text claims → measured):");
    println!(
        "  first answer:        {}s = {:.1}% of batch time   (paper: ~1.6%)",
        secs(first),
        first.as_secs_f64() / batch_time.as_secs_f64() * 100.0
    );
    match time_at_2pct {
        Some(t) => println!(
            "  2% rel-stddev at:    {}s → {:.1}x faster than batch (paper: ~10x)",
            secs(t),
            batch_time.as_secs_f64() / t.as_secs_f64()
        ),
        None => println!("  2% rel-stddev never reached (increase rows)"),
    }
    println!(
        "  full-run overhead:   {:.0}% over batch               (paper: ~60%)",
        (total.as_secs_f64() / batch_time.as_secs_f64() - 1.0) * 100.0
    );
}
