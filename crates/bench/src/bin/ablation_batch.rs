//! **§2.1 knob**: mini-batch granularity. "The batch granularity is
//! determined by how frequently the user wants the query result to be
//! updated."
//!
//! Sweeps the number of batches `k` on the SBI query, reporting the update
//! cadence (mean per-batch latency), time-to-2%-rel-stddev and total time —
//! the trade-off between smooth feedback and amortized overhead.
//!
//! Run: `cargo run --release -p gola-bench --bin ablation_batch`

use gola_bench::*;
use gola_core::OnlineConfig;
use gola_workloads::conviva;

fn main() {
    let n = rows(200_000);
    println!("== batch-granularity ablation, SBI query, {n} rows ==\n");
    let catalog = conviva_catalog(n);
    let (batch_time, _) = time_exact(&catalog, conviva::SBI);
    println!("batch engine: {}s\n", secs(batch_time));

    csv_line(&[
        "figure".into(),
        "k".into(),
        "mean_batch_ms".into(),
        "t_2pct_s".into(),
        "total_s".into(),
    ]);
    let mut table_rows = Vec::new();
    for k in [10usize, 25, 50, 100, 200] {
        let config = with_bench_threads(OnlineConfig::default().with_batches(k).with_trials(100));
        let reports = run_online(&catalog, conviva::SBI, &config);
        let total = reports.last().unwrap().cumulative_time;
        let mean_batch_ms = total.as_secs_f64() * 1000.0 / reports.len() as f64;
        let t_2pct = reports
            .iter()
            .find(|r| r.primary_rel_stddev().is_some_and(|x| x <= 0.02))
            .map(|r| secs(r.cumulative_time))
            .unwrap_or_else(|| "-".into());
        table_rows.push(vec![
            format!("{k}"),
            format!("{mean_batch_ms:.1}"),
            t_2pct.clone(),
            secs(total),
        ]);
        csv_line(&[
            "batchsize".into(),
            format!("{k}"),
            format!("{mean_batch_ms:.2}"),
            t_2pct,
            secs(total),
        ]);
    }
    print_table(
        &["k batches", "mean_batch_ms", "time_to_2%_s", "total_s"],
        &table_rows,
    );
    println!("\nexpected shape: more batches → faster first feedback and smoother");
    println!("refinement, at a modest amortized-overhead cost per tuple.");
}
