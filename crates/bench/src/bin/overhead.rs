//! **§5 in-text claim**: G-OLA's end-to-end overhead versus batch
//! execution is ~60%, "primarily due to the error estimation overheads".
//!
//! This ablation sweeps the bootstrap replica count `B` on Q17 and C1,
//! showing that the overhead is indeed dominated by replica maintenance
//! (B = 0 runs close to batch speed; overhead grows with B).
//!
//! Run: `cargo run --release -p gola-bench --bin overhead`

use gola_bench::*;
use gola_core::OnlineConfig;
use gola_workloads::{conviva, tpch};

fn main() {
    let n = rows(200_000);
    println!("== Overhead ablation: bootstrap trials vs total time ({n} rows) ==\n");
    let suites = [
        ("Q17", tpch::Q17, tpch_catalog(n)),
        ("C1", conviva::C1, conviva_catalog(n)),
    ];
    csv_line(&[
        "figure".into(),
        "query".into(),
        "trials".into(),
        "online_s".into(),
        "batch_s".into(),
        "overhead_pct".into(),
    ]);
    for (name, sql, catalog) in &suites {
        let (batch_time, _) = time_exact(catalog, sql);
        println!("{name}: batch engine {}s", secs(batch_time));
        let mut table_rows = Vec::new();
        for trials in [0u32, 10, 50, 100] {
            let config =
                with_bench_threads(OnlineConfig::default().with_batches(50).with_trials(trials));
            let reports = run_online(catalog, sql, &config);
            let total = reports.last().unwrap().cumulative_time;
            let overhead = (total.as_secs_f64() / batch_time.as_secs_f64() - 1.0) * 100.0;
            table_rows.push(vec![
                format!("{trials}"),
                secs(total),
                format!("{overhead:+.0}%"),
            ]);
            csv_line(&[
                "overhead".into(),
                name.to_string(),
                format!("{trials}"),
                secs(total),
                secs(batch_time),
                format!("{overhead:.1}"),
            ]);
        }
        print_table(
            &["trials B", "online_total_s", "overhead_vs_batch"],
            &table_rows,
        );
        println!("  (paper reports ~60% at B=100 with error estimation on)\n");
    }
}
