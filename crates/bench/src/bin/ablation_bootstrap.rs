//! **§2.2 machinery**: bootstrap calibration. The whole G-OLA interface
//! rests on the poissonized bootstrap producing honest confidence
//! intervals; this ablation measures the empirical coverage of nominal 95%
//! intervals across partition seeds, for several aggregates and stopping
//! points, plus the effect of the replica count `B` on interval stability.
//!
//! Run: `cargo run --release -p gola-bench --bin ablation_bootstrap`

use gola_bench::*;
use gola_core::OnlineConfig;

const QUERIES: [(&str, &str); 3] = [
    ("AVG", "SELECT AVG(play_time) FROM sessions"),
    (
        "SUM",
        "SELECT SUM(play_time) FROM sessions WHERE join_failed = 0",
    ),
    (
        "nested AVG",
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
    ),
];

fn main() {
    let n = rows(50_000);
    let seeds = 30u64;
    println!("== bootstrap CI calibration: coverage of nominal 95% intervals ==");
    println!("({n} rows, {seeds} partition seeds, stop points at 10% and 30%)\n");
    let catalog = conviva_catalog(n);

    csv_line(&[
        "figure".into(),
        "query".into(),
        "stop_pct".into(),
        "coverage_pct".into(),
    ]);
    let mut table_rows = Vec::new();
    for (name, sql) in QUERIES {
        let (_, exact) = time_exact(&catalog, sql);
        let truth = exact.rows()[0].get(0).as_f64().expect("numeric truth");
        for (stop_batches, stop_pct) in [(2usize, 10.0), (6usize, 30.0)] {
            let mut covered = 0u32;
            for seed in 0..seeds {
                let config = with_bench_threads(
                    OnlineConfig::default()
                        .with_batches(20)
                        .with_trials(100)
                        .with_seed(seed),
                );
                let session = gola_core::OnlineSession::new(catalog.clone(), config);
                let mut exec = session.execute_online(sql).expect("compile");
                let mut report = None;
                for _ in 0..stop_batches {
                    report = exec.next().map(|r| r.expect("batch"));
                }
                let report = report.expect("report");
                if report.ci().is_some_and(|ci| ci.contains(truth)) {
                    covered += 1;
                }
            }
            let coverage = covered as f64 / seeds as f64 * 100.0;
            table_rows.push(vec![
                name.to_string(),
                format!("{stop_pct:.0}%"),
                format!("{coverage:.0}%"),
            ]);
            csv_line(&[
                "bootstrap".into(),
                name.to_string(),
                format!("{stop_pct:.0}"),
                format!("{coverage:.1}"),
            ]);
        }
    }
    print_table(&["query", "stop at", "95% CI coverage"], &table_rows);
    println!("\nexpected: coverage near 95% (bootstrap slightly optimistic on");
    println!("small samples is normal).\n");

    // Replica-count stability: interval half-width at 20% of the data.
    println!("== interval stability vs replica count (nested AVG, 20% of data) ==\n");
    let mut rows_b = Vec::new();
    csv_line(&["figure".into(), "trials".into(), "mean_halfwidth".into()]);
    for trials in [20u32, 50, 100, 200] {
        let mut widths = Vec::new();
        for seed in 0..10u64 {
            let config = with_bench_threads(
                OnlineConfig::default()
                    .with_batches(10)
                    .with_trials(trials)
                    .with_seed(seed),
            );
            let session = gola_core::OnlineSession::new(catalog.clone(), config);
            let mut exec = session.execute_online(QUERIES[2].1).expect("compile");
            let mut report = None;
            for _ in 0..2 {
                report = exec.next().map(|r| r.expect("batch"));
            }
            if let Some(ci) = report.expect("report").ci() {
                widths.push(ci.half_width());
            }
        }
        let mean = gola_common::stats::mean(&widths).unwrap_or(f64::NAN);
        let sd = gola_common::stats::stddev_pop(&widths).unwrap_or(f64::NAN);
        rows_b.push(vec![
            format!("{trials}"),
            format!("{mean:.3}"),
            format!("{sd:.3}"),
        ]);
        csv_line(&["trials".into(), format!("{trials}"), format!("{mean:.4}")]);
    }
    print_table(
        &["trials B", "mean ± half-width", "across-seed sd"],
        &rows_b,
    );
    println!("\nexpected: half-widths agree across B; larger B mainly reduces the");
    println!("seed-to-seed wobble of the interval endpoints.");
}
