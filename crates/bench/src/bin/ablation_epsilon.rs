//! **§3.2 claim**: the slack `ε` trades the probability of failure-driven
//! recomputation against uncertain-set size, and `ε = stddev(û)` is a good
//! balance.
//!
//! Sweeps the epsilon policy on SBI and Q17, reporting recomputations,
//! mean/max uncertain-set size and total time.
//!
//! Run: `cargo run --release -p gola-bench --bin ablation_epsilon`

use gola_bench::*;
use gola_bootstrap::EpsilonPolicy;
use gola_core::OnlineConfig;
use gola_workloads::{conviva, tpch};

fn main() {
    let n = rows(150_000);
    println!("== ε ablation: recompute probability vs uncertain-set size ({n} rows) ==\n");
    let suites = [
        ("SBI", conviva::SBI, conviva_catalog(n)),
        ("Q17", tpch::Q17, tpch_catalog(n)),
    ];
    let policies: [(&str, EpsilonPolicy); 5] = [
        ("0", EpsilonPolicy::Fixed(0.0)),
        ("0.5·σ", EpsilonPolicy::StdDevScaled(0.5)),
        ("1·σ (paper)", EpsilonPolicy::StdDevScaled(1.0)),
        ("2·σ", EpsilonPolicy::StdDevScaled(2.0)),
        ("4·σ", EpsilonPolicy::StdDevScaled(4.0)),
    ];
    csv_line(&[
        "figure".into(),
        "query".into(),
        "epsilon".into(),
        "recomputes".into(),
        "mean_U".into(),
        "max_U".into(),
        "total_s".into(),
    ]);
    for (name, sql, catalog) in &suites {
        println!("{name}:");
        let mut table_rows = Vec::new();
        for (label, policy) in &policies {
            let config = with_bench_threads(
                OnlineConfig::default()
                    .with_batches(40)
                    .with_trials(50)
                    .with_epsilon(*policy),
            );
            let reports = run_online(catalog, sql, &config);
            let recomputes = reports.last().unwrap().recomputations;
            let mean_u = reports.iter().map(|r| r.uncertain_tuples).sum::<usize>() as f64
                / reports.len() as f64;
            let max_u = reports.iter().map(|r| r.uncertain_tuples).max().unwrap();
            let total = reports.last().unwrap().cumulative_time;
            table_rows.push(vec![
                label.to_string(),
                format!("{recomputes}"),
                format!("{mean_u:.0}"),
                format!("{max_u}"),
                secs(total),
            ]);
            csv_line(&[
                "epsilon".into(),
                name.to_string(),
                label.to_string(),
                format!("{recomputes}"),
                format!("{mean_u:.1}"),
                format!("{max_u}"),
                secs(total),
            ]);
        }
        print_table(
            &["epsilon", "recomputes", "mean |U|", "max |U|", "total_s"],
            &table_rows,
        );
        println!();
    }
    println!("expected shape: small ε → more recomputations, small |U|;");
    println!("large ε → no recomputations but |U| grows; ε = σ balances both.");
}
