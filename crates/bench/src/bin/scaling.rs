//! Thread-scaling experiment for the persistent parallel runtime.
//!
//! Runs the same TPC-H query (100 bootstrap trials) at several worker-thread
//! counts, verifies the reports are **bit-identical** across thread counts
//! (the determinism contract of the chunked classify/fold pipeline), and
//! reports per-batch wall-clock throughput plus per-stage totals.
//!
//! Output: a human table, `csv,` lines, and one `json,` line suitable for
//! `results/BENCH_scaling.json`.
//!
//! After the scaling table, re-runs the largest thread count with the
//! observability registry enabled to measure its overhead: the reports must
//! stay bit-identical (the no-perturbation contract) and the wall-clock cost
//! should stay under 5%. `--metrics-out <path>` additionally writes that
//! run's registry snapshot (JSON, plus `<path>.prom`).
//!
//! ```text
//! cargo run --release -p gola-bench --bin scaling [-- --threads-list 1,2,4]
//! ```

use std::time::Duration;

use gola_bench::*;
use gola_core::{BatchReport, BatchTiming, OnlineConfig};

const TRIALS: u32 = 100;
const BATCHES: usize = 20;

/// The pre-columnar row-store (`Vec<Row>`) measurement of this exact
/// workload (tpch_q17, 200k rows, 20 batches, 100 trials, threads=1) on the
/// reference host, kept as the "before" row of the columnar comparison.
/// Source: results/BENCH_scaling.json as of the row-store seed.
const ROW_STORE_WALL_S: f64 = 4.653450;
const ROW_STORE_TUPLES_PER_SEC: f64 = 42_978.9;

/// Exact fingerprint of a run: every float is rendered via `to_bits`, so two
/// runs fingerprint equal iff their reports are bit-identical.
fn fingerprint(reports: &[BatchReport]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for r in reports {
        let _ = write!(
            s,
            "b{} u{} rc{} rows{};",
            r.batch_index,
            r.uncertain_tuples,
            r.recomputations,
            r.table.num_rows()
        );
        let _ = write!(s, "{}", r.table.display_limit(usize::MAX));
        for c in &r.estimates {
            let _ = write!(
                s,
                "e{},{}:{:016x}[",
                c.row,
                c.col,
                c.estimate.value.to_bits()
            );
            for rep in &c.estimate.replicas {
                let _ = write!(s, "{:016x},", rep.to_bits());
            }
            let _ = write!(s, "]");
            if let Some(ci) = c.estimate.ci_percentile(0.95) {
                let _ = write!(s, "ci{:016x},{:016x}", ci.lo.to_bits(), ci.hi.to_bits());
            }
        }
        let _ = write!(s, "|cert{:?}", r.row_certain);
    }
    s
}

struct RunStats {
    threads: usize,
    wall: Duration,
    per_batch_ms: f64,
    tuples_per_sec: f64,
    stages: BatchTiming,
    identical: bool,
}

fn run_at(
    catalog: &gola_storage::Catalog,
    sql: &str,
    threads: usize,
) -> (Vec<BatchReport>, Duration) {
    let config = OnlineConfig::default()
        .with_batches(BATCHES)
        .with_trials(TRIALS)
        .with_threads(threads);
    let t0 = std::time::Instant::now();
    let reports = run_online(catalog, sql, &config);
    (reports, t0.elapsed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let thread_list: Vec<usize> = {
        let mut list = None;
        for (i, a) in args.iter().enumerate() {
            let v = if a == "--threads-list" {
                args.get(i + 1).cloned()
            } else {
                a.strip_prefix("--threads-list=").map(str::to_string)
            };
            if let Some(v) = v {
                list = Some(
                    v.split(',')
                        .filter_map(|t| t.parse().ok())
                        .filter(|&t| t >= 1)
                        .collect::<Vec<usize>>(),
                );
            }
        }
        list.filter(|l| !l.is_empty())
            .unwrap_or_else(|| vec![1, 2, 4])
    };
    let metrics_out: Option<String> = args.iter().enumerate().find_map(|(i, a)| {
        if a == "--metrics-out" {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix("--metrics-out=").map(str::to_string)
        }
    });
    // --rows overrides the dataset size (the bench-smoke gate runs a small
    // configuration; the default is the full experiment).
    let requested_rows: usize = args
        .iter()
        .enumerate()
        .find_map(|(i, a)| {
            if a == "--rows" {
                args.get(i + 1).cloned()
            } else {
                a.strip_prefix("--rows=").map(str::to_string)
            }
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let n = rows(requested_rows);
    let catalog = tpch_catalog(n);
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (name, sql) = ("tpch_q17", gola_workloads::tpch::Q17);
    println!(
        "thread scaling: {name}, {n} rows, {BATCHES} batches, {TRIALS} trials \
         (host has {cpus} cpu(s))"
    );

    let (baseline, base_wall) = run_at(&catalog, sql, 1);
    let base_fp = fingerprint(&baseline);
    let mut stats: Vec<RunStats> = Vec::new();
    for &t in &thread_list {
        let (reports, wall) = if t == 1 {
            (baseline.clone(), base_wall)
        } else {
            run_at(&catalog, sql, t)
        };
        let identical = fingerprint(&reports) == base_fp;
        let mut stages = BatchTiming::default();
        for r in &reports {
            stages.accumulate(&r.timing);
        }
        stats.push(RunStats {
            threads: t,
            wall,
            per_batch_ms: wall.as_secs_f64() * 1000.0 / reports.len() as f64,
            tuples_per_sec: n as f64 / wall.as_secs_f64(),
            stages,
            identical,
        });
    }

    let base = stats[0].wall.as_secs_f64();
    let mut table = Vec::new();
    for s in &stats {
        table.push(vec![
            s.threads.to_string(),
            secs(s.wall),
            format!("{:.2}", s.per_batch_ms),
            format!("{:.0}", s.tuples_per_sec),
            format!("{:.2}x", base / s.wall.as_secs_f64()),
            format!("{:.2}x", s.tuples_per_sec / ROW_STORE_TUPLES_PER_SEC),
            s.identical.to_string(),
        ]);
        csv_line(&[
            "scaling".into(),
            name.into(),
            s.threads.to_string(),
            secs(s.wall),
            format!("{:.6}", s.tuples_per_sec),
            s.identical.to_string(),
        ]);
    }
    print_table(
        &[
            "threads",
            "wall_s",
            "batch_ms",
            "tuples/s",
            "speedup",
            "vs_row_store",
            "bit_identical",
        ],
        &table,
    );

    // Per-stage throughput: tuples scanned per second spent inside each
    // pipeline stage (summed across batches). `recover` is usually 0s —
    // rendered as null rather than a fake infinity.
    let stage_tps = |d: Duration| -> String {
        let s = d.as_secs_f64();
        if s > 0.0 {
            format!("{:.1}", n as f64 / s)
        } else {
            "null".into()
        }
    };
    let mut stage_table = Vec::new();
    for s in &stats {
        stage_table.push(vec![
            s.threads.to_string(),
            stage_tps(s.stages.join),
            stage_tps(s.stages.classify),
            stage_tps(s.stages.fold),
            stage_tps(s.stages.publish),
            stage_tps(s.stages.recover),
        ]);
    }
    print_table(
        &[
            "threads",
            "join_t/s",
            "classify_t/s",
            "fold_t/s",
            "publish_t/s",
            "recover_t/s",
        ],
        &stage_table,
    );
    println!(
        "columnar vs row-store seed at 1 thread: {:.2}x tuples/s \
         ({:.1} -> {:.1}; seed wall {ROW_STORE_WALL_S:.3}s -> {})",
        stats[0].tuples_per_sec / ROW_STORE_TUPLES_PER_SEC,
        ROW_STORE_TUPLES_PER_SEC,
        stats[0].tuples_per_sec,
        secs(stats[0].wall),
    );

    let results: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{{\"threads\":{},\"wall_s\":{:.6},\"per_batch_ms\":{:.4},\
                 \"tuples_per_sec\":{:.1},\"speedup_vs_1\":{:.4},\
                 \"speedup_vs_row_store\":{:.4},\
                 \"bit_identical_to_t1\":{},\"stage_totals_s\":{{\
                 \"join\":{:.6},\"classify\":{:.6},\"fold\":{:.6},\
                 \"publish\":{:.6},\"recover\":{:.6}}},\
                 \"stage_tuples_per_sec\":{{\
                 \"join\":{},\"classify\":{},\"fold\":{},\
                 \"publish\":{},\"recover\":{}}}}}",
                s.threads,
                s.wall.as_secs_f64(),
                s.per_batch_ms,
                s.tuples_per_sec,
                base / s.wall.as_secs_f64(),
                s.tuples_per_sec / ROW_STORE_TUPLES_PER_SEC,
                s.identical,
                s.stages.join.as_secs_f64(),
                s.stages.classify.as_secs_f64(),
                s.stages.fold.as_secs_f64(),
                s.stages.publish.as_secs_f64(),
                s.stages.recover.as_secs_f64(),
                stage_tps(s.stages.join),
                stage_tps(s.stages.classify),
                stage_tps(s.stages.fold),
                stage_tps(s.stages.publish),
                stage_tps(s.stages.recover),
            )
        })
        .collect();
    println!(
        "json,{{\"experiment\":\"thread_scaling\",\"workload\":\"{name}\",\
         \"rows\":{n},\"batches\":{BATCHES},\"trials\":{TRIALS},\
         \"host_cpus\":{cpus},\"row_store_baseline\":{{\
         \"store\":\"row (pre-columnar seed)\",\"threads\":1,\
         \"wall_s\":{ROW_STORE_WALL_S:.6},\
         \"tuples_per_sec\":{ROW_STORE_TUPLES_PER_SEC:.1}}},\
         \"results\":[{}]}}",
        results.join(",")
    );
    if cpus == 1 {
        println!(
            "note: host exposes a single CPU — speedups are bounded at ~1x \
             here; the bit-identical column is the meaningful check."
        );
    }

    // Observability overhead: same workload at the largest thread count with
    // the metrics registry enabled. The no-perturbation contract says the
    // reports stay bit-identical; the wall-clock budget is 5%.
    let t_max = *thread_list.iter().max().expect("non-empty thread list");
    let off = stats
        .iter()
        .find(|s| s.threads == t_max)
        .expect("t_max came from thread_list");
    gola_obs::set_enabled(true);
    let (obs_reports, obs_wall) = run_at(&catalog, sql, t_max);
    gola_obs::set_enabled(false);
    let obs_identical = fingerprint(&obs_reports) == base_fp;
    let overhead = obs_wall.as_secs_f64() / off.wall.as_secs_f64() - 1.0;
    println!(
        "obs overhead at {t_max} thread(s): {:+.1}% wall ({} -> {}), bit_identical={obs_identical}",
        overhead * 100.0,
        secs(off.wall),
        secs(obs_wall),
    );
    csv_line(&[
        "scaling_obs_overhead".into(),
        name.into(),
        t_max.to_string(),
        secs(obs_wall),
        format!("{:.4}", overhead),
        obs_identical.to_string(),
    ]);
    if overhead > 0.05 {
        println!(
            "note: obs overhead above the 5% budget — single-run timing is \
             noisy, re-run to confirm before treating this as a regression."
        );
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = std::fs::write(path, gola_obs::snapshot_json(false)) {
            eprintln!("ERROR: writing {path}: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(format!("{path}.prom"), gola_obs::prometheus(false)) {
            eprintln!("ERROR: writing {path}.prom: {e}");
            std::process::exit(1);
        }
        println!("wrote metrics snapshot to {path} (and {path}.prom)");
    }

    if stats.iter().any(|s| !s.identical) {
        eprintln!("ERROR: reports differ across thread counts");
        std::process::exit(1);
    }
    if !obs_identical {
        eprintln!("ERROR: enabling the metrics registry perturbed the reports");
        std::process::exit(1);
    }
}
