//! Golden tests for the `golint` rules.
//!
//! Each file under `tests/fixtures/` is linted under a *virtual* workspace
//! path (rule scopes are path-prefix based, so the same source can be
//! checked in scope, out of scope, and in blessed/test locations). Expected
//! diagnostics are declared in the fixtures themselves, compiletest-style:
//! a line ending in `//~ rule-name [rule-name …]` must produce exactly
//! those diagnostics on exactly that line, and no others.

use xlint::{lint_sources, lint_sources_full, to_json, Config, Diagnostic, Rule};

const HASH_ORDER: &str = include_str!("fixtures/hash_order_leak.rs");
const SCHEDULE: &str = include_str!("fixtures/schedule_leak.rs");
const UNSAFE: &str = include_str!("fixtures/unsafe_audit.rs");
const FLOAT_FOLD: &str = include_str!("fixtures/float_fold.rs");
const PANIC: &str = include_str!("fixtures/panic_surface.rs");
const ALLOW_SYNTAX: &str = include_str!("fixtures/allow_syntax.rs");
const FLOAT_TOTAL: &str = include_str!("fixtures/float_total_order.rs");
const LOSSY_CAST: &str = include_str!("fixtures/lossy_cast.rs");
const MERGE_COMM: &str = include_str!("fixtures/merge_commutativity.rs");

/// Parse the fixture's `//~ rule` markers into the expected (line, rule)
/// multiset.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some((_, tail)) = line.split_once("//~") {
            for rule in tail.split_whitespace() {
                assert!(
                    Rule::from_name(rule).is_some() || rule == "allow-syntax",
                    "fixture marker names unknown rule `{rule}`"
                );
                out.push((i as u32 + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn lint_under(path: &str, src: &str) -> Vec<(u32, String)> {
    let sources = vec![(path.to_string(), src.to_string())];
    let mut got: Vec<(u32, String)> = lint_sources(&sources, &Config::default())
        .into_iter()
        .map(|d| {
            assert_eq!(d.file, path, "diagnostic attributed to the wrong file");
            (d.line, d.rule.name().to_string())
        })
        .collect();
    got.sort();
    got
}

/// In scope, a fixture must produce exactly its markers.
fn check_in_scope(fixture: &str, path: &str, src: &str) {
    let expected = expected_markers(src);
    assert!(
        !expected.is_empty(),
        "{fixture}: fixture has no `//~` markers — nothing would be tested"
    );
    assert_eq!(lint_under(path, src), expected, "{fixture} under {path}");
}

/// Out of scope (or blessed), the same fixture must produce nothing.
fn check_silent(fixture: &str, path: &str, src: &str) {
    assert_eq!(
        lint_under(path, src),
        Vec::<(u32, String)>::new(),
        "{fixture} under {path} should be out of scope"
    );
}

#[test]
fn hash_order_leak_golden() {
    check_in_scope(
        "hash_order_leak.rs",
        "crates/core/src/fixture.rs",
        HASH_ORDER,
    );
    check_in_scope(
        "hash_order_leak.rs",
        "crates/agg/src/fixture.rs",
        HASH_ORDER,
    );
    // Iteration order in a non-result-producing crate is not a leak.
    check_silent(
        "hash_order_leak.rs",
        "crates/cli/src/fixture.rs",
        HASH_ORDER,
    );
    // Tests may iterate hash maps freely.
    check_silent("hash_order_leak.rs", "tests/fixture.rs", HASH_ORDER);
}

#[test]
fn schedule_leak_golden() {
    check_in_scope("schedule_leak.rs", "crates/core/src/fixture.rs", SCHEDULE);
    check_in_scope(
        "schedule_leak.rs",
        "crates/storage/src/fixture.rs",
        SCHEDULE,
    );
    // Blessed locations: benchmarks and the Stopwatch module itself.
    check_silent("schedule_leak.rs", "crates/bench/src/fixture.rs", SCHEDULE);
    check_silent("schedule_leak.rs", "crates/common/src/timing.rs", SCHEDULE);
}

#[test]
fn unsafe_audit_golden() {
    check_in_scope("unsafe_audit.rs", "crates/common/src/fixture.rs", UNSAFE);
    // The audit is the one rule that also applies to test code.
    check_in_scope("unsafe_audit.rs", "tests/fixture.rs", UNSAFE);
}

#[test]
fn unsafe_inventory_lists_every_site() {
    let sources = vec![(
        "crates/common/src/fixture.rs".to_string(),
        UNSAFE.to_string(),
    )];
    let (_, inventory) = lint_sources_full(&sources, &Config::default());
    let summary: Vec<(&str, bool)> = inventory
        .iter()
        .map(|s| (s.kind, s.has_safety_comment))
        .collect();
    // All four sites — including the SAFETY-commented and the allowed one —
    // appear, in source order.
    assert_eq!(
        summary,
        vec![
            ("block", false),
            ("fn", false),
            ("block", true),
            ("block", false)
        ]
    );
}

#[test]
fn float_fold_golden() {
    check_in_scope("float_fold.rs", "crates/agg/src/fixture.rs", FLOAT_FOLD);
    check_in_scope("float_fold.rs", "crates/common/src/fixture.rs", FLOAT_FOLD);
    check_silent("float_fold.rs", "crates/cli/src/fixture.rs", FLOAT_FOLD);
}

#[test]
fn panic_surface_golden() {
    check_in_scope("panic_surface.rs", "crates/engine/src/fixture.rs", PANIC);
    check_in_scope("panic_surface.rs", "crates/core/src/pool.rs", PANIC);
    // Hot-path discipline does not extend to cold crates or tests.
    check_silent("panic_surface.rs", "crates/storage/src/fixture.rs", PANIC);
    check_silent("panic_surface.rs", "tests/fixture.rs", PANIC);
}

#[test]
fn float_total_order_golden() {
    check_in_scope(
        "float_total_order.rs",
        "crates/expr/src/fixture.rs",
        FLOAT_TOTAL,
    );
    check_in_scope(
        "float_total_order.rs",
        "crates/core/src/fixture.rs",
        FLOAT_TOTAL,
    );
    // The module that implements the total order is blessed: raw IEEE
    // comparison is its job.
    check_silent(
        "float_total_order.rs",
        "crates/common/src/fsum.rs",
        FLOAT_TOTAL,
    );
    check_silent(
        "float_total_order.rs",
        "crates/cli/src/fixture.rs",
        FLOAT_TOTAL,
    );
}

#[test]
fn lossy_cast_golden() {
    check_in_scope("lossy_cast.rs", "crates/storage/src/fixture.rs", LOSSY_CAST);
    // Self-hosting: the linter's own crate is in scope for this rule.
    check_in_scope("lossy_cast.rs", "crates/xlint/src/fixture.rs", LOSSY_CAST);
    check_silent("lossy_cast.rs", "crates/cli/src/fixture.rs", LOSSY_CAST);
}

#[test]
fn merge_commutativity_golden() {
    check_in_scope(
        "merge_commutativity.rs",
        "crates/agg/src/fixture.rs",
        MERGE_COMM,
    );
    // The exact-accumulator surface is blessed: ExactSum/Value implement
    // the arithmetic the rule exists to route everyone else through.
    check_silent(
        "merge_commutativity.rs",
        "crates/common/src/value.rs",
        MERGE_COMM,
    );
    // Out of scope: storage has no shard-merge paths.
    check_silent(
        "merge_commutativity.rs",
        "crates/storage/src/fixture.rs",
        MERGE_COMM,
    );
}

#[test]
fn allow_syntax_golden() {
    check_in_scope(
        "allow_syntax.rs",
        "crates/engine/src/fixture.rs",
        ALLOW_SYNTAX,
    );
}

#[test]
fn diagnostic_display_format() {
    let d = Diagnostic {
        file: "crates/core/src/executor.rs".to_string(),
        line: 42,
        rule: Rule::HashOrderLeak,
        message: "iteration over hash-ordered `groups`".to_string(),
    };
    assert_eq!(
        d.to_string(),
        "crates/core/src/executor.rs:42: hash-order-leak: iteration over hash-ordered `groups`"
    );
}

#[test]
fn json_output_is_escaped_and_counted() {
    let diags = vec![Diagnostic {
        file: "a\\b.rs".to_string(),
        line: 7,
        rule: Rule::PanicSurface,
        message: "`.expect(\"boom\")` in a hot path".to_string(),
    }];
    let json = to_json(&diags, None);
    assert!(json.contains("\"count\": 1"), "{json}");
    assert!(json.contains("a\\\\b.rs"), "{json}");
    assert!(json.contains("\\\"boom\\\""), "{json}");
    assert!(json.contains("\"rule\": \"panic-surface\""), "{json}");
}

/// The whole point: the workspace itself lints clean, and every unsafe site
/// in it carries a SAFETY comment.
#[test]
fn workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let (diags, inventory) =
        xlint::lint_workspace(&root, &Config::default()).expect("workspace readable");
    let listing: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        listing.join("\n")
    );
    assert!(
        !inventory.is_empty(),
        "the pool transmute should appear in the unsafe inventory"
    );
    for site in &inventory {
        assert!(
            site.has_safety_comment,
            "{}:{}: unsafe {} lacks a SAFETY comment",
            site.file, site.line, site.kind
        );
    }
}
