//! `unsafe-audit` fixture. Linted by `tests/golden.rs` under
//! `crates/common/src/fixture.rs` and — because the audit is the one rule
//! that also applies to test code — under `tests/fixture.rs`, with the same
//! expectations. Every site lands in the unsafe inventory; only sites with
//! a safety comment within 5 lines above escape the diagnostic.

pub fn positive_block(bytes: &[u8]) -> u32 {
    let mut out = 0u32;
    unsafe { //~ unsafe-audit
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), &mut out as *mut u32 as *mut u8, 4);
    }
    out
}

pub unsafe fn positive_fn(p: *const u8) -> u8 { //~ unsafe-audit
    *p
}

pub fn negative_commented(v: &[f64], i: usize) -> f64 {
    debug_assert!(i < v.len());
    // SAFETY: bounds are checked by the debug_assert above and callers are
    // internal, always passing indices < v.len().
    unsafe { *v.get_unchecked(i) }
}

pub fn allowed_block(p: *const u8) -> u8 {
    // golint: allow(unsafe-audit) -- fixture: the allow hatch applies to
    // the audit rule too (though a SAFETY comment is the better fix)
    unsafe { *p }
}
