//! `allow-syntax` fixture. Linted by `tests/golden.rs` under
//! `crates/engine/src/fixture.rs`. Malformed allow comments are themselves
//! diagnostics and suppress nothing — the underlying finding still fires.

pub fn reasonless(v: Option<u32>) -> u32 {
    // golint: allow(panic-surface) //~ allow-syntax
    v.unwrap() //~ panic-surface
}

pub fn unknown_rule(v: Option<u32>) -> u32 {
    // golint: allow(not-a-rule) -- no such rule //~ allow-syntax
    v.unwrap() //~ panic-surface
}

pub fn not_an_allow(v: Option<u32>) -> u32 {
    // golint: deny(panic-surface) //~ allow-syntax
    v.unwrap() //~ panic-surface
}

pub fn well_formed(v: Option<u32>) -> u32 {
    // golint: allow(panic-surface) -- a reasoned allow still suppresses
    v.unwrap()
}
