//! `panic-surface` fixture. Linted by `tests/golden.rs` under
//! `crates/engine/src/fixture.rs` (in scope) and
//! `crates/storage/src/fixture.rs` (out of scope — nothing fires).

pub fn positive_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-surface
}

pub fn positive_expect(v: Option<u32>) -> u32 {
    v.expect("present") //~ panic-surface
}

pub fn positive_panic(x: u32) -> u32 {
    if x > 10 {
        panic!("x out of range: {x}"); //~ panic-surface
    }
    x
}

pub fn positive_unreachable(x: bool) -> u32 {
    match x {
        true => 1,
        false => unreachable!(), //~ panic-surface
    }
}

pub fn negative_lock(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn negative_join(h: std::thread::JoinHandle<u32>) -> u32 {
    h.join().unwrap()
}

pub fn negative_propagate(v: Option<u32>) -> Option<u32> {
    Some(v? + 1)
}

pub fn allowed_expect(v: Option<u32>) -> u32 {
    // golint: allow(panic-surface) -- fixture: caller established Some
    v.expect("caller checked")
}
