//! `lossy-cast-audit` fixture. Linted by `tests/golden.rs` under
//! `crates/storage/src/fixture.rs` and `crates/xlint/src/fixture.rs` (in
//! scope — the linter audits itself), and `crates/cli/src/fixture.rs`
//! (out of scope).

/// The chunk-framing bug class this rule exists for: a row count silently
/// truncated to the `u32` offset width.
pub fn positive_chunk_offset(rows: usize) -> u32 {
    rows as u32 //~ lossy-cast-audit
}

/// Signed → unsigned wraps every negative value to a huge positive one.
pub fn positive_signed_to_unsigned(delta: i64) -> u64 {
    delta as u64 //~ lossy-cast-audit
}

pub fn positive_narrowing(code: u64) -> u16 {
    code as u16 //~ lossy-cast-audit
}

/// A literal that does not fit the target is a truncation spelled as
/// construction.
pub fn positive_literal_overflow() -> u8 {
    300 as u8 //~ lossy-cast-audit
}

/// Negative: a literal that fits is just construction.
pub fn negative_literal_fits() -> u8 {
    255 as u8
}

/// Negative: widening preserves every value.
pub fn negative_widening(n: u32) -> u64 {
    n as u64
}

/// Negative: unsigned → wider signed is exact.
pub fn negative_u32_to_i64(n: u32) -> i64 {
    n as i64
}

/// Negative: `u32 → usize` widens under the linter's 64-bit-pointer
/// policy.
pub fn negative_to_usize(n: u32) -> usize {
    n as usize
}

/// Negative: pointer casts reinterpret addresses, not values.
pub fn negative_pointer(buf: &mut [u8]) -> *const u8 {
    buf.as_mut_ptr() as *const u8
}

/// Negative: float → int is rounding policy, not integer truncation —
/// outside this rule's jurisdiction.
pub fn negative_float_source(x: f64) -> i64 {
    x as i64
}

/// Allowed: a reasoned allow still suppresses.
pub fn allowed_hash_fold(h: u64) -> u32 {
    // golint: allow(lossy-cast-audit) -- fixture: folding a hash to its
    // low 32 bits is the intended mixing step, not an accident
    h as u32
}
