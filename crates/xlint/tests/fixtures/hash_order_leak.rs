//! `hash-order-leak` fixture. Linted by `tests/golden.rs` under the virtual
//! path `crates/core/src/fixture.rs` (in scope — markers fire) and under
//! `crates/cli/src/fixture.rs` (out of scope — nothing fires). Trailing
//! tilde markers name the diagnostics expected on that line.

use rustc_hash::FxHashMap;
use std::collections::HashMap;

pub struct State {
    pub groups: FxHashMap<u64, f64>,
}

pub fn positive_method(groups: &FxHashMap<u64, f64>) -> Vec<u64> {
    groups.keys().copied().collect() //~ hash-order-leak
}

pub fn positive_values(counts: &HashMap<String, usize>) -> usize {
    counts.values().sum() //~ hash-order-leak
}

pub fn positive_for(groups: FxHashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in groups { //~ hash-order-leak
        total += v;
    }
    total
}

pub fn negative_sorted_sink(groups: &FxHashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in sorted_entries(groups) {
        total += v;
    }
    total
}

pub fn negative_point_lookup(groups: &FxHashMap<u64, f64>, key: u64) -> Option<f64> {
    groups.get(&key).copied()
}

pub fn allowed_count(groups: &FxHashMap<u64, f64>) -> usize {
    // golint: allow(hash-order-leak) -- a count is order-insensitive
    groups.values().count()
}

fn sorted_entries(groups: &FxHashMap<u64, f64>) -> Vec<(&u64, &f64)> {
    // golint: allow(hash-order-leak) -- entries are sorted by key before
    // anything can observe the order
    let mut entries: Vec<(&u64, &f64)> = groups.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    entries
}
