//! `float-fold-ordering` fixture. Linted by `tests/golden.rs` under
//! `crates/agg/src/fixture.rs` (in scope) and `crates/cli/src/fixture.rs`
//! (out of scope — nothing fires).

pub fn positive_sum(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() //~ float-fold-ordering
}

pub fn positive_sum_f32(xs: &[f32]) -> f32 {
    xs.iter().copied().sum::<f32>() //~ float-fold-ordering
}

pub fn positive_product(xs: &[f64]) -> f64 {
    xs.iter().product::<f64>() //~ float-fold-ordering
}

pub fn positive_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x) //~ float-fold-ordering
}

pub fn positive_fold_negative_seed(xs: &[f64]) -> f64 {
    xs.iter().fold(-1.0f64, |acc, x| acc.max(*x)) //~ float-fold-ordering
}

pub fn negative_int_sum(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

pub fn negative_int_fold(xs: &[u64]) -> u64 {
    xs.iter().fold(0, |acc, x| acc + x)
}

pub fn allowed_sum(xs: &[f64]) -> f64 {
    // golint: allow(float-fold-ordering) -- fixture: the slice order IS the
    // accumulation contract here
    xs.iter().sum::<f64>()
}
