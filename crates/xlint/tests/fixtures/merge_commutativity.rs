//! `merge-commutativity` fixture. Linted by `tests/golden.rs` under
//! `crates/agg/src/fixture.rs` (in scope), `crates/common/src/value.rs`
//! (blessed — the exact-accumulator surface may do raw float arithmetic),
//! and `crates/storage/src/fixture.rs` (out of scope: storage has no
//! shard-merge paths).
//!
//! The rule fires only inside functions whose name marks a merge path,
//! on arithmetic whose operands it cannot prove exact (integer/bool).

#[derive(Debug, Clone)]
pub struct ShardState {
    pub sum: f64,
    pub count: u64,
}

/// An opaque partial: the linter cannot prove its arithmetic exact.
#[derive(Debug, Clone, Copy)]
pub struct Partial(pub f64);

impl ShardState {
    /// Positive: raw float accumulation in a merge path makes the result
    /// depend on shard arrival order (the bit-identity contract breaker).
    pub fn merge(&mut self, other: &ShardState) {
        self.sum += other.sum; //~ merge-commutativity
        self.count += other.count;
    }

    /// Positive: plain binary float arithmetic in a merge path.
    pub fn merge_total(&self, other: &ShardState) -> f64 {
        self.sum + other.sum //~ merge-commutativity
    }

    /// Negative: identical arithmetic outside a merge path is the
    /// `float-fold-ordering` rule's jurisdiction, not this one's.
    pub fn absorb(&mut self, other: &ShardState) {
        self.sum += other.sum;
    }

    /// Allowed: the `state.rs` pattern — a reasoned allow for arithmetic
    /// that is exact despite its float spelling.
    pub fn merge_weight(&mut self, w: f64) {
        // golint: allow(merge-commutativity) -- fixture: weights are small
        // exact integers carried in f64; addition below 2^53 is exact
        self.sum += w;
    }
}

/// Positive: an operand class the linter cannot prove exact still fires —
/// a merge path must demonstrate exactness, not assume it.
pub fn merge_partials(a: &Partial, b: &Partial) -> f64 {
    a.0 + b.0 //~ merge-commutativity
}

/// Negative: integer-only merge arithmetic is exact in any order.
pub fn merge_counts(counts: &mut [u64], other: &[u64]) {
    for i in 0..counts.len() {
        counts[i] += other[i];
    }
}
