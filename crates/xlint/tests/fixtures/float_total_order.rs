//! `float-total-order` fixture. Linted by `tests/golden.rs` under
//! `crates/expr/src/fixture.rs` and `crates/core/src/fixture.rs` (in
//! scope), `crates/common/src/fsum.rs` (blessed — that module *implements*
//! the total order, so raw IEEE comparison is its job), and
//! `crates/cli/src/fixture.rs` (out of scope).

use std::cmp::Ordering;

/// PR 5's `eq_tri` bug class, reintroduced: the derived `PartialEq`
/// compares the `f64` bounds with IEEE `==`, under which a NaN bound makes
/// a range unequal to itself — so `eq_tri` disagrees with point evaluation
/// exactly as it did before the vectorized-kernel fix.
#[derive(Debug, Clone, PartialEq)]
pub enum MiniRange { //~ float-total-order
    Num { lo: f64, hi: f64 },
    Unknown,
}

impl MiniRange {
    pub fn eq_tri(&self, other: &MiniRange) -> bool {
        self == other
    }
}

/// Float-bearing through a struct, with an ordering derive.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Estimate { //~ float-total-order
    pub mean: f64,
    pub rows: u64,
}

/// Negative: no float anywhere in the payload — derived equality is exact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RowId {
    pub chunk: u32,
    pub row: u32,
}

pub fn positive_raw_eq(x: f64, y: f64) -> bool {
    x == y //~ float-total-order
}

pub fn positive_field_ne(e: &Estimate, y: f64) -> bool {
    e.mean != y //~ float-total-order
}

/// Negative: comparison against a numeric literal is a sentinel guard, not
/// an ordering; NaN falling into the "not the sentinel" branch is sound.
pub fn negative_literal_guard(x: f64) -> bool {
    x == 0.0 || x != -1.0
}

pub fn positive_partial_cmp(x: f64, y: f64) -> Ordering {
    x.partial_cmp(&y).unwrap_or(Ordering::Equal) //~ float-total-order
}

/// Negative: `total_cmp` is the sanctioned comparator.
pub fn negative_total_cmp(x: f64, y: f64) -> Ordering {
    x.total_cmp(&y)
}

pub fn positive_sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); //~ float-total-order
}

/// Negative: sorting through `total_cmp` is exactly the fix.
pub fn negative_sort_total(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn positive_min_by(xs: &[f64]) -> Option<&f64> {
    xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)) //~ float-total-order
}

/// Negative: ordering integers by a derived key never involves IEEE.
pub fn negative_int_sort(ids: &mut Vec<u64>) {
    ids.sort_unstable_by(|a, b| b.cmp(a));
}

/// Allowed: a reasoned allow still suppresses.
pub fn allowed_raw_eq(x: f64, y: f64) -> bool {
    // golint: allow(float-total-order) -- fixture: inputs are bitwise
    // canonicalized upstream, so IEEE `==` equals bitwise equality here
    x == y
}
