//! `schedule-leak` fixture. Linted by `tests/golden.rs` under the virtual
//! path `crates/core/src/fixture.rs` (markers fire) and again under
//! `crates/bench/src/fixture.rs` (blessed — nothing fires).

pub fn positive_instant() -> std::time::Duration {
    let t0 = std::time::Instant::now(); //~ schedule-leak
    t0.elapsed()
}

pub fn positive_system_time() -> u64 {
    let now = std::time::SystemTime::now(); //~ schedule-leak
    now.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn positive_thread_count() -> usize {
    std::thread::available_parallelism() //~ schedule-leak
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

pub fn positive_identity() -> std::thread::ThreadId {
    std::thread::current().id() //~ schedule-leak
}

pub fn negative_duration(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}

pub fn negative_spawn() -> std::thread::Builder {
    std::thread::Builder::new().name("gola-worker".to_string())
}

pub fn allowed_clock() -> u64 {
    // golint: allow(schedule-leak) -- display-only timestamp; the value is
    // never folded into estimator state
    let stamp = std::time::SystemTime::now();
    stamp
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
