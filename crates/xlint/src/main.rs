//! `golint` — workspace determinism & concurrency auditor.
//!
//! ```text
//! golint [--json] [--unsafe-inventory] [--root DIR] [FILE…]
//! ```
//!
//! With no `FILE` arguments, lints every workspace `.rs` file under the
//! root (default: current directory). Exit codes: `0` clean, `1` one or
//! more diagnostics, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use xlint::{counts_by_rule, lint_sources_full, lint_workspace, to_json, Config};

fn main() -> ExitCode {
    let mut json = false;
    let mut inventory = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--unsafe-inventory" => inventory = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--help" | "-h" => {
                eprintln!("usage: golint [--json] [--unsafe-inventory] [--root DIR] [FILE…]");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    let cfg = Config::default();
    let result = if files.is_empty() {
        lint_workspace(&root, &cfg)
    } else {
        files
            .iter()
            .map(|f| std::fs::read_to_string(root.join(f)).map(|src| (f.clone(), src)))
            .collect::<std::io::Result<Vec<_>>>()
            .map(|sources| lint_sources_full(&sources, &cfg))
    };
    let (diags, sites) = match result {
        Ok(x) => x,
        Err(e) => {
            eprintln!("golint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!(
            "{}",
            to_json(&diags, if inventory { Some(&sites) } else { None })
        );
    } else {
        for d in &diags {
            println!("{d}");
        }
        if inventory {
            println!("unsafe inventory ({} sites):", sites.len());
            for s in &sites {
                println!(
                    "  {}:{}: unsafe {} ({})",
                    s.file,
                    s.line,
                    s.kind,
                    if s.has_safety_comment {
                        "SAFETY documented"
                    } else {
                        "MISSING SAFETY comment"
                    }
                );
            }
        }
        if diags.is_empty() {
            eprintln!("golint: clean");
        } else {
            let by_rule = counts_by_rule(&diags);
            let summary: Vec<String> = by_rule
                .iter()
                .map(|(rule, n)| format!("{rule}: {n}"))
                .collect();
            eprintln!(
                "golint: {} diagnostic(s) [{}]",
                diags.len(),
                summary.join(", ")
            );
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("golint: {msg}");
    eprintln!("usage: golint [--json] [--unsafe-inventory] [--root DIR] [FILE…]");
    ExitCode::from(2)
}
