//! Semantic layer over the AST: type-hint classification and a small
//! taint-style dataflow for "float-valued" and "hash-ordered" values.
//!
//! This is deliberately a *hint* system, not a type checker. A value's
//! [`Class`] is inferred from declared types (fn signatures, `let`
//! ascriptions, struct fields) and propagated through bindings, field
//! accesses, method chains and returns. Anything the inference cannot prove
//! is [`Class::Unknown`], and each rule decides which way unknown errs —
//! `float-total-order` skips unknowns (precision over recall),
//! `merge-commutativity` flags them (recall over precision inside the small
//! blessed-merge surface). Containers are transparent: `&[f64]`, `Vec<f64>`
//! and `Option<f64>` all classify as `Float`, because iterating, indexing or
//! unwrapping them yields float values and comparing them compares floats
//! elementwise.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, Expr, FnItem, Item, SourceFile, Stmt, Ty};

/// What a value *is*, as far as the lints care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Class {
    /// IEEE float or a transparent container of floats.
    Float,
    /// Integer with width/signedness (`usize`/`isize` count as 64-bit —
    /// documented policy: this repo only targets 64-bit platforms).
    Int {
        bits: u8,
        signed: bool,
    },
    Bool,
    Str,
    /// A hash-ordered container (`HashMap`, `HashSet`, `FxHashMap`, …) or
    /// an iterator derived from one: its order is nondeterministic.
    Hash,
    /// A known named type that is none of the above (`Value`, `Ordering`).
    Named(String),
    Unknown,
}

impl Class {
    pub fn is_float(&self) -> bool {
        matches!(self, Class::Float)
    }

    pub fn is_int(&self) -> bool {
        matches!(self, Class::Int { .. })
    }

    pub fn is_hash(&self) -> bool {
        matches!(self, Class::Hash)
    }
}

/// Workspace-level symbol tables built in a first pass over every parsed
/// file, so per-file scanning can resolve `x.weight_sum` or `trials(...)`
/// cross-file by name.
#[derive(Debug, Default)]
pub struct Globals {
    /// Field name → class, across all struct/enum declarations.
    pub fields: BTreeMap<String, Class>,
    /// Function name → return class, across all `fn` items.
    pub fn_returns: BTreeMap<String, Class>,
    /// Struct/enum names with float payload anywhere in their fields
    /// (transitively through other local types).
    pub float_bearing: BTreeSet<String>,
}

/// Conflict policy when the same name maps to different classes in
/// different declarations: hash-ordered wins (the hash-leak rule must not
/// lose taint to a name collision), everything else degrades to `Unknown`
/// (the float rules must not gain false positives from one).
fn merge_class(slot: &mut Class, new: Class) {
    if *slot == new {
        return;
    }
    if slot.is_hash() || new.is_hash() {
        *slot = Class::Hash;
    } else {
        *slot = Class::Unknown;
    }
}

/// Iterate every item in a file, recursing through `mod` and `impl` blocks
/// (but not into function bodies). The callback receives each item and
/// whether it sits under a `#[cfg(test)]` module.
pub fn for_each_item<'a>(file: &'a SourceFile, f: &mut dyn FnMut(&'a Item, bool)) {
    fn rec<'a>(items: &'a [Item], in_test: bool, f: &mut dyn FnMut(&'a Item, bool)) {
        for item in items {
            f(item, in_test);
            match item {
                Item::Impl(i) => rec(&i.items, in_test, f),
                Item::Mod(m) => rec(&m.items, in_test || m.cfg_test, f),
                _ => {}
            }
        }
    }
    rec(&file.items, false, f);
}

/// Build the global tables from all parsed files.
pub fn build_globals(files: &[&SourceFile]) -> Globals {
    let mut g = Globals::default();
    // Fields and returns first; float-bearing needs a fixpoint afterwards.
    let mut type_fields: BTreeMap<String, Vec<Ty>> = BTreeMap::new();
    for file in files {
        for_each_item(file, &mut |item, _| match item {
            Item::Struct(s) => {
                for (name, ty) in &s.fields {
                    if !name.is_empty() {
                        let c = classify_ty(ty);
                        g.fields
                            .entry(name.clone())
                            .and_modify(|slot| merge_class(slot, c.clone()))
                            .or_insert(c);
                    }
                }
                type_fields
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.fields.iter().map(|(_, t)| t.clone()));
            }
            Item::Enum(e) => {
                for (name, ty) in &e.fields {
                    if !name.is_empty() {
                        let c = classify_ty(ty);
                        g.fields
                            .entry(name.clone())
                            .and_modify(|slot| merge_class(slot, c.clone()))
                            .or_insert(c);
                    }
                }
                type_fields
                    .entry(e.name.clone())
                    .or_default()
                    .extend(e.fields.iter().map(|(_, t)| t.clone()));
            }
            Item::Fn(func) => {
                let c = func.ret.as_ref().map(classify_ty).unwrap_or(Class::Unknown);
                g.fn_returns
                    .entry(func.name.clone())
                    .and_modify(|slot| merge_class(slot, c.clone()))
                    .or_insert(c);
            }
            _ => {}
        });
    }
    // Float-bearing fixpoint: a type is float-bearing if any field type
    // mentions f32/f64 or another float-bearing local type.
    loop {
        let mut changed = false;
        for (name, tys) in &type_fields {
            if g.float_bearing.contains(name) {
                continue;
            }
            if tys.iter().any(|t| ty_mentions_float(t, &g.float_bearing)) {
                g.float_bearing.insert(name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    g
}

/// Does this type mention `f32`/`f64` (or a known float-bearing name) at
/// any nesting depth?
pub fn ty_mentions_float(ty: &Ty, float_bearing: &BTreeSet<String>) -> bool {
    match ty {
        Ty::Path { name, args } => {
            name == "f64"
                || name == "f32"
                || float_bearing.contains(name)
                || args.iter().any(|a| ty_mentions_float(a, float_bearing))
        }
        Ty::Ref(inner) | Ty::Slice(inner) => ty_mentions_float(inner, float_bearing),
        Ty::Tuple(items) => items.iter().any(|t| ty_mentions_float(t, float_bearing)),
        Ty::Unknown => false,
    }
}

const HASH_TYPES: [&str; 6] = [
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Wrappers that are transparent for classification: operating on the
/// wrapper (iterate/index/unwrap/compare) operates on the payload.
const TRANSPARENT: [&str; 12] = [
    "Option",
    "Box",
    "Arc",
    "Rc",
    "Cow",
    "Vec",
    "VecDeque",
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "MaybeUninit",
];

/// Classify a declared type. Named (user) types stay [`Class::Named`]:
/// the classifier resolves fields and returns through the global tables at
/// use sites ([`infer`]), not by rewriting the declared type itself.
pub fn classify_ty(ty: &Ty) -> Class {
    match ty {
        Ty::Ref(inner) | Ty::Slice(inner) => classify_ty(inner),
        Ty::Tuple(_) | Ty::Unknown => Class::Unknown,
        Ty::Path { name, args } => match name.as_str() {
            "f32" | "f64" => Class::Float,
            "u8" => Class::Int {
                bits: 8,
                signed: false,
            },
            "u16" => Class::Int {
                bits: 16,
                signed: false,
            },
            "u32" => Class::Int {
                bits: 32,
                signed: false,
            },
            "u64" | "usize" => Class::Int {
                bits: 64,
                signed: false,
            },
            "u128" => Class::Int {
                bits: 128,
                signed: false,
            },
            "i8" => Class::Int {
                bits: 8,
                signed: true,
            },
            "i16" => Class::Int {
                bits: 16,
                signed: true,
            },
            "i32" => Class::Int {
                bits: 32,
                signed: true,
            },
            "i64" | "isize" => Class::Int {
                bits: 64,
                signed: true,
            },
            "i128" => Class::Int {
                bits: 128,
                signed: true,
            },
            "bool" => Class::Bool,
            "String" | "str" | "char" => Class::Str,
            n if HASH_TYPES.contains(&n) => Class::Hash,
            n if TRANSPARENT.contains(&n) => {
                args.first().map(classify_ty).unwrap_or(Class::Unknown)
            }
            n => Class::Named(n.to_string()),
        },
    }
}

// ---------------------------------------------------------------------------
// Numeric literals
// ---------------------------------------------------------------------------

const INT_SUFFIXES: [&str; 12] = [
    "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

/// Classify a numeric literal from its verbatim text.
pub fn num_literal_class(text: &str) -> Class {
    if text.ends_with("f32") || text.ends_with("f64") {
        return Class::Float;
    }
    for suf in INT_SUFFIXES {
        if let Some(body) = text.strip_suffix(suf) {
            if !body.is_empty() {
                let bits = match suf {
                    "u8" | "i8" => 8,
                    "u16" | "i16" => 16,
                    "u32" | "i32" => 32,
                    "u128" | "i128" => 128,
                    _ => 64,
                };
                return Class::Int {
                    bits,
                    signed: suf.starts_with('i'),
                };
            }
        }
    }
    let radix_prefixed = text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b");
    if !radix_prefixed && (text.contains('.') || text.contains('e') || text.contains('E')) {
        return Class::Float;
    }
    // Unsuffixed integer: width unknown until context fixes it.
    Class::Int {
        bits: 32,
        signed: true,
    }
}

/// The integer value of an integer literal, if it is one.
pub fn num_literal_value(text: &str) -> Option<i128> {
    let mut body = text;
    if body.ends_with("f32") || body.ends_with("f64") {
        return None;
    }
    for suf in INT_SUFFIXES {
        if let Some(stripped) = body.strip_suffix(suf) {
            if !stripped.is_empty() {
                body = stripped;
                break;
            }
        }
    }
    let clean: String = body.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x") {
        return i128::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = clean.strip_prefix("0o") {
        return i128::from_str_radix(oct, 8).ok();
    }
    if let Some(bin) = clean.strip_prefix("0b") {
        return i128::from_str_radix(bin, 2).ok();
    }
    if clean.contains('.') || clean.contains('e') || clean.contains('E') {
        return None;
    }
    clean.parse().ok()
}

/// Does `v` fit in an integer of the given width/signedness?
pub fn literal_fits(v: i128, bits: u8, signed: bool) -> bool {
    if bits >= 128 {
        return signed || v >= 0;
    }
    if signed {
        let half = 1i128 << (bits - 1);
        (-half..half).contains(&v)
    } else {
        v >= 0 && (bits == 127 || v < (1i128 << bits))
    }
}

// ---------------------------------------------------------------------------
// Per-function environment & inference
// ---------------------------------------------------------------------------

/// Lexically scoped name → class bindings inside one function.
#[derive(Debug, Default)]
pub struct Env {
    scopes: Vec<BTreeMap<String, Class>>,
}

impl Env {
    pub fn new() -> Env {
        Env {
            scopes: vec![BTreeMap::new()],
        }
    }

    fn push(&mut self) {
        self.scopes.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    pub fn bind(&mut self, name: &str, class: Class) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string(), class);
        }
    }

    pub fn lookup(&self, name: &str) -> Option<&Class> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }
}

/// Methods whose return classifies as the receiver's class (value-preserving
/// or order-preserving adaptors).
const PASS_THROUGH: [&str; 30] = [
    "clone",
    "copied",
    "cloned",
    "to_owned",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "expect",
    "abs",
    "sqrt",
    "recip",
    "floor",
    "ceil",
    "round",
    "powi",
    "powf",
    "ln",
    "exp",
    "min",
    "max",
    "clamp",
    "iter",
    "iter_mut",
    "into_iter",
    "filter",
    "take",
    "skip",
    "rev",
    "enumerate",
];

/// Hash-ordered views of a hash-ordered receiver.
const HASH_VIEWS: [&str; 6] = [
    "keys",
    "values",
    "values_mut",
    "entry",
    "drain",
    "into_keys",
];

/// Infer the class of an expression under the current environment.
pub fn infer(e: &Expr, env: &Env, g: &Globals) -> Class {
    match e {
        Expr::Num { text, .. } => num_literal_class(text),
        Expr::Lit { .. } => Class::Str,
        Expr::Bool { .. } => Class::Bool,
        Expr::Path { segs, .. } => match segs.as_slice() {
            // A local binding wins; an unknown name falls back to the
            // workspace field table (`groups` bound by destructuring still
            // carries its declared field class).
            [one] => match env.lookup(one) {
                Some(c) if *c != Class::Unknown => c.clone(),
                _ => g.fields.get(one).cloned().unwrap_or(Class::Unknown),
            },
            [first, ..] => {
                // `f64::NAN`, `usize::MAX`, `Value::Null`, `Ordering::Less`.
                match classify_ty(&Ty::path(first)) {
                    Class::Named(_) => Class::Named(first.clone()),
                    c => c,
                }
            }
            [] => Class::Unknown,
        },
        Expr::Unary { expr, .. } => infer(expr, env, g),
        Expr::Binary { op, lhs, rhs, .. } => {
            if op.is_comparison() || matches!(op, crate::ast::BinOp::And | crate::ast::BinOp::Or) {
                return Class::Bool;
            }
            let l = infer(lhs, env, g);
            let r = infer(rhs, env, g);
            if op.is_arith() {
                if l.is_float() || r.is_float() {
                    return Class::Float;
                }
                if let (
                    Class::Int {
                        bits: a,
                        signed: sa,
                    },
                    Class::Int {
                        bits: b,
                        signed: sb,
                    },
                ) = (&l, &r)
                {
                    return Class::Int {
                        bits: (*a).max(*b),
                        signed: *sa || *sb,
                    };
                }
                return Class::Unknown;
            }
            l // shifts/bitops keep the left class
        }
        Expr::Assign { .. } => Class::Unknown,
        Expr::Cast { ty, .. } => classify_ty(ty),
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => {
                // `f64::from(..)` / `Type::new(..)` / free `helper(..)`.
                if segs.iter().any(|s| s == "f64" || s == "f32") {
                    return Class::Float;
                }
                if segs.len() >= 2 {
                    // `u32::try_from(..)`, `HashMap::new()`, `Vec::from(..)`:
                    // the associated type decides, unless it's just a name.
                    match classify_ty(&Ty::path(&segs[segs.len() - 2])) {
                        Class::Named(_) | Class::Unknown => {}
                        c => return c,
                    }
                }
                segs.last()
                    .and_then(|name| g.fn_returns.get(name))
                    .cloned()
                    .unwrap_or(Class::Unknown)
            }
            _ => Class::Unknown,
        },
        Expr::MethodCall {
            recv,
            method,
            targs,
            args,
            ..
        } => {
            let rc = infer(recv, env, g);
            match method.as_str() {
                "as_f64" | "to_f64" | "to_degrees" | "to_radians" => Class::Float,
                "len" | "count" | "capacity" => Class::Int {
                    bits: 64,
                    signed: false,
                },
                "total_cmp" | "cmp" => Class::Named("Ordering".to_string()),
                "sum" | "product" => targs.first().map(classify_ty).unwrap_or(rc),
                "collect" => targs.first().map(classify_ty).unwrap_or(rc),
                "map" | "filter_map" | "flat_map" | "fold" => {
                    // Keep hash taint through adaptors; otherwise the
                    // closure's body decides what comes out.
                    if rc.is_hash() {
                        return Class::Hash;
                    }
                    match args.last() {
                        Some(Expr::Closure { body, .. }) => infer(body, env, g),
                        _ => Class::Unknown,
                    }
                }
                "get" | "first" | "last" | "get_mut" => {
                    if rc.is_float() {
                        Class::Float
                    } else {
                        Class::Unknown
                    }
                }
                m if HASH_VIEWS.contains(&m) => {
                    if rc.is_hash() {
                        Class::Hash
                    } else {
                        rc
                    }
                }
                m if PASS_THROUGH.contains(&m) => rc,
                m => g.fn_returns.get(m).cloned().unwrap_or(Class::Unknown),
            }
        }
        Expr::Field { base, name, .. } => {
            let _ = infer(base, env, g);
            g.fields.get(name).cloned().unwrap_or(Class::Unknown)
        }
        Expr::Index { base, .. } => match infer(base, env, g) {
            Class::Hash => Class::Unknown, // map[key] yields a value, unordered
            c => c,
        },
        Expr::If { then, els, .. } => {
            let t = block_value_class(then, env, g);
            if t != Class::Unknown {
                return t;
            }
            els.as_ref()
                .map(|e| infer(e, env, g))
                .unwrap_or(Class::Unknown)
        }
        Expr::Match { arms, .. } => arms
            .iter()
            .map(|a| infer(&a.body, env, g))
            .find(|c| *c != Class::Unknown)
            .unwrap_or(Class::Unknown),
        Expr::Block { block, .. } => block_value_class(block, env, g),
        // `0..n` yields its endpoint class, so `for i in 0..n` binds an int.
        // Prefer the non-literal endpoint: in `0..len` the `0` is an untyped
        // literal that unifies with `len`'s type, not the other way round.
        Expr::Range { lo, hi, .. } => {
            let is_lit =
                |e: &Option<Box<Expr>>| e.as_deref().is_some_and(|x| matches!(x, Expr::Num { .. }));
            let (first, second) = if is_lit(lo) && !is_lit(hi) {
                (hi, lo)
            } else {
                (lo, hi)
            };
            first
                .as_deref()
                .or(second.as_deref())
                .map(|e| infer(e, env, g))
                .unwrap_or(Class::Unknown)
        }
        Expr::StructLit { name, .. } => Class::Named(name.clone()),
        Expr::Macro { name, .. } => match name.as_str() {
            "format" => Class::Str,
            "vec" => Class::Unknown,
            _ => Class::Unknown,
        },
        _ => Class::Unknown,
    }
}

fn block_value_class(b: &Block, env: &Env, g: &Globals) -> Class {
    match b.stmts.last() {
        Some(Stmt::Expr(e)) => infer(e, env, g),
        _ => Class::Unknown,
    }
}

/// Build the initial environment for a function from its parameters.
pub fn fn_env(f: &FnItem) -> Env {
    let mut env = Env::new();
    for p in &f.params {
        let class = classify_ty(&p.ty);
        match (p.names.as_slice(), &p.ty) {
            ([one], _) => env.bind(one, class),
            (names, Ty::Tuple(tys)) if names.len() == tys.len() => {
                for (n, t) in names.iter().zip(tys) {
                    env.bind(n, classify_ty(t));
                }
            }
            (names, _) => {
                for n in names {
                    env.bind(n, Class::Unknown);
                }
            }
        }
    }
    env
}

fn bind_pattern(names: &[String], class: Class, env: &mut Env) {
    match names {
        [one] => env.bind(one, class),
        many => {
            for n in many {
                env.bind(n, Class::Unknown);
            }
        }
    }
}

/// Walk every expression in a function body depth-first, maintaining the
/// lexical environment, and invoke `cb` with each expression and the
/// environment in effect at that point.
pub fn walk_fn(f: &FnItem, g: &Globals, cb: &mut dyn FnMut(&Expr, &Env)) {
    if let Some(body) = &f.body {
        let mut env = fn_env(f);
        walk_block_env(body, &mut env, g, cb);
    }
}

fn walk_block_env(b: &Block, env: &mut Env, g: &Globals, cb: &mut dyn FnMut(&Expr, &Env)) {
    env.push();
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(e) = &l.init {
                    walk_expr_env(e, env, g, cb);
                }
                if let Some(blk) = &l.else_block {
                    walk_block_env(blk, env, g, cb);
                }
                let class = match (&l.ty, &l.init) {
                    (Some(t), _) => classify_ty(t),
                    (None, Some(e)) => infer(e, env, g),
                    _ => Class::Unknown,
                };
                bind_pattern(&l.names, class, env);
            }
            Stmt::Expr(e) => walk_expr_env(e, env, g, cb),
            Stmt::Item(Item::Fn(nested)) => walk_fn(nested, g, cb),
            Stmt::Item(Item::Const(c)) => {
                if let Some(e) = &c.init {
                    walk_expr_env(e, env, g, cb);
                }
            }
            Stmt::Item(_) => {}
        }
    }
    env.pop();
}

fn walk_expr_env(e: &Expr, env: &mut Env, g: &Globals, cb: &mut dyn FnMut(&Expr, &Env)) {
    cb(e, env);
    match e {
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => walk_expr_env(expr, env, g, cb),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_expr_env(lhs, env, g, cb);
            walk_expr_env(rhs, env, g, cb);
        }
        Expr::Call { callee, args, .. } => {
            walk_expr_env(callee, env, g, cb);
            for a in args {
                walk_expr_env(a, env, g, cb);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr_env(recv, env, g, cb);
            for a in args {
                walk_expr_env(a, env, g, cb);
            }
        }
        Expr::Field { base, .. } => walk_expr_env(base, env, g, cb),
        Expr::Index { base, index, .. } => {
            walk_expr_env(base, env, g, cb);
            walk_expr_env(index, env, g, cb);
        }
        Expr::Closure { params, body, .. } => {
            env.push();
            for (names, ty) in params {
                let class = ty.as_ref().map(classify_ty);
                bind_pattern(names, class.unwrap_or(Class::Unknown), env);
            }
            walk_expr_env(body, env, g, cb);
            env.pop();
        }
        Expr::If {
            cond,
            binds,
            then,
            els,
            ..
        } => {
            walk_expr_env(cond, env, g, cb);
            env.push();
            if !binds.is_empty() {
                let class = infer(cond, env, g);
                bind_pattern(binds, class, env);
            }
            walk_block_env(then, env, g, cb);
            env.pop();
            if let Some(e) = els {
                walk_expr_env(e, env, g, cb);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            walk_expr_env(scrut, env, g, cb);
            let scrut_class = infer(scrut, env, g);
            for arm in arms {
                env.push();
                bind_pattern(&arm.binds, scrut_class.clone(), env);
                if let Some(guard) = &arm.guard {
                    walk_expr_env(guard, env, g, cb);
                }
                walk_expr_env(&arm.body, env, g, cb);
                env.pop();
            }
        }
        Expr::For {
            binds, iter, body, ..
        } => {
            walk_expr_env(iter, env, g, cb);
            env.push();
            // Containers are class-transparent, so the element class is the
            // iterated expression's class.
            let class = infer(iter, env, g);
            bind_pattern(binds, class, env);
            walk_block_env(body, env, g, cb);
            env.pop();
        }
        Expr::While {
            cond, binds, body, ..
        } => {
            walk_expr_env(cond, env, g, cb);
            env.push();
            if !binds.is_empty() {
                let class = infer(cond, env, g);
                bind_pattern(binds, class, env);
            }
            walk_block_env(body, env, g, cb);
            env.pop();
        }
        Expr::Loop { body, .. } => walk_block_env(body, env, g, cb),
        Expr::Block { block, .. } => walk_block_env(block, env, g, cb),
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr_env(a, env, g, cb);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                walk_expr_env(i, env, g, cb);
            }
        }
        Expr::StructLit { fields, .. } => {
            for f in fields {
                walk_expr_env(f, env, g, cb);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                walk_expr_env(e, env, g, cb);
            }
            if let Some(e) = hi {
                walk_expr_env(e, env, g, cb);
            }
        }
        Expr::Return { expr: Some(e), .. } => walk_expr_env(e, env, g, cb),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::{tokenize, TokKind};

    fn parse_src(src: &str) -> SourceFile {
        let code: Vec<_> = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        parse(&code)
    }

    #[test]
    fn literal_classes_and_values() {
        assert_eq!(num_literal_class("0.5f64"), Class::Float);
        assert_eq!(num_literal_class("2.5e-3"), Class::Float);
        assert_eq!(
            num_literal_class("1_000u32"),
            Class::Int {
                bits: 32,
                signed: false
            }
        );
        assert_eq!(num_literal_value("1_000"), Some(1000));
        assert_eq!(num_literal_value("0xFFu32"), Some(255));
        assert_eq!(num_literal_value("0.5"), None);
        assert!(literal_fits(255, 8, false));
        assert!(!literal_fits(256, 8, false));
        assert!(!literal_fits(-1, 8, false));
        assert!(literal_fits(-128, 8, true));
        assert!(!literal_fits(128, 8, true));
    }

    #[test]
    fn transparent_containers_classify_as_payload() {
        let file = parse_src("fn f(xs: &[f64], m: HashMap<u64, u32>, o: Option<f64>) {}");
        let crate::ast::Item::Fn(func) = &file.items[0] else {
            panic!()
        };
        let env = fn_env(func);
        assert_eq!(env.lookup("xs"), Some(&Class::Float));
        assert_eq!(env.lookup("m"), Some(&Class::Hash));
        assert_eq!(env.lookup("o"), Some(&Class::Float));
    }

    #[test]
    fn globals_field_and_return_tables() {
        let file = parse_src(
            "struct Estimate { mean: f64, n: u64 }\n\
             enum AggState { Count { weight_sum: f64 } }\n\
             fn trials(rows: usize) -> u32 { 0 }",
        );
        let g = build_globals(&[&file]);
        assert_eq!(g.fields.get("mean"), Some(&Class::Float));
        assert_eq!(g.fields.get("weight_sum"), Some(&Class::Float));
        assert_eq!(
            g.fn_returns.get("trials"),
            Some(&Class::Int {
                bits: 32,
                signed: false
            })
        );
        assert!(g.float_bearing.contains("Estimate"));
        assert!(g.float_bearing.contains("AggState"));
    }

    #[test]
    fn float_bearing_is_transitive() {
        let file = parse_src(
            "struct Inner { x: f64 }\nstruct Outer { inner: Inner, n: u32 }\nstruct Clean { n: u32 }",
        );
        let g = build_globals(&[&file]);
        assert!(g.float_bearing.contains("Inner"));
        assert!(g.float_bearing.contains("Outer"));
        assert!(!g.float_bearing.contains("Clean"));
    }

    #[test]
    fn inference_tracks_bindings_and_methods() {
        let file = parse_src(
            "fn f(xs: &[f64], n: usize) {\n\
                 let y = xs[0];\n\
                 let z = y * 2.0;\n\
                 let c = xs.len();\n\
                 let s = xs.iter().sum::<f64>();\n\
                 let k = n as u32;\n\
             }",
        );
        let crate::ast::Item::Fn(func) = &file.items[0] else {
            panic!()
        };
        let g = Globals::default();
        let mut classes: Vec<(String, Class)> = Vec::new();
        // Observe the env at the last statement by walking and recording
        // lookups at every expression site.
        walk_fn(func, &g, &mut |e, env| {
            if let Expr::Cast { .. } = e {
                for name in ["y", "z", "c", "s"] {
                    if let Some(c) = env.lookup(name) {
                        classes.push((name.to_string(), c.clone()));
                    }
                }
            }
        });
        let get = |n: &str| {
            classes
                .iter()
                .find(|(name, _)| name == n)
                .map(|(_, c)| c.clone())
        };
        assert_eq!(get("y"), Some(Class::Float));
        assert_eq!(get("z"), Some(Class::Float));
        assert_eq!(
            get("c"),
            Some(Class::Int {
                bits: 64,
                signed: false
            })
        );
        assert_eq!(get("s"), Some(Class::Float));
    }

    #[test]
    fn hash_taint_flows_through_views_and_adaptors() {
        let file = parse_src(
            "fn f(m: HashMap<u64, f64>) {\n\
                 let ks = m.keys();\n\
                 let it = m.iter().map(|kv| kv);\n\
                 let sorted = m.sorted_entries();\n\
             }",
        );
        let crate::ast::Item::Fn(func) = &file.items[0] else {
            panic!()
        };
        let g = Globals::default();
        let mut seen = Vec::new();
        walk_fn(func, &g, &mut |e, env| {
            if let Expr::MethodCall { method, .. } = e {
                if method == "sorted_entries" {
                    for n in ["ks", "it"] {
                        seen.push(env.lookup(n).cloned());
                    }
                }
            }
        });
        assert_eq!(seen, vec![Some(Class::Hash), Some(Class::Hash)]);
    }
}
