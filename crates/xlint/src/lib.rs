//! `golint` — a determinism & concurrency auditor for the G-OLA workspace.
//!
//! G-OLA's correctness contract is that every mini-batch publishes the same
//! `BatchReport` regardless of physical schedule (threads=1 ≡ threads=N,
//! bit-identical). Nothing in the type system stops a future change from
//! breaking that with a stray `HashMap` iteration or wall-clock read in a
//! publish path, so this crate enforces the contract as code: a token-level
//! static-analysis pass over every workspace `.rs` file with five
//! deny-by-default rules.
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `hash-order-leak` | iteration over `HashMap`/`HashSet`-typed values in result-producing crates |
//! | `schedule-leak` | `Instant`/`SystemTime`/thread-identity/thread-count reads outside blessed timing & bench modules |
//! | `unsafe-audit` | `unsafe` without a `// SAFETY:` comment within 5 lines above |
//! | `float-fold-ordering` | unchunked `f64`/`f32` sum/product/fold outside the blessed chunk kernels |
//! | `panic-surface` | `unwrap`/`expect`/`panic!`-family in library hot paths, minus a poisoning-lock allowlist |
//!
//! Every rule has a scoped escape hatch:
//!
//! ```text
//! // golint: allow(hash-order-leak) -- merge is commutative per key
//! ```
//!
//! The allow comment covers its own line(s) plus the statement that follows
//! (to the next `;` or `{` at depth 0, capped at 12 lines), and the
//! `-- reason` is mandatory — a reasonless allow is itself a
//! diagnostic (`allow-syntax`), as is an unknown rule name.
//!
//! The analysis is name-based and heuristic by design (no type inference):
//! pass 1 collects every identifier bound or declared with a hash-map/set
//! type anywhere in the workspace; pass 2 flags order-sensitive uses of
//! those names inside scoped crates. False positives are expected to be
//! rare and are silenced with a reasoned allow comment — that reason is the
//! documentation reviewers actually want.

pub mod lexer;

use lexer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules. `AllowSyntax` is internal: it fires on malformed
/// `golint: allow` comments and cannot itself be allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashOrderLeak,
    ScheduleLeak,
    UnsafeAudit,
    FloatFoldOrdering,
    PanicSurface,
    AllowSyntax,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::HashOrderLeak,
        Rule::ScheduleLeak,
        Rule::UnsafeAudit,
        Rule::FloatFoldOrdering,
        Rule::PanicSurface,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrderLeak => "hash-order-leak",
            Rule::ScheduleLeak => "schedule-leak",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::FloatFoldOrdering => "float-fold-ordering",
            Rule::PanicSurface => "panic-surface",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence, for the `--unsafe-inventory` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// `block`, `fn`, `impl`, `trait`, or `other`.
    pub kind: &'static str,
    pub has_safety_comment: bool,
}

/// Per-rule path policy. All paths are workspace-relative with `/`
/// separators; a scope entry matches any file whose path starts with it.
#[derive(Debug, Clone)]
pub struct Config {
    /// `hash-order-leak` fires only under these prefixes (result-producing
    /// crates whose iteration order can reach a `BatchReport`).
    pub hash_order_scope: Vec<String>,
    /// `schedule-leak` fires everywhere EXCEPT these prefixes (blessed
    /// timing and benchmark code, where wall-clock reads are the point).
    pub schedule_blessed: Vec<String>,
    /// `float-fold-ordering` fires only under these prefixes.
    pub float_fold_scope: Vec<String>,
    /// `panic-surface` fires only under these prefixes (library hot paths).
    pub panic_scope: Vec<String>,
    /// Receiver methods whose `unwrap`/`expect` is allowed without an
    /// annotation: lock poisoning and thread joins, where propagating the
    /// panic is the correct and conventional response.
    pub panic_allowed_receivers: Vec<String>,
    /// Functions that consume a hash map and erase its iteration order
    /// (sorting sinks). A `for`-loop whose iterated expression routes
    /// through one of these is not an order leak.
    pub hash_order_sinks: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            hash_order_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
            ]),
            schedule_blessed: s(&[
                "crates/bench/",
                "crates/common/src/timing.rs",
                // The observability clock: the one sanctioned absolute-time
                // read (export timestamps only, never fed back into results).
                "crates/obs/src/clock.rs",
            ]),
            float_fold_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
                "crates/common/src",
            ]),
            panic_scope: s(&[
                "crates/core/src/executor.rs",
                "crates/core/src/pool.rs",
                "crates/engine/src",
            ]),
            panic_allowed_receivers: s(&["lock", "read", "write", "wait", "join", "recv"]),
            hash_order_sinks: s(&["sorted_entries", "sorted_into_entries"]),
        }
    }
}

fn in_scope(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// Integration-test and fixture sources: exempt from everything except the
/// unsafe audit (tests may iterate hash maps and unwrap freely; they may
/// not skip safety comments).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ORDER_SENSITIVE_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

// ---------------------------------------------------------------------------
// Per-file token view
// ---------------------------------------------------------------------------

struct FileView<'a> {
    path: &'a str,
    /// Non-comment tokens only — all pattern scanning happens here.
    code: Vec<Tok>,
    /// `(start_line, end_line, text)` of every comment.
    comments: Vec<(u32, u32, String)>,
    /// Inclusive line ranges of `#[cfg(test)]`-guarded items.
    test_regions: Vec<(u32, u32)>,
}

impl<'a> FileView<'a> {
    fn new(path: &'a str, src: &str) -> FileView<'a> {
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in lexer::tokenize(src) {
            match t.kind {
                TokKind::Comment { text, end_line } => comments.push((t.line, end_line, text)),
                _ => code.push(t),
            }
        }
        let test_regions = find_test_regions(&code);
        FileView {
            path,
            code,
            comments,
            test_regions,
        }
    }

    fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Last line of the statement (or item header) that starts on the first
    /// code line after `after`: scans to the first `;` or `{` at depth 0,
    /// capped at 12 lines. This is the span an allow comment covers — the
    /// next statement, not the block it may open.
    fn next_statement_end(&self, after: u32) -> Option<u32> {
        let start = self.code.iter().position(|t| t.line > after)?;
        let first_line = self.code[start].line;
        let mut depth = 0i32;
        let mut last_line = first_line;
        for t in &self.code[start..] {
            if t.line > first_line + 12 {
                break;
            }
            last_line = t.line;
            match &t.kind {
                k if k.is_punct('(') || k.is_punct('[') => depth += 1,
                k if k.is_punct(')') || k.is_punct(']') => depth -= 1,
                k if depth <= 0 && (k.is_punct(';') || k.is_punct('{') || k.is_punct('}')) => {
                    break;
                }
                _ => {}
            }
        }
        Some(last_line)
    }
}

/// Find `#[cfg(test)] <item> { … }` regions by matching the brace that
/// follows the attribute. Good enough for the workspace convention of
/// `#[cfg(test)] mod tests { … }`.
fn find_test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].kind.is_punct('#') && code[i + 1].kind.is_punct('[') {
            // Collect the attribute body up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < code.len() && depth > 0 {
                match &code[j].kind {
                    k if k.is_punct('[') => depth += 1,
                    k if k.is_punct(']') => depth -= 1,
                    k if k.is_ident("cfg") => saw_cfg = true,
                    k if k.is_ident("test") => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Find the item's opening brace and match it.
                let mut k = j;
                while k < code.len() && !code[k].kind.is_punct('{') {
                    // A `;` first means `#[cfg(test)] mod foo;` — no body.
                    if code[k].kind.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if k < code.len() && code[k].kind.is_punct('{') {
                    let start_line = code[i].line;
                    let mut b = 1i32;
                    let mut m = k + 1;
                    while m < code.len() && b > 0 {
                        if code[m].kind.is_punct('{') {
                            b += 1;
                        } else if code[m].kind.is_punct('}') {
                            b -= 1;
                        }
                        m += 1;
                    }
                    let end_line = code.get(m.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    regions.push((start_line, end_line));
                    i = m;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

struct Allow {
    rules: Vec<Rule>,
    /// Lines this allow covers (its own lines + first following code line).
    lines: (u32, u32),
}

/// Parse `// golint: allow(rule, …) -- reason` comments. Malformed allows
/// (missing reason, unknown rule) become `allow-syntax` diagnostics and
/// suppress nothing.
fn collect_allows(view: &FileView<'_>, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (start, end, text) in &view.comments {
        // Only comments that LEAD with the marker are directives; prose
        // that mentions `golint: allow(...)` mid-sentence is not.
        let stripped = text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(rest) = stripped.strip_prefix("golint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: view.path.to_string(),
                line: *start,
                rule: Rule::AllowSyntax,
                message: "golint comment is not of the form `golint: allow(rule, …) -- reason`"
                    .to_string(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (list, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some(x) => x,
            None => {
                diags.push(Diagnostic {
                    file: view.path.to_string(),
                    line: *start,
                    rule: Rule::AllowSyntax,
                    message: "allow comment missing `(rule, …)` list".to_string(),
                });
                continue;
            }
        };
        let reason = tail.split_once("--").map(|(_, r)| r.trim()).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: view.path.to_string(),
                line: *start,
                rule: Rule::AllowSyntax,
                message: "allow comment missing a `-- reason`; say why the pattern is sound"
                    .to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        file: view.path.to_string(),
                        line: *start,
                        rule: Rule::AllowSyntax,
                        message: format!("unknown rule `{name}` in allow comment"),
                    });
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        let covered_end = view.next_statement_end(*end).unwrap_or(*end);
        allows.push(Allow {
            rules,
            lines: (*start, covered_end),
        });
    }
    allows
}

// ---------------------------------------------------------------------------
// Pass 1 — global hash-typed symbol table
// ---------------------------------------------------------------------------

/// Collect every identifier bound or declared with a hash-map/set type in
/// `code`. Name-based and workspace-global: a field declared
/// `groups: FxHashMap<…>` in one file marks `groups` hash-typed everywhere.
fn collect_hash_symbols(code: &[Tok], out: &mut BTreeSet<String>) {
    let is_hash = |t: &Tok| matches!(t.kind.ident(), Some(s) if HASH_TYPES.contains(&s));
    let mut i = 0;
    while i < code.len() {
        // Pattern A/C: `name : TYPE…` where TYPE mentions a hash type.
        // Skip `::` path segments on either side of the colon.
        if let TokKind::Ident(name) = &code[i].kind {
            let single_colon = code.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                && !code.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                && !(i > 0 && code[i - 1].kind.is_punct(':'));
            if single_colon {
                if let Some(region) = type_region(code, i + 2) {
                    if code[i + 2..region].iter().any(is_hash) {
                        out.insert(name.clone());
                    }
                }
            }
            // Pattern B: `let [mut] name = <init>` where the initializer
            // constructs a hash type (`FxHashMap::default()` etc.).
            if name == "let" {
                let mut j = i + 1;
                if code.get(j).is_some_and(|t| t.kind.is_ident("mut")) {
                    j += 1;
                }
                if let Some(TokKind::Ident(bound)) = code.get(j).map(|t| &t.kind) {
                    let mut k = j + 1;
                    // Skip over an explicit `: TYPE` to the `=`.
                    if code.get(k).is_some_and(|t| t.kind.is_punct(':')) {
                        if let Some(end) = type_region(code, k + 1) {
                            k = end;
                        }
                    }
                    if code.get(k).is_some_and(|t| t.kind.is_punct('=')) {
                        let mut depth = 0i32;
                        let mut m = k + 1;
                        while let Some(t) = code.get(m) {
                            match &t.kind {
                                k if k.is_punct('(') || k.is_punct('[') || k.is_punct('{') => {
                                    depth += 1
                                }
                                k if k.is_punct(')') || k.is_punct(']') || k.is_punct('}') => {
                                    depth -= 1
                                }
                                k if k.is_punct(';') && depth <= 0 => break,
                                _ if is_hash(t)
                                    && code.get(m + 1).is_some_and(|t| t.kind.is_punct(':'))
                                    && code.get(m + 2).is_some_and(|t| t.kind.is_punct(':')) =>
                                {
                                    out.insert(bound.clone());
                                }
                                _ => {}
                            }
                            m += 1;
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Scan a type region starting at `start`, returning the index of the
/// delimiter that ends it (`,` `;` `)` `}` `=` `{` at depth 0). Tracks
/// `() [] <>` depth; `->` and `=>` arrows do not close a generic.
fn type_region(code: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = start;
    while let Some(t) = code.get(i) {
        match &t.kind {
            k if k.is_punct('<') || k.is_punct('(') || k.is_punct('[') => depth += 1,
            k if (k.is_punct('-') || k.is_punct('='))
                && code.get(i + 1).is_some_and(|t| t.kind.is_punct('>')) =>
            {
                if depth == 0 && k.is_punct('=') {
                    return Some(i); // `=>` at depth 0: match arm, not a type
                }
                i += 2; // skip `->` / nested `=>` as a unit
                continue;
            }
            k if k.is_punct('>') || k.is_punct(')') || k.is_punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return Some(i);
                }
            }
            k if depth == 0
                && (k.is_punct(',')
                    || k.is_punct(';')
                    || k.is_punct('=')
                    || k.is_punct('{')
                    || k.is_punct('}')) =>
            {
                return Some(i);
            }
            _ => {}
        }
        i += 1;
        // Types don't run forever; bail out of pathological regions.
        if i - start > 256 {
            return None;
        }
    }
    Some(code.len())
}

// ---------------------------------------------------------------------------
// Pass 2 — rule scanners
// ---------------------------------------------------------------------------

fn scan_hash_order(
    view: &FileView<'_>,
    symbols: &BTreeSet<String>,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let code = &view.code;
    let push = |out: &mut Vec<Diagnostic>, line: u32, name: &str| {
        out.push(Diagnostic {
            file: view.path.to_string(),
            line,
            rule: Rule::HashOrderLeak,
            message: format!(
                "iteration over hash-ordered `{name}` in a result-producing crate; \
                 sort entries (or use a BTreeMap) before results can reach a BatchReport"
            ),
        });
    };
    let mut i = 0;
    while i < code.len() {
        if let TokKind::Ident(name) = &code[i].kind {
            // `m.iter()` / `m.values()` / … on a hash-typed name, or a hash
            // type constructor used inline (`FxHashMap::default().iter()`).
            let hash_named = symbols.contains(name) || HASH_TYPES.contains(&name.as_str());
            if hash_named
                && code.get(i + 1).is_some_and(|t| t.kind.is_punct('.'))
                && code.get(i + 2).is_some_and(
                    |t| matches!(t.kind.ident(), Some(m) if ORDER_SENSITIVE_METHODS.contains(&m)),
                )
                && code.get(i + 3).is_some_and(|t| t.kind.is_punct('('))
            {
                push(out, code[i + 2].line, name);
                i += 3;
                continue;
            }
            // `for pat in <expr> {` — a hash-typed name consumed whole
            // (`for (k, v) in shard.groups {`), i.e. implicit into_iter.
            if name == "for" {
                // Find the `in` at depth 0, then scan to the `{` at depth 0.
                let mut depth = 0i32;
                let mut j = i + 1;
                let mut in_at = None;
                while let Some(t) = code.get(j) {
                    match &t.kind {
                        k if k.is_punct('(') || k.is_punct('[') => depth += 1,
                        k if k.is_punct(')') || k.is_punct(']') => depth -= 1,
                        k if depth == 0 && k.is_ident("in") => {
                            in_at = Some(j);
                            break;
                        }
                        k if k.is_punct('{') || k.is_punct(';') => break,
                        _ => {}
                    }
                    j += 1;
                    if j - i > 64 {
                        break;
                    }
                }
                if let Some(start) = in_at {
                    let mut depth = 0i32;
                    let mut j = start + 1;
                    while let Some(t) = code.get(j) {
                        match &t.kind {
                            k if k.is_punct('(') || k.is_punct('[') => depth += 1,
                            k if k.is_punct(')') || k.is_punct(']') => depth -= 1,
                            k if depth == 0 && k.is_punct('{') => break,
                            TokKind::Ident(n)
                                if cfg.hash_order_sinks.iter().any(|s| s == n)
                                    && code.get(j + 1).is_some_and(|t| t.kind.is_punct('(')) =>
                            {
                                // Routed through a sorting sink: iteration
                                // order is erased before the loop sees it.
                                break;
                            }
                            TokKind::Ident(n)
                                if symbols.contains(n)
                                    && !code.get(j + 1).is_some_and(|t| {
                                        t.kind.is_punct('.') || t.kind.is_punct('(')
                                    }) =>
                            {
                                push(out, t.line, n);
                            }
                            _ => {}
                        }
                        j += 1;
                        if j - start > 96 {
                            break;
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

fn scan_schedule(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    let code = &view.code;
    for (i, t) in code.iter().enumerate() {
        let Some(name) = t.kind.ident() else { continue };
        let msg = match name {
            "Instant" => {
                "wall-clock `Instant` outside blessed timing modules; \
                          use `gola_common::timing::Stopwatch`"
            }
            "SystemTime" => "`SystemTime` read leaks wall-clock state into the schedule",
            "available_parallelism" | "num_cpus" => {
                "thread-count read outside bench code makes behaviour host-dependent"
            }
            "thread" => {
                let is_current = code.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 3).is_some_and(|t| t.kind.is_ident("current"));
                if !is_current {
                    continue;
                }
                "`thread::current()` identity read leaks the physical schedule"
            }
            _ => continue,
        };
        out.push(Diagnostic {
            file: view.path.to_string(),
            line: t.line,
            rule: Rule::ScheduleLeak,
            message: msg.to_string(),
        });
    }
}

/// Scan for `unsafe` tokens; returns the inventory and appends diagnostics
/// for sites lacking a `// SAFETY:` comment within 5 lines above.
fn scan_unsafe(view: &FileView<'_>, out: &mut Vec<Diagnostic>) -> Vec<UnsafeSite> {
    let code = &view.code;
    let mut sites = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !t.kind.is_ident("unsafe") {
            continue;
        }
        let kind = match code.get(i + 1).map(|t| &t.kind) {
            Some(k) if k.is_punct('{') => "block",
            Some(k) if k.is_ident("fn") => "fn",
            Some(k) if k.is_ident("impl") => "impl",
            Some(k) if k.is_ident("trait") => "trait",
            _ => "other",
        };
        let has_safety = view
            .comments
            .iter()
            .any(|(_, end, text)| text.contains("SAFETY:") && *end <= t.line && t.line - *end <= 5);
        if !has_safety {
            out.push(Diagnostic {
                file: view.path.to_string(),
                line: t.line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment within 5 lines above"
                ),
            });
        }
        sites.push(UnsafeSite {
            file: view.path.to_string(),
            line: t.line,
            kind,
            has_safety_comment: has_safety,
        });
    }
    sites
}

fn scan_float_fold(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    let code = &view.code;
    let push = |out: &mut Vec<Diagnostic>, line: u32, what: &str| {
        out.push(Diagnostic {
            file: view.path.to_string(),
            line,
            rule: Rule::FloatFoldOrdering,
            message: format!(
                "unchunked float {what}: accumulation order must be fixed \
                 (1024-tuple chunk kernel) or proven order-insensitive"
            ),
        });
    };
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].kind.is_punct('.') {
            if let Some(m) = code[i + 1].kind.ident() {
                // `.sum::<f64>()` / `.product::<f32>()`
                if (m == "sum" || m == "product")
                    && code.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 3).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 4).is_some_and(|t| t.kind.is_punct('<'))
                    && code
                        .get(i + 5)
                        .is_some_and(|t| t.kind.is_ident("f64") || t.kind.is_ident("f32"))
                {
                    push(out, code[i + 1].line, m);
                    i += 5;
                    continue;
                }
                // `.fold(0.0, …)` / `.fold(-1.0f64, …)` — float seed.
                if m == "fold" && code.get(i + 2).is_some_and(|t| t.kind.is_punct('(')) {
                    let mut j = i + 3;
                    if code.get(j).is_some_and(|t| t.kind.is_punct('-')) {
                        j += 1;
                    }
                    let float_seed = match code.get(j).map(|t| &t.kind) {
                        Some(TokKind::Num(n)) => {
                            n.contains('.') || n.ends_with("f64") || n.ends_with("f32")
                        }
                        Some(TokKind::Ident(id)) => id == "f64" || id == "f32",
                        _ => false,
                    };
                    if float_seed {
                        push(out, code[i + 1].line, "fold");
                        i = j;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

fn scan_panic(view: &FileView<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    let code = &view.code;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if let Some(name) = t.kind.ident() {
            match name {
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if code.get(i + 1).is_some_and(|t| t.kind.is_punct('!')) =>
                {
                    out.push(Diagnostic {
                        file: view.path.to_string(),
                        line: t.line,
                        rule: Rule::PanicSurface,
                        message: format!(
                            "`{name}!` in a library hot path; return an error or \
                             annotate why this is unreachable"
                        ),
                    });
                }
                "unwrap" | "expect"
                    if i > 0
                        && code[i - 1].kind.is_punct('.')
                        && code.get(i + 1).is_some_and(|t| t.kind.is_punct('('))
                        && !receiver_is_allowed(code, i - 1, &cfg.panic_allowed_receivers) =>
                {
                    out.push(Diagnostic {
                        file: view.path.to_string(),
                        line: t.line,
                        rule: Rule::PanicSurface,
                        message: format!(
                            "`.{name}()` in a library hot path; propagate the error \
                             or annotate the invariant that makes this infallible"
                        ),
                    });
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// For `recv().unwrap()`-style chains: walk left from the `.` before
/// `unwrap`/`expect`; if the receiver is a call whose callee is an allowed
/// method (`lock`, `wait`, `join`, …), the unwrap is conventional panic
/// propagation (lock poisoning) and not flagged.
fn receiver_is_allowed(code: &[Tok], dot: usize, allowed: &[String]) -> bool {
    if dot == 0 || !code[dot - 1].kind.is_punct(')') {
        return false;
    }
    // Match the `)` back to its `(`.
    let mut depth = 1i32;
    let mut i = dot - 1;
    while i > 0 && depth > 0 {
        i -= 1;
        if code[i].kind.is_punct(')') {
            depth += 1;
        } else if code[i].kind.is_punct('(') {
            depth -= 1;
        }
    }
    i > 0 && matches!(code[i - 1].kind.ident(), Some(m) if allowed.iter().any(|a| a == m))
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint a set of `(workspace-relative path, source)` pairs. Pure — this is
/// the entry point fixture tests use to lint virtual files under arbitrary
/// paths.
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    lint_sources_full(sources, cfg).0
}

/// As [`lint_sources`], also returning the workspace unsafe inventory.
pub fn lint_sources_full(
    sources: &[(String, String)],
    cfg: &Config,
) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
    // Pass 1: global hash-typed symbol table.
    let mut symbols = BTreeSet::new();
    let views: Vec<FileView<'_>> = sources
        .iter()
        .map(|(path, src)| FileView::new(path, src))
        .collect();
    for v in &views {
        collect_hash_symbols(&v.code, &mut symbols);
    }

    // Pass 2: per-file rule scans, then allow/test-region filtering.
    let mut diags = Vec::new();
    let mut inventory = Vec::new();
    for v in &views {
        let mut raw = Vec::new();
        let allows = collect_allows(v, &mut raw);
        let test_file = is_test_path(v.path);

        inventory.extend(scan_unsafe(v, &mut raw));
        if !test_file {
            if in_scope(v.path, &cfg.hash_order_scope) {
                scan_hash_order(v, &symbols, cfg, &mut raw);
            }
            if !in_scope(v.path, &cfg.schedule_blessed) {
                scan_schedule(v, &mut raw);
            }
            if in_scope(v.path, &cfg.float_fold_scope) {
                scan_float_fold(v, &mut raw);
            }
            if in_scope(v.path, &cfg.panic_scope) {
                scan_panic(v, cfg, &mut raw);
            }
        }

        let allowed = |d: &Diagnostic| {
            allows
                .iter()
                .any(|a| a.rules.contains(&d.rule) && a.lines.0 <= d.line && d.line <= a.lines.1)
        };
        for d in raw {
            if d.rule != Rule::UnsafeAudit
                && d.rule != Rule::AllowSyntax
                && v.in_test_region(d.line)
            {
                continue;
            }
            if d.rule != Rule::AllowSyntax && allowed(&d) {
                continue;
            }
            diags.push(d);
        }
    }
    diags.sort();
    diags.dedup();
    (diags, inventory)
}

/// Walk `root` for workspace `.rs` files (skipping `target/`, `vendor/`,
/// `.git/`, and lint fixtures) and lint them.
pub fn lint_workspace(
    root: &Path,
    cfg: &Config,
) -> std::io::Result<(Vec<Diagnostic>, Vec<UnsafeSite>)> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint_sources_full(&sources, cfg))
}

const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON output (hand-rolled — no serde in the workspace)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics (and optionally the unsafe inventory) as a stable
/// machine-readable JSON document.
pub fn to_json(diags: &[Diagnostic], inventory: Option<&[UnsafeSite]>) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str(&format!("  \"count\": {}", diags.len()));
    if let Some(sites) = inventory {
        out.push_str(",\n  \"unsafe_inventory\": [");
        for (i, s) in sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"has_safety_comment\": {}}}",
                json_escape(&s.file),
                s.line,
                s.kind,
                s.has_safety_comment
            ));
        }
        out.push_str(if sites.is_empty() { "]" } else { "\n  ]" });
    }
    out.push_str("\n}\n");
    out
}

/// Group a diagnostic list by rule, for the human summary footer.
pub fn counts_by_rule(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry(d.rule.name()).or_insert(0) += 1;
    }
    map
}
