//! `golint` — a determinism & concurrency auditor for the G-OLA workspace.
//!
//! G-OLA's correctness contract is that every mini-batch publishes the same
//! `BatchReport` regardless of physical schedule (threads=1 ≡ threads=N,
//! bit-identical). Nothing in the type system stops a future change from
//! breaking that with a stray `HashMap` iteration, a NaN-partial float
//! comparison, or a wall-clock read in a publish path, so this crate
//! enforces the contract as code: a static-analysis pass over every
//! workspace `.rs` file with eight deny-by-default rules, running on a
//! lightweight Rust AST ([`ast`]) with type-hint dataflow ([`sem`]).
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `hash-order-leak` | iteration over hash-ordered values in result-producing crates (taint-tracked through bindings, fields and returns) |
//! | `schedule-leak` | `Instant`/`SystemTime`/thread-identity/thread-count reads outside blessed timing & bench modules |
//! | `unsafe-audit` | `unsafe` without a `// SAFETY:` comment within 5 lines above |
//! | `float-fold-ordering` | unchunked float sum/product/fold outside the blessed chunk kernels (float-ness inferred, not just turbofish-spelled) |
//! | `panic-surface` | `unwrap`/`expect`/`panic!`-family in library hot paths, minus a poisoning-lock allowlist |
//! | `float-total-order` | raw `==`/`!=` on float values, `partial_cmp`, float `sort_by` without `total_cmp`, and `derive(PartialEq)` on float-bearing types — outside the modules that implement the total order |
//! | `lossy-cast-audit` | `as` casts between integer types that can truncate (narrowing) or wrap (signed→unsigned) row counts and chunk offsets |
//! | `merge-commutativity` | arithmetic on non-integer per-shard state inside `*merge*` functions — merges must go through the blessed multiset-exact ops (DESIGN.md §3.9) |
//!
//! Every rule has a scoped escape hatch:
//!
//! ```text
//! // golint: allow(hash-order-leak) -- merge is commutative per key
//! ```
//!
//! The allow comment covers its own line(s) plus the statement that follows
//! (to the next `;` or `{` at depth 0, capped at 12 lines), and the
//! `-- reason` is mandatory — a reasonless allow is itself a
//! diagnostic (`allow-syntax`), as is an unknown rule name.
//!
//! The analysis is hint-based, not a type checker: pass 1 parses every file
//! and builds workspace-global tables (field name → class, fn name → return
//! class, float-bearing type names); pass 2 walks each function with a
//! lexically scoped environment, classifying values as float / int / hash /
//! unknown and flagging rule-specific uses. Each rule decides which way
//! unknown errs — see [`sem`]. False positives are silenced with a reasoned
//! allow comment; that reason is the documentation reviewers actually want.

pub mod ast;
pub mod lexer;
pub mod sem;

use lexer::{Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules. `AllowSyntax` is internal: it fires on malformed
/// `golint: allow` comments and cannot itself be allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    HashOrderLeak,
    ScheduleLeak,
    UnsafeAudit,
    FloatFoldOrdering,
    PanicSurface,
    FloatTotalOrder,
    LossyCastAudit,
    MergeCommutativity,
    AllowSyntax,
}

impl Rule {
    pub const ALL: [Rule; 8] = [
        Rule::HashOrderLeak,
        Rule::ScheduleLeak,
        Rule::UnsafeAudit,
        Rule::FloatFoldOrdering,
        Rule::PanicSurface,
        Rule::FloatTotalOrder,
        Rule::LossyCastAudit,
        Rule::MergeCommutativity,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrderLeak => "hash-order-leak",
            Rule::ScheduleLeak => "schedule-leak",
            Rule::UnsafeAudit => "unsafe-audit",
            Rule::FloatFoldOrdering => "float-fold-ordering",
            Rule::PanicSurface => "panic-surface",
            Rule::FloatTotalOrder => "float-total-order",
            Rule::LossyCastAudit => "lossy-cast-audit",
            Rule::MergeCommutativity => "merge-commutativity",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence, for the `--unsafe-inventory` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// `block`, `fn`, `impl`, `trait`, or `other`.
    pub kind: &'static str,
    pub has_safety_comment: bool,
}

/// Per-rule path policy. All paths are workspace-relative with `/`
/// separators; a scope entry matches any file whose path starts with it.
#[derive(Debug, Clone)]
pub struct Config {
    /// `hash-order-leak` fires only under these prefixes (result-producing
    /// crates whose iteration order can reach a `BatchReport`).
    pub hash_order_scope: Vec<String>,
    /// `schedule-leak` fires everywhere EXCEPT these prefixes (blessed
    /// timing and benchmark code, where wall-clock reads are the point).
    pub schedule_blessed: Vec<String>,
    /// `float-fold-ordering` fires only under these prefixes.
    pub float_fold_scope: Vec<String>,
    /// `panic-surface` fires only under these prefixes (library hot paths).
    pub panic_scope: Vec<String>,
    /// Receiver methods whose `unwrap`/`expect` is allowed without an
    /// annotation: lock poisoning and thread joins, where propagating the
    /// panic is the correct and conventional response.
    pub panic_allowed_receivers: Vec<String>,
    /// Functions that consume a hash map and erase its iteration order
    /// (sorting sinks). A `for`-loop whose iterated expression routes
    /// through one of these is not an order leak.
    pub hash_order_sinks: Vec<String>,
    /// `float-total-order` fires only under these prefixes.
    pub float_total_scope: Vec<String>,
    /// `lossy-cast-audit` fires only under these prefixes.
    pub lossy_cast_scope: Vec<String>,
    /// `merge-commutativity` fires only under these prefixes, and only in
    /// functions whose name contains one of `merge_fn_markers`.
    pub merge_scope: Vec<String>,
    /// Function-name substrings that mark a per-shard merge path.
    pub merge_fn_markers: Vec<String>,
    /// Files that *implement* the float total order and the exact
    /// accumulators (`Value::total_cmp`, `ExactSum`): exempt from
    /// `float-total-order` and `merge-commutativity`, because raw IEEE
    /// comparisons there are the definition the rules point everyone at.
    pub float_blessed: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            hash_order_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
            ]),
            schedule_blessed: s(&[
                "crates/bench/",
                "crates/common/src/timing.rs",
                // The observability clock: the one sanctioned absolute-time
                // read (export timestamps only, never fed back into results).
                "crates/obs/src/clock.rs",
            ]),
            float_fold_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
                "crates/common/src",
            ]),
            panic_scope: s(&[
                "crates/core/src/executor.rs",
                "crates/core/src/pool.rs",
                // The multi-tenant scheduler and HTTP front end: a panic
                // here takes down every tenant, not one query.
                "crates/core/src/sched",
                "crates/server/src",
                "crates/engine/src",
                // The durability layer: a panic mid-seal can orphan a
                // segment file or tear a manifest append, and the growing
                // partitioner runs inside every streaming query.
                "crates/storage/src/segment.rs",
                "crates/storage/src/stream.rs",
                "crates/storage/src/growing.rs",
                // Self-hosting: the lint library must hold itself to the
                // no-panic bar (the CLI may exit, the library may not).
                "crates/xlint/src/lib.rs",
                "crates/xlint/src/ast.rs",
                "crates/xlint/src/sem.rs",
                "crates/xlint/src/lexer.rs",
            ]),
            panic_allowed_receivers: s(&["lock", "read", "write", "wait", "join", "recv"]),
            hash_order_sinks: s(&["sorted_entries", "sorted_into_entries"]),
            float_total_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
                "crates/common/src",
                "crates/expr/src",
                "crates/storage/src",
            ]),
            lossy_cast_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
                "crates/common/src",
                "crates/expr/src",
                "crates/storage/src",
                "crates/server/src",
                "crates/xlint/src",
            ]),
            merge_scope: s(&[
                "crates/core/src",
                "crates/engine/src",
                "crates/agg/src",
                "crates/bootstrap/src",
                "crates/common/src",
            ]),
            merge_fn_markers: s(&["merge"]),
            float_blessed: s(&["crates/common/src/fsum.rs", "crates/common/src/value.rs"]),
        }
    }
}

fn in_scope(path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p.as_str()))
}

/// Integration-test and fixture sources: exempt from everything except the
/// unsafe audit (tests may iterate hash maps and unwrap freely; they may
/// not skip safety comments).
fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

const ORDER_SENSITIVE_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

// ---------------------------------------------------------------------------
// Per-file token view
// ---------------------------------------------------------------------------

struct FileView<'a> {
    path: &'a str,
    /// Non-comment tokens only — lexical scanning happens here.
    code: Vec<Tok>,
    /// The parsed AST — structural rules run on this.
    ast: ast::SourceFile,
    /// `(start_line, end_line, text)` of every comment.
    comments: Vec<(u32, u32, String)>,
    /// Inclusive line ranges of `#[cfg(test)]`-guarded items.
    test_regions: Vec<(u32, u32)>,
}

impl<'a> FileView<'a> {
    fn new(path: &'a str, src: &str) -> FileView<'a> {
        let mut code = Vec::new();
        let mut comments = Vec::new();
        for t in lexer::tokenize(src) {
            match t.kind {
                TokKind::Comment { text, end_line } => comments.push((t.line, end_line, text)),
                _ => code.push(t),
            }
        }
        let test_regions = find_test_regions(&code);
        let ast = ast::parse(&code);
        FileView {
            path,
            code,
            ast,
            comments,
            test_regions,
        }
    }

    fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Last line of the statement (or item header) that starts on the first
    /// code line after `after`: scans to the first `;` or `{` at depth 0,
    /// capped at 12 lines. This is the span an allow comment covers — the
    /// next statement, not the block it may open.
    fn next_statement_end(&self, after: u32) -> Option<u32> {
        let start = self.code.iter().position(|t| t.line > after)?;
        let first_line = self.code[start].line;
        let mut depth = 0i32;
        let mut last_line = first_line;
        for t in &self.code[start..] {
            if t.line > first_line + 12 {
                break;
            }
            last_line = t.line;
            match &t.kind {
                k if k.is_punct('(') || k.is_punct('[') => depth += 1,
                k if k.is_punct(')') || k.is_punct(']') => depth -= 1,
                k if depth <= 0 && (k.is_punct(';') || k.is_punct('{') || k.is_punct('}')) => {
                    break;
                }
                _ => {}
            }
        }
        Some(last_line)
    }
}

/// Find `#[cfg(test)] <item> { … }` regions by matching the brace that
/// follows the attribute. Good enough for the workspace convention of
/// `#[cfg(test)] mod tests { … }`.
fn find_test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].kind.is_punct('#') && code[i + 1].kind.is_punct('[') {
            // Collect the attribute body up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < code.len() && depth > 0 {
                match &code[j].kind {
                    k if k.is_punct('[') => depth += 1,
                    k if k.is_punct(']') => depth -= 1,
                    k if k.is_ident("cfg") => saw_cfg = true,
                    k if k.is_ident("test") => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                // Find the item's opening brace and match it.
                let mut k = j;
                while k < code.len() && !code[k].kind.is_punct('{') {
                    // A `;` first means `#[cfg(test)] mod foo;` — no body.
                    if code[k].kind.is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                if k < code.len() && code[k].kind.is_punct('{') {
                    let start_line = code[i].line;
                    let mut b = 1i32;
                    let mut m = k + 1;
                    while m < code.len() && b > 0 {
                        if code[m].kind.is_punct('{') {
                            b += 1;
                        } else if code[m].kind.is_punct('}') {
                            b -= 1;
                        }
                        m += 1;
                    }
                    let end_line = code.get(m.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    regions.push((start_line, end_line));
                    i = m;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    regions
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

struct Allow {
    rules: Vec<Rule>,
    /// Lines this allow covers (its own lines + first following code line).
    lines: (u32, u32),
}

/// Parse `// golint: allow(rule, …) -- reason` comments. Malformed allows
/// (missing reason, unknown rule) become `allow-syntax` diagnostics and
/// suppress nothing.
fn collect_allows(view: &FileView<'_>, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (start, end, text) in &view.comments {
        // Only comments that LEAD with the marker are directives; prose
        // that mentions `golint: allow(...)` mid-sentence is not.
        let stripped = text.trim_start_matches(['/', '*', '!', ' ', '\t']);
        let Some(rest) = stripped.strip_prefix("golint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: view.path.to_string(),
                line: *start,
                rule: Rule::AllowSyntax,
                message: "golint comment is not of the form `golint: allow(rule, …) -- reason`"
                    .to_string(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (list, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some(x) => x,
            None => {
                diags.push(Diagnostic {
                    file: view.path.to_string(),
                    line: *start,
                    rule: Rule::AllowSyntax,
                    message: "allow comment missing `(rule, …)` list".to_string(),
                });
                continue;
            }
        };
        let reason = tail.split_once("--").map(|(_, r)| r.trim()).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: view.path.to_string(),
                line: *start,
                rule: Rule::AllowSyntax,
                message: "allow comment missing a `-- reason`; say why the pattern is sound"
                    .to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        file: view.path.to_string(),
                        line: *start,
                        rule: Rule::AllowSyntax,
                        message: format!("unknown rule `{name}` in allow comment"),
                    });
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        let covered_end = view.next_statement_end(*end).unwrap_or(*end);
        allows.push(Allow {
            rules,
            lines: (*start, covered_end),
        });
    }
    allows
}

// ---------------------------------------------------------------------------
// Lexical rule scanners (schedule-leak, unsafe-audit)
//
// These two rules deliberately stay token-based: `schedule-leak` must see
// `use` imports and type positions the AST subset drops, and
// `unsafe-audit` is about comment adjacency, which no AST can express.
// ---------------------------------------------------------------------------

fn scan_schedule(view: &FileView<'_>, out: &mut Vec<Diagnostic>) {
    let code = &view.code;
    for (i, t) in code.iter().enumerate() {
        let Some(name) = t.kind.ident() else { continue };
        let msg = match name {
            "Instant" => {
                "wall-clock `Instant` outside blessed timing modules; \
                          use `gola_common::timing::Stopwatch`"
            }
            "SystemTime" => "`SystemTime` read leaks wall-clock state into the schedule",
            "available_parallelism" | "num_cpus" => {
                "thread-count read outside bench code makes behaviour host-dependent"
            }
            "thread" => {
                let is_current = code.get(i + 1).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 2).is_some_and(|t| t.kind.is_punct(':'))
                    && code.get(i + 3).is_some_and(|t| t.kind.is_ident("current"));
                if !is_current {
                    continue;
                }
                "`thread::current()` identity read leaks the physical schedule"
            }
            _ => continue,
        };
        out.push(Diagnostic {
            file: view.path.to_string(),
            line: t.line,
            rule: Rule::ScheduleLeak,
            message: msg.to_string(),
        });
    }
}

/// Scan for `unsafe` tokens; returns the inventory and appends diagnostics
/// for sites lacking a `// SAFETY:` comment within 5 lines above.
fn scan_unsafe(view: &FileView<'_>, out: &mut Vec<Diagnostic>) -> Vec<UnsafeSite> {
    let code = &view.code;
    let mut sites = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if !t.kind.is_ident("unsafe") {
            continue;
        }
        let kind = match code.get(i + 1).map(|t| &t.kind) {
            Some(k) if k.is_punct('{') => "block",
            Some(k) if k.is_ident("fn") => "fn",
            Some(k) if k.is_ident("impl") => "impl",
            Some(k) if k.is_ident("trait") => "trait",
            _ => "other",
        };
        let has_safety = view
            .comments
            .iter()
            .any(|(_, end, text)| text.contains("SAFETY:") && *end <= t.line && t.line - *end <= 5);
        if !has_safety {
            out.push(Diagnostic {
                file: view.path.to_string(),
                line: t.line,
                rule: Rule::UnsafeAudit,
                message: format!(
                    "`unsafe` {kind} without a `// SAFETY:` comment within 5 lines above"
                ),
            });
        }
        sites.push(UnsafeSite {
            file: view.path.to_string(),
            line: t.line,
            kind,
            has_safety_comment: has_safety,
        });
    }
    sites
}

// ---------------------------------------------------------------------------
// AST rule scanners
// ---------------------------------------------------------------------------

/// Which AST-based rules are active for one file (scope already resolved).
struct AstRules {
    hash: bool,
    float_fold: bool,
    panic: bool,
    float_total: bool,
    lossy_cast: bool,
    merge: bool,
}

impl AstRules {
    fn any(&self) -> bool {
        self.hash
            || self.float_fold
            || self.panic
            || self.float_total
            || self.lossy_cast
            || self.merge
    }
}

/// A short human name for an integer class in cast messages. `usize`/`isize`
/// report as their 64-bit equivalents (documented policy: 64-bit targets).
fn int_name(bits: u8, signed: bool) -> String {
    format!("{}{bits}", if signed { "i" } else { "u" })
}

/// Strip `&`/`*` so `for x in &m` sees `m`.
fn strip_ref(e: &ast::Expr) -> &ast::Expr {
    match e {
        ast::Expr::Unary {
            op: '&' | '*',
            expr,
            ..
        } => strip_ref(expr),
        _ => e,
    }
}

/// A display name for the value an expression denotes, for messages.
fn expr_name(e: &ast::Expr) -> String {
    match e {
        ast::Expr::Path { segs, .. } => segs.last().cloned().unwrap_or_else(|| "map".into()),
        ast::Expr::Field { name, .. } => name.clone(),
        ast::Expr::Unary { expr, .. } => expr_name(expr),
        ast::Expr::MethodCall { recv, .. } => expr_name(recv),
        ast::Expr::Call { callee, .. } => expr_name(callee),
        ast::Expr::Index { base, .. } => expr_name(base),
        _ => "map".to_string(),
    }
}

/// Is this a literal (possibly negated)? Literal comparisons like
/// `x == 0.0` are exempt from `float-total-order`: they are exact-value
/// guards, and NaN correctly compares unequal to every literal.
fn is_num_literal(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::Num { .. } => true,
        ast::Expr::Unary { op: '-', expr, .. } => matches!(expr.as_ref(), ast::Expr::Num { .. }),
        _ => false,
    }
}

/// Does any argument mention `total_cmp` (closure body or fn path)? Used to
/// bless `sort_by(|a, b| a.total_cmp(b))` and `sort_by(f64::total_cmp)`.
fn args_mention_total_cmp(args: &[ast::Expr]) -> bool {
    let mut found = false;
    for a in args {
        ast::walk_expr(a, &mut |e| match e {
            ast::Expr::MethodCall { method, .. } if method == "total_cmp" => found = true,
            ast::Expr::Path { segs, .. } if segs.iter().any(|s| s == "total_cmp") => found = true,
            _ => {}
        });
    }
    found
}

/// `lock().unwrap()`-style receivers where propagating the panic is the
/// conventional response (lock poisoning, thread joins).
fn recv_is_allowed(recv: &ast::Expr, allowed: &[String]) -> bool {
    match recv {
        ast::Expr::MethodCall { method, .. } => allowed.iter().any(|a| a == method),
        ast::Expr::Call { callee, .. } => matches!(
            callee.as_ref(),
            ast::Expr::Path { segs, .. }
                if segs.last().is_some_and(|s| allowed.iter().any(|a| a == s))
        ),
        _ => false,
    }
}

/// Can this operand participate in a merge without the result depending on
/// merge-tree shape? Integer and bool arithmetic is exact (no rounding), so
/// any association order gives the same bits.
fn merge_exact(c: &sem::Class) -> bool {
    c.is_int() || matches!(c, sem::Class::Bool)
}

fn scan_ast(
    view: &FileView<'_>,
    g: &sem::Globals,
    cfg: &Config,
    on: &AstRules,
    out: &mut Vec<Diagnostic>,
) {
    if !on.any() {
        return;
    }
    sem::for_each_item(&view.ast, &mut |item, _| match item {
        ast::Item::Struct(s) if on.float_total => {
            check_float_derive(view, g, &s.attrs, &s.name, s.line, out);
        }
        ast::Item::Enum(e) if on.float_total => {
            check_float_derive(view, g, &e.attrs, &e.name, e.line, out);
        }
        ast::Item::Fn(f) => {
            let merge_fn = on.merge
                && cfg
                    .merge_fn_markers
                    .iter()
                    .any(|m| f.name.contains(m.as_str()));
            sem::walk_fn(f, g, &mut |e, env| {
                scan_expr(view, g, cfg, on, merge_fn, e, env, out);
            });
        }
        _ => {}
    });
}

/// `float-total-order` item check: deriving `PartialEq`/`PartialOrd`/`Ord`
/// on a float-bearing type inherits IEEE partial comparison — the exact bug
/// class behind `eq_tri` disagreeing with itself under NaN.
fn check_float_derive(
    view: &FileView<'_>,
    g: &sem::Globals,
    attrs: &ast::Attrs,
    name: &str,
    line: u32,
    out: &mut Vec<Diagnostic>,
) {
    let bad: Vec<&str> = attrs
        .derives
        .iter()
        .map(|s| s.as_str())
        .filter(|d| matches!(*d, "PartialEq" | "PartialOrd" | "Ord"))
        .collect();
    if !bad.is_empty() && g.float_bearing.contains(name) {
        out.push(Diagnostic {
            file: view.path.to_string(),
            line,
            rule: Rule::FloatTotalOrder,
            message: format!(
                "derive({}) on float-bearing `{name}` inherits IEEE partial comparison \
                 (NaN-unsound); implement the total order via `total_cmp` like `Value`",
                bad.join(", ")
            ),
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_expr(
    view: &FileView<'_>,
    g: &sem::Globals,
    cfg: &Config,
    on: &AstRules,
    merge_fn: bool,
    e: &ast::Expr,
    env: &sem::Env,
    out: &mut Vec<Diagnostic>,
) {
    use ast::Expr;
    let push = |out: &mut Vec<Diagnostic>, line: u32, rule: Rule, message: String| {
        out.push(Diagnostic {
            file: view.path.to_string(),
            line,
            rule,
            message,
        });
    };
    match e {
        Expr::MethodCall {
            recv,
            method,
            targs,
            args,
            line,
        } => {
            let m = method.as_str();
            if on.hash && ORDER_SENSITIVE_METHODS.contains(&m) && sem::infer(recv, env, g).is_hash()
            {
                push(
                    out,
                    *line,
                    Rule::HashOrderLeak,
                    format!(
                        "iteration over hash-ordered `{}` in a result-producing crate; \
                         sort entries (or use a BTreeMap) before results can reach a BatchReport",
                        expr_name(recv)
                    ),
                );
            }
            if on.float_fold {
                let float_acc = match m {
                    "sum" | "product" => match targs.first() {
                        Some(t) => sem::classify_ty(t).is_float(),
                        None => sem::infer(recv, env, g).is_float(),
                    },
                    "fold" => args
                        .first()
                        .is_some_and(|a| sem::infer(a, env, g).is_float()),
                    _ => false,
                };
                if float_acc {
                    push(
                        out,
                        *line,
                        Rule::FloatFoldOrdering,
                        format!(
                            "unchunked float {m}: accumulation order must be fixed \
                             (1024-tuple chunk kernel) or proven order-insensitive"
                        ),
                    );
                }
            }
            if on.panic
                && (m == "unwrap" || m == "expect")
                && !recv_is_allowed(recv, &cfg.panic_allowed_receivers)
            {
                push(
                    out,
                    *line,
                    Rule::PanicSurface,
                    format!(
                        "`.{m}()` in a library hot path; propagate the error \
                         or annotate the invariant that makes this infallible"
                    ),
                );
            }
            if on.float_total {
                if m == "partial_cmp" && sem::infer(recv, env, g).is_float() {
                    push(
                        out,
                        *line,
                        Rule::FloatTotalOrder,
                        "`partial_cmp` on floats returns None on NaN and poisons \
                         downstream ordering; use `total_cmp`"
                            .to_string(),
                    );
                }
                if matches!(
                    m,
                    "sort_by" | "sort_unstable_by" | "min_by" | "max_by" | "binary_search_by"
                ) && sem::infer(recv, env, g).is_float()
                    && !args_mention_total_cmp(args)
                {
                    push(
                        out,
                        *line,
                        Rule::FloatTotalOrder,
                        format!(
                            "float `{m}` comparator without `total_cmp`; IEEE comparison \
                             is partial under NaN — order floats with the total order"
                        ),
                    );
                }
            }
        }
        Expr::Macro { name, line, .. } if on.panic => {
            if matches!(
                name.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) {
                push(
                    out,
                    *line,
                    Rule::PanicSurface,
                    format!(
                        "`{name}!` in a library hot path; return an error or \
                         annotate why this is unreachable"
                    ),
                );
            }
        }
        Expr::For { iter, .. } if on.hash => {
            // `.iter()`/`.keys()` on a hash value is already flagged at the
            // method call; flag only whole-value consumption here
            // (`for (k, v) in shard.groups`), and skip loops routed through
            // a sorting sink.
            let base = strip_ref(iter);
            let already = matches!(base, Expr::MethodCall { method, .. }
                if ORDER_SENSITIVE_METHODS.contains(&method.as_str()));
            let sunk = matches!(base, Expr::Call { callee, .. }
                if matches!(callee.as_ref(), Expr::Path { segs, .. }
                    if segs.last().is_some_and(|s| cfg.hash_order_sinks.contains(s))));
            if !already && !sunk && sem::infer(base, env, g).is_hash() {
                push(
                    out,
                    base.line(),
                    Rule::HashOrderLeak,
                    format!(
                        "iteration over hash-ordered `{}` in a result-producing crate; \
                         sort entries (or use a BTreeMap) before results can reach a BatchReport",
                        expr_name(base)
                    ),
                );
            }
        }
        Expr::Binary { op, lhs, rhs, line } => {
            if on.float_total && op.is_eq() && !is_num_literal(lhs) && !is_num_literal(rhs) {
                let floaty =
                    sem::infer(lhs, env, g).is_float() || sem::infer(rhs, env, g).is_float();
                if floaty {
                    push(
                        out,
                        *line,
                        Rule::FloatTotalOrder,
                        "raw float `==`/`!=` is partial under NaN; compare via `total_cmp` \
                         or against a literal guard"
                            .to_string(),
                    );
                }
            }
            if merge_fn && op.is_arith() {
                let l = sem::infer(lhs, env, g);
                let r = sem::infer(rhs, env, g);
                if !(merge_exact(&l) && merge_exact(&r)) {
                    push(
                        out,
                        *line,
                        Rule::MergeCommutativity,
                        "arithmetic on non-integer state in a merge path; per-shard \
                         merges must use the blessed multiset-exact ops \
                         (ExactSum add, min/max, integer counts — DESIGN.md §3.9)"
                            .to_string(),
                    );
                }
            }
        }
        Expr::Assign {
            op: Some(op),
            lhs,
            rhs,
            line,
        } if merge_fn && op.is_arith() => {
            let l = sem::infer(lhs, env, g);
            let r = sem::infer(rhs, env, g);
            if !(merge_exact(&l) && merge_exact(&r)) {
                push(
                    out,
                    *line,
                    Rule::MergeCommutativity,
                    "compound assignment on non-integer state in a merge path; per-shard \
                     merges must use the blessed multiset-exact ops \
                     (ExactSum add, min/max, integer counts — DESIGN.md §3.9)"
                        .to_string(),
                );
            }
        }
        Expr::Cast { expr, ty, line } if on.lossy_cast => {
            // Pointer casts reinterpret addresses, not values.
            if matches!(ty, ast::Ty::Ref(_)) {
                return;
            }
            let sem::Class::Int {
                bits: tb,
                signed: ts,
            } = sem::classify_ty(ty)
            else {
                return;
            };
            // A literal that provably fits its target is exact by
            // construction (`0u64 as u32`, `1 as u8`).
            if let Expr::Num { text, .. } = strip_ref(expr) {
                if let Some(v) = sem::num_literal_value(text) {
                    if !sem::literal_fits(v, tb, ts) {
                        push(
                            out,
                            *line,
                            Rule::LossyCastAudit,
                            format!(
                                "literal `{text}` does not fit `{}`; the cast wraps at \
                                 compile-visible constant value",
                                int_name(tb, ts)
                            ),
                        );
                    }
                    return;
                }
            }
            if let sem::Class::Int {
                bits: sb,
                signed: ss,
            } = sem::infer(expr, env, g)
            {
                let narrowing = tb < sb;
                let sign_wrap = ss && !ts;
                if narrowing || sign_wrap {
                    let how = if narrowing {
                        "silently truncates"
                    } else {
                        "wraps negative values"
                    };
                    push(
                        out,
                        *line,
                        Rule::LossyCastAudit,
                        format!(
                            "`as` cast {}→{} {how}; row counts and chunk offsets must \
                             use a checked conversion (`try_from` + explicit failure path)",
                            int_name(sb, ss),
                            int_name(tb, ts)
                        ),
                    );
                }
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Lint a set of `(workspace-relative path, source)` pairs. Pure — this is
/// the entry point fixture tests use to lint virtual files under arbitrary
/// paths.
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    lint_sources_full(sources, cfg).0
}

/// As [`lint_sources`], also returning the workspace unsafe inventory.
pub fn lint_sources_full(
    sources: &[(String, String)],
    cfg: &Config,
) -> (Vec<Diagnostic>, Vec<UnsafeSite>) {
    // Pass 1: parse every file and build the workspace-global tables
    // (field classes, fn return classes, float-bearing type names).
    let views: Vec<FileView<'_>> = sources
        .iter()
        .map(|(path, src)| FileView::new(path, src))
        .collect();
    let asts: Vec<&ast::SourceFile> = views.iter().map(|v| &v.ast).collect();
    let globals = sem::build_globals(&asts);

    // Pass 2: per-file rule scans, then allow/test-region filtering.
    let mut diags = Vec::new();
    let mut inventory = Vec::new();
    for v in &views {
        let mut raw = Vec::new();
        let allows = collect_allows(v, &mut raw);
        let test_file = is_test_path(v.path);

        inventory.extend(scan_unsafe(v, &mut raw));
        if !test_file {
            if !in_scope(v.path, &cfg.schedule_blessed) {
                scan_schedule(v, &mut raw);
            }
            let blessed = in_scope(v.path, &cfg.float_blessed);
            let on = AstRules {
                hash: in_scope(v.path, &cfg.hash_order_scope),
                float_fold: in_scope(v.path, &cfg.float_fold_scope),
                panic: in_scope(v.path, &cfg.panic_scope),
                float_total: in_scope(v.path, &cfg.float_total_scope) && !blessed,
                lossy_cast: in_scope(v.path, &cfg.lossy_cast_scope),
                merge: in_scope(v.path, &cfg.merge_scope) && !blessed,
            };
            scan_ast(v, &globals, cfg, &on, &mut raw);
        }

        let allowed = |d: &Diagnostic| {
            allows
                .iter()
                .any(|a| a.rules.contains(&d.rule) && a.lines.0 <= d.line && d.line <= a.lines.1)
        };
        for d in raw {
            if d.rule != Rule::UnsafeAudit
                && d.rule != Rule::AllowSyntax
                && v.in_test_region(d.line)
            {
                continue;
            }
            if d.rule != Rule::AllowSyntax && allowed(&d) {
                continue;
            }
            diags.push(d);
        }
    }
    diags.sort();
    diags.dedup();
    (diags, inventory)
}

/// Walk `root` for workspace `.rs` files (skipping `target/`, `vendor/`,
/// `.git/`, and lint fixtures) and lint them.
pub fn lint_workspace(
    root: &Path,
    cfg: &Config,
) -> std::io::Result<(Vec<Diagnostic>, Vec<UnsafeSite>)> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(lint_sources_full(&sources, cfg))
}

const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON output (hand-rolled — no serde in the workspace)
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--json` document schema version. Bump when the shape changes;
/// `scripts/golint_schema.json` describes (and CI validates) this version.
pub const JSON_SCHEMA_VERSION: u32 = 2;

/// Render diagnostics (and optionally the unsafe inventory) as a stable
/// machine-readable JSON document.
pub fn to_json(diags: &[Diagnostic], inventory: Option<&[UnsafeSite]>) -> String {
    let mut out = format!("{{\n  \"schema_version\": {JSON_SCHEMA_VERSION},\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str(&format!("  \"count\": {}", diags.len()));
    if let Some(sites) = inventory {
        out.push_str(",\n  \"unsafe_inventory\": [");
        for (i, s) in sites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"has_safety_comment\": {}}}",
                json_escape(&s.file),
                s.line,
                s.kind,
                s.has_safety_comment
            ));
        }
        out.push_str(if sites.is_empty() { "]" } else { "\n  ]" });
    }
    out.push_str("\n}\n");
    out
}

/// Group a diagnostic list by rule, for the human summary footer.
pub fn counts_by_rule(diags: &[Diagnostic]) -> BTreeMap<&'static str, usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        *map.entry(d.rule.name()).or_insert(0) += 1;
    }
    map
}
