//! A lightweight Rust AST subset and hand-written recursive-descent parser.
//!
//! `golint`'s first generation matched token patterns; this parser gives the
//! rules real structure to stand on: items with attributes (derives,
//! `cfg(test)`), function signatures with parameter/return types, `let`
//! bindings, and a full expression tree (method calls with turbofish, `as`
//! casts, comparisons, closures, loops, match arms with guards). It is
//! built directly on [`crate::lexer`] — zero dependencies, no `syn`.
//!
//! Design rules:
//!
//! * **Never fail.** Static analysis must degrade gracefully: anything the
//!   parser half-understands becomes [`Expr::Unknown`] / [`Item::Other`]
//!   and scanning continues. Every parse loop provably consumes at least
//!   one token.
//! * **Lossy where lints don't care.** Patterns reduce to their bound
//!   identifier names; generic parameters, lifetimes and `where` clauses
//!   are skipped; trait objects collapse to their head path.
//! * **`>>` is split by context.** The lexer emits single-character puncts
//!   with jointness flags ([`Tok::joint`]); in type position every `>`
//!   closes a generic, in expression position a joint `>` `>` pair is the
//!   shift operator (and `>=`, `==`, `&&`, … reassemble the same way).

use crate::lexer::{Tok, TokKind};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// A parsed source file: top-level items plus every `unsafe` occurrence
/// (recorded during the parse, since `unsafe` may appear at item or
/// expression level).
#[derive(Debug, Default)]
pub struct SourceFile {
    pub items: Vec<Item>,
}

/// Attributes that matter to the lints.
#[derive(Debug, Clone, Default)]
pub struct Attrs {
    /// Trait names listed in `#[derive(…)]`.
    pub derives: Vec<String>,
    /// `true` for `#[cfg(test)]` (any attribute mentioning both).
    pub cfg_test: bool,
}

#[derive(Debug)]
pub enum Item {
    Fn(FnItem),
    Struct(StructItem),
    Enum(EnumItem),
    /// `impl` blocks and `trait` definitions: a type name plus nested items.
    Impl(ImplBlock),
    Mod(ModItem),
    Const(ConstItem),
    /// Anything else (`use`, `type`, `macro_rules!`, `extern` blocks, …).
    Other,
}

#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub params: Vec<Param>,
    pub ret: Option<Ty>,
    pub body: Option<Block>,
    pub line: u32,
}

/// One function parameter: the bound pattern identifiers and the declared
/// type. A simple `name: Ty` has one identifier; destructuring patterns
/// carry all their bindings (typed by position when the type is a tuple).
#[derive(Debug)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: Ty,
}

#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub attrs: Attrs,
    /// Named fields (`name: Ty`); tuple-struct fields get empty names.
    pub fields: Vec<(String, Ty)>,
    pub line: u32,
}

#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub attrs: Attrs,
    /// All payload types across variants, with field names where present.
    pub fields: Vec<(String, Ty)>,
    pub line: u32,
}

#[derive(Debug)]
pub struct ImplBlock {
    pub self_ty: String,
    pub items: Vec<Item>,
}

#[derive(Debug)]
pub struct ModItem {
    pub name: String,
    pub cfg_test: bool,
    pub items: Vec<Item>,
}

#[derive(Debug)]
pub struct ConstItem {
    pub name: String,
    pub ty: Ty,
    pub init: Option<Expr>,
}

/// A type, reduced to what hint inference needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Ty {
    /// Path type: last segment plus generic arguments (`HashMap<K, V>`,
    /// `f64`, `Option<f64>`).
    Path {
        name: String,
        args: Vec<Ty>,
    },
    Ref(Box<Ty>),
    Slice(Box<Ty>),
    Tuple(Vec<Ty>),
    Unknown,
}

impl Ty {
    pub fn path(name: &str) -> Ty {
        Ty::Path {
            name: name.to_string(),
            args: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

#[derive(Debug)]
pub enum Stmt {
    Let(LetStmt),
    Expr(Expr),
    Item(Item),
}

#[derive(Debug)]
pub struct LetStmt {
    /// Identifiers bound by the pattern.
    pub names: Vec<String>,
    pub ty: Option<Ty>,
    pub init: Option<Expr>,
    /// `let … else { … }` diverging block.
    pub else_block: Option<Block>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    pub fn is_eq(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne)
    }

    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }
}

#[derive(Debug)]
pub enum Expr {
    /// Numeric literal, verbatim (`0.5f64`, `1_000`).
    Num {
        text: String,
        line: u32,
    },
    /// String/char/byte literal (payload dropped by the lexer).
    Lit {
        line: u32,
    },
    Bool {
        line: u32,
    },
    /// Path expression: all segments (`gola_common::timing::Stopwatch` →
    /// `["gola_common", "timing", "Stopwatch"]`).
    Path {
        segs: Vec<String>,
        line: u32,
    },
    Unary {
        op: char,
        expr: Box<Expr>,
        line: u32,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    /// `lhs = rhs` and compound assignment (`op` set for `+=` etc.).
    Assign {
        op: Option<BinOp>,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Cast {
        expr: Box<Expr>,
        ty: Ty,
        line: u32,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    MethodCall {
        recv: Box<Expr>,
        method: String,
        /// Turbofish type arguments (`.sum::<f64>()`).
        targs: Vec<Ty>,
        args: Vec<Expr>,
        line: u32,
    },
    Field {
        base: Box<Expr>,
        name: String,
        line: u32,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    Closure {
        /// Per-parameter bound names and optional annotations.
        params: Vec<(Vec<String>, Option<Ty>)>,
        body: Box<Expr>,
        line: u32,
    },
    If {
        /// For `if let pat = scrut`, the scrutinee; `binds` carries the
        /// pattern's identifiers (scoped to the then-block).
        cond: Box<Expr>,
        binds: Vec<String>,
        then: Block,
        els: Option<Box<Expr>>,
        line: u32,
    },
    Match {
        scrut: Box<Expr>,
        arms: Vec<Arm>,
        line: u32,
    },
    For {
        binds: Vec<String>,
        iter: Box<Expr>,
        body: Block,
        line: u32,
    },
    While {
        cond: Box<Expr>,
        binds: Vec<String>,
        body: Block,
        line: u32,
    },
    Loop {
        body: Block,
        line: u32,
    },
    Block {
        block: Block,
        line: u32,
    },
    Macro {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
    Tuple {
        items: Vec<Expr>,
        line: u32,
    },
    Array {
        items: Vec<Expr>,
        line: u32,
    },
    /// Struct literal `Name { field: expr, … }`.
    StructLit {
        name: String,
        fields: Vec<Expr>,
        line: u32,
    },
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
        line: u32,
    },
    Return {
        expr: Option<Box<Expr>>,
        line: u32,
    },
    Unknown {
        line: u32,
    },
}

impl Expr {
    pub fn line(&self) -> u32 {
        match self {
            Expr::Num { line, .. }
            | Expr::Lit { line }
            | Expr::Bool { line }
            | Expr::Path { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::Match { line, .. }
            | Expr::For { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Block { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Range { line, .. }
            | Expr::Return { line, .. }
            | Expr::Unknown { line } => *line,
        }
    }
}

#[derive(Debug)]
pub struct Arm {
    /// Identifiers bound by the arm's pattern.
    pub binds: Vec<String>,
    pub guard: Option<Expr>,
    pub body: Expr,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse the comment-free code token stream of one file.
pub fn parse(code: &[Tok]) -> SourceFile {
    let mut p = Parser { toks: code, i: 0 };
    let mut items = Vec::new();
    while !p.eof() {
        let before = p.i;
        if let Some(item) = p.item() {
            items.push(item);
        }
        if p.i == before {
            p.i += 1; // recovery: always make progress
        }
    }
    SourceFile { items }
}

struct Parser<'a> {
    toks: &'a [Tok],
    i: usize,
}

const PATTERN_KEYWORDS: [&str; 6] = ["mut", "ref", "box", "_", "if", "in"];

impl Parser<'_> {
    // -- cursor ------------------------------------------------------------

    fn eof(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn kind(&self, ahead: usize) -> Option<&TokKind> {
        self.toks.get(self.i + ahead).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.i)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn at_punct(&self, c: char) -> bool {
        self.kind(0).is_some_and(|k| k.is_punct(c))
    }

    /// Two joint punct characters starting at the cursor (`==`, `->`, …).
    fn at_punct2(&self, a: char, b: char) -> bool {
        self.toks
            .get(self.i)
            .is_some_and(|t| t.kind.is_punct(a) && t.joint)
            && self.kind(1).is_some_and(|k| k.is_punct(b))
    }

    fn at_punct3(&self, a: char, b: char, c: char) -> bool {
        self.at_punct2(a, b)
            && self.toks.get(self.i + 1).is_some_and(|t| t.joint)
            && self.kind(2).is_some_and(|k| k.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.kind(0).is_some_and(|k| k.is_ident(s))
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<String> {
        self.kind(0).and_then(|k| k.ident()).map(str::to_string)
    }

    /// Skip tokens until one of `stops` at bracket depth 0, or until the
    /// enclosing bracket closes (depth would go negative). Does not consume
    /// the stop token. `->`/`=>` arrows are skipped as units so their `>`
    /// never miscounts.
    fn skip_until(&mut self, stops: &[char]) {
        let mut depth = 0i32;
        while let Some(k) = self.kind(0) {
            if depth == 0 && stops.iter().any(|&c| k.is_punct(c)) {
                return;
            }
            if (self.at_punct2('-', '>') || self.at_punct2('=', '>')) && !stops.contains(&'>') {
                self.i += 2;
                continue;
            }
            match k {
                k if k.is_punct('(') || k.is_punct('[') || k.is_punct('{') => depth += 1,
                k if k.is_punct(')') || k.is_punct(']') || k.is_punct('}') => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skip one balanced bracket group starting at the cursor (which must
    /// be on `(`, `[`, or `{`). No-op otherwise.
    fn skip_balanced(&mut self) {
        let open = match self.kind(0) {
            Some(k) if k.is_punct('(') => '(',
            Some(k) if k.is_punct('[') => '[',
            Some(k) if k.is_punct('{') => '{',
            _ => return,
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut depth = 0i32;
        while let Some(k) = self.kind(0) {
            if k.is_punct(open) {
                depth += 1;
            } else if k.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skip a generic parameter list starting at `<` (angle depth tracked,
    /// `->` skipped as a unit, other brackets balanced).
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        let mut angle = 0i32;
        let mut other = 0i32;
        while let Some(k) = self.kind(0) {
            if self.at_punct2('-', '>') {
                self.i += 2;
                continue;
            }
            match k {
                k if k.is_punct('<') && other == 0 => angle += 1,
                k if k.is_punct('>') && other == 0 => {
                    angle -= 1;
                    if angle == 0 {
                        self.bump();
                        return;
                    }
                }
                k if k.is_punct('(') || k.is_punct('[') || k.is_punct('{') => other += 1,
                k if k.is_punct(')') || k.is_punct(']') || k.is_punct('}') => {
                    if other == 0 {
                        return; // unbalanced — bail without consuming
                    }
                    other -= 1;
                }
                k if k.is_punct(';') && other == 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    // -- attributes ----------------------------------------------------------

    /// Parse any number of `#[…]` / `#![…]` attributes.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        while self.at_punct('#') {
            let save = self.i;
            self.bump();
            self.eat_punct('!');
            if !self.at_punct('[') {
                self.i = save;
                return out;
            }
            // Scan the balanced body for derive/cfg/test markers.
            let start = self.i;
            self.skip_balanced();
            let body = &self.toks[start..self.i];
            let mut saw_cfg = false;
            let mut saw_test = false;
            let mut derive_at = None;
            for (j, t) in body.iter().enumerate() {
                match t.kind.ident() {
                    Some("cfg") => saw_cfg = true,
                    Some("test") => saw_test = true,
                    Some("derive") => derive_at = Some(j),
                    _ => {}
                }
            }
            if saw_cfg && saw_test {
                out.cfg_test = true;
            }
            if let Some(j) = derive_at {
                for t in &body[j + 1..] {
                    if let Some(name) = t.kind.ident() {
                        out.derives.push(name.to_string());
                    }
                }
            }
        }
        out
    }

    // -- items ---------------------------------------------------------------

    fn item(&mut self) -> Option<Item> {
        let attrs = self.attrs();
        // Visibility: `pub`, `pub(crate)`, `pub(in …)`.
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_balanced();
        }
        // Qualifiers before `fn`.
        let mut is_unsafe_fn = false;
        loop {
            if (self.at_ident("const") && self.kind(1).is_some_and(|k| k.is_ident("fn")))
                || self.at_ident("async")
            {
                self.bump();
            } else if self.at_ident("unsafe")
                && self
                    .kind(1)
                    .is_some_and(|k| k.is_ident("fn") || k.is_ident("impl") || k.is_ident("trait"))
            {
                is_unsafe_fn = true;
                self.bump();
            } else if self.at_ident("extern")
                && self.kind(1).is_some_and(|k| matches!(k, TokKind::Literal))
                && self.kind(2).is_some_and(|k| k.is_ident("fn"))
            {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        let _ = is_unsafe_fn;
        match self.ident_text().as_deref() {
            Some("fn") => {
                self.bump();
                Some(Item::Fn(self.fn_item(attrs)))
            }
            Some("struct") => {
                self.bump();
                Some(Item::Struct(self.struct_item(attrs)))
            }
            Some("enum") => {
                self.bump();
                Some(Item::Enum(self.enum_item(attrs)))
            }
            Some("union") => {
                self.bump();
                Some(Item::Struct(self.struct_item(attrs)))
            }
            Some("impl") => {
                self.bump();
                Some(Item::Impl(self.impl_block()))
            }
            Some("trait") => {
                self.bump();
                // `trait Name<…>: Bounds { items }` — reuse the impl-block
                // machinery with the trait name as the self type.
                let name = self.ident_text().unwrap_or_default();
                if !name.is_empty() {
                    self.bump();
                }
                if self.at_punct('<') {
                    self.skip_generics();
                }
                self.skip_until(&['{', ';']);
                if self.at_punct(';') {
                    self.bump();
                    return Some(Item::Other);
                }
                Some(Item::Impl(ImplBlock {
                    self_ty: name,
                    items: self.brace_items(),
                }))
            }
            Some("mod") => {
                self.bump();
                let name = self.ident_text().unwrap_or_default();
                if !name.is_empty() {
                    self.bump();
                }
                if self.at_punct(';') {
                    self.bump();
                    return Some(Item::Other);
                }
                Some(Item::Mod(ModItem {
                    name,
                    cfg_test: attrs.cfg_test,
                    items: self.brace_items(),
                }))
            }
            Some("const") | Some("static") => {
                self.bump();
                self.eat_ident("mut");
                let name = self.ident_text().unwrap_or_default();
                if !name.is_empty() {
                    self.bump();
                }
                let ty = if self.eat_punct(':') {
                    self.ty()
                } else {
                    Ty::Unknown
                };
                let init = if self.eat_punct('=') {
                    Some(self.expr(0, false))
                } else {
                    None
                };
                self.eat_punct(';');
                Some(Item::Const(ConstItem { name, ty, init }))
            }
            Some("use") | Some("type") => {
                self.bump();
                self.skip_until(&[';']);
                self.eat_punct(';');
                Some(Item::Other)
            }
            Some("macro_rules") => {
                self.bump();
                self.eat_punct('!');
                if self.ident_text().is_some() {
                    self.bump();
                }
                self.skip_balanced();
                Some(Item::Other)
            }
            Some("extern") => {
                self.bump();
                self.skip_until(&['{', ';']);
                if self.at_punct(';') {
                    self.bump();
                } else {
                    self.skip_balanced();
                }
                Some(Item::Other)
            }
            _ => None,
        }
    }

    /// `{ item* }` for impl/trait/mod bodies.
    fn brace_items(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        if !self.eat_punct('{') {
            return items;
        }
        while !self.eof() && !self.at_punct('}') {
            let before = self.i;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        items
    }

    /// Cursor just past `fn`.
    fn fn_item(&mut self, _attrs: Attrs) -> FnItem {
        let line = self.line();
        let name = self.ident_text().unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct('<') {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.eat_punct('(') {
            while !self.eof() && !self.at_punct(')') {
                let before = self.i;
                let _ = self.attrs();
                // `self` receivers (possibly `&`, `&'a`, `&mut`, `mut`).
                if self.at_punct('&') || self.at_ident("self") || self.at_ident("mut") {
                    let save = self.i;
                    while self.at_punct('&')
                        || self.at_ident("mut")
                        || matches!(self.kind(0), Some(TokKind::Lifetime(_)))
                    {
                        self.bump();
                    }
                    if self.eat_ident("self") {
                        params.push(Param {
                            names: vec!["self".to_string()],
                            ty: Ty::path("Self"),
                        });
                        self.eat_punct(',');
                        continue;
                    }
                    self.i = save;
                }
                // Pattern up to `:`, then the type.
                let names = self.pattern_until(&[':', ',', ')']);
                let ty = if self.eat_punct(':') {
                    self.ty()
                } else {
                    Ty::Unknown
                };
                params.push(Param { names, ty });
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct(')');
        }
        let ret = if self.at_punct2('-', '>') {
            self.i += 2;
            Some(self.ty())
        } else {
            None
        };
        if self.at_ident("where") {
            self.skip_until(&['{', ';']);
        }
        let body = if self.at_punct('{') {
            Some(self.block())
        } else {
            self.eat_punct(';');
            None
        };
        FnItem {
            name,
            params,
            ret,
            body,
            line,
        }
    }

    fn struct_item(&mut self, attrs: Attrs) -> StructItem {
        let line = self.line();
        let name = self.ident_text().unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_ident("where") {
            self.skip_until(&['{', '(', ';']);
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            // Tuple struct: positional types.
            self.bump();
            while !self.eof() && !self.at_punct(')') {
                let before = self.i;
                let _ = self.attrs();
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_balanced();
                }
                let ty = self.ty();
                fields.push((String::new(), ty));
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct(')');
            self.eat_punct(';');
        } else if self.eat_punct('{') {
            while !self.eof() && !self.at_punct('}') {
                let before = self.i;
                let _ = self.attrs();
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_balanced();
                }
                let fname = self.ident_text().unwrap_or_default();
                if !fname.is_empty() {
                    self.bump();
                }
                let ty = if self.eat_punct(':') {
                    self.ty()
                } else {
                    Ty::Unknown
                };
                fields.push((fname, ty));
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
        } else {
            self.eat_punct(';'); // unit struct
        }
        StructItem {
            name,
            attrs,
            fields,
            line,
        }
    }

    fn enum_item(&mut self, attrs: Attrs) -> EnumItem {
        let line = self.line();
        let name = self.ident_text().unwrap_or_default();
        if !name.is_empty() {
            self.bump();
        }
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_ident("where") {
            self.skip_until(&['{', ';']);
        }
        let mut fields = Vec::new();
        if self.eat_punct('{') {
            while !self.eof() && !self.at_punct('}') {
                let before = self.i;
                let _ = self.attrs();
                if self.ident_text().is_some() {
                    self.bump(); // variant name
                }
                if self.at_punct('(') {
                    self.bump();
                    while !self.eof() && !self.at_punct(')') {
                        let b2 = self.i;
                        let ty = self.ty();
                        fields.push((String::new(), ty));
                        self.eat_punct(',');
                        if self.i == b2 {
                            self.bump();
                        }
                    }
                    self.eat_punct(')');
                } else if self.at_punct('{') {
                    self.bump();
                    while !self.eof() && !self.at_punct('}') {
                        let b2 = self.i;
                        let fname = self.ident_text().unwrap_or_default();
                        if !fname.is_empty() {
                            self.bump();
                        }
                        let ty = if self.eat_punct(':') {
                            self.ty()
                        } else {
                            Ty::Unknown
                        };
                        fields.push((fname, ty));
                        self.eat_punct(',');
                        if self.i == b2 {
                            self.bump();
                        }
                    }
                    self.eat_punct('}');
                }
                if self.eat_punct('=') {
                    // Explicit discriminant.
                    self.skip_until(&[',', '}']);
                }
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
        }
        EnumItem {
            name,
            attrs,
            fields,
            line,
        }
    }

    /// Cursor just past `impl`.
    fn impl_block(&mut self) -> ImplBlock {
        if self.at_punct('<') {
            self.skip_generics();
        }
        let first = self.ty();
        let self_ty = if self.eat_ident("for") {
            self.ty()
        } else {
            first
        };
        if self.at_ident("where") {
            self.skip_until(&['{']);
        }
        let name = match &self_ty {
            Ty::Path { name, .. } => name.clone(),
            _ => String::new(),
        };
        ImplBlock {
            self_ty: name,
            items: self.brace_items(),
        }
    }

    // -- types ---------------------------------------------------------------

    fn ty(&mut self) -> Ty {
        match self.kind(0) {
            Some(k) if k.is_punct('&') => {
                self.bump();
                while matches!(self.kind(0), Some(TokKind::Lifetime(_))) {
                    self.bump();
                }
                self.eat_ident("mut");
                Ty::Ref(Box::new(self.ty()))
            }
            Some(k) if k.is_punct('*') => {
                self.bump();
                let _ = self.eat_ident("const") || self.eat_ident("mut");
                Ty::Ref(Box::new(self.ty()))
            }
            Some(k) if k.is_punct('(') => {
                self.bump();
                let mut items = Vec::new();
                let mut trailing_comma = false;
                while !self.eof() && !self.at_punct(')') {
                    let before = self.i;
                    items.push(self.ty());
                    trailing_comma = self.eat_punct(',');
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat_punct(')');
                if items.len() == 1 && !trailing_comma {
                    items.pop().unwrap_or(Ty::Unknown)
                } else {
                    Ty::Tuple(items)
                }
            }
            Some(k) if k.is_punct('[') => {
                self.bump();
                let inner = self.ty();
                if self.eat_punct(';') {
                    self.skip_until(&[']']);
                }
                self.eat_punct(']');
                Ty::Slice(Box::new(inner))
            }
            Some(k) if k.is_punct('<') => {
                // Qualified path `<T as Trait>::Assoc` — skip, unknown.
                self.skip_generics();
                while self.at_punct2(':', ':') {
                    self.i += 2;
                    if self.ident_text().is_some() {
                        self.bump();
                    }
                    if self.at_punct('<') {
                        self.skip_generics();
                    }
                }
                Ty::Unknown
            }
            Some(TokKind::Ident(s)) if s == "dyn" || s == "impl" => {
                self.bump();
                let t = self.ty();
                while self.eat_punct('+') {
                    while matches!(self.kind(0), Some(TokKind::Lifetime(_))) {
                        self.bump();
                    }
                    if self.ident_text().is_some() || self.at_punct('(') {
                        let _ = self.ty();
                    }
                }
                t
            }
            Some(TokKind::Ident(s)) if s == "fn" || s == "Fn" || s == "FnMut" || s == "FnOnce" => {
                // Function types: `fn(A) -> B`, `Fn(A) -> B`.
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced();
                }
                if self.at_punct2('-', '>') {
                    self.i += 2;
                    let _ = self.ty();
                }
                Ty::Unknown
            }
            Some(TokKind::Ident(_)) => {
                let mut name = self.ident_text().unwrap_or_default();
                self.bump();
                let mut args = Vec::new();
                loop {
                    // Generic arguments for this segment.
                    if self.at_punct('<') {
                        args = self.generic_args();
                    }
                    if self.at_punct2(':', ':') {
                        self.i += 2;
                        if self.at_punct('<') {
                            // Turbofish in type position.
                            args = self.generic_args();
                            continue;
                        }
                        match self.ident_text() {
                            Some(seg) => {
                                name = seg;
                                self.bump();
                            }
                            None => break,
                        }
                    } else {
                        break;
                    }
                }
                Ty::Path { name, args }
            }
            Some(TokKind::Lifetime(_)) => {
                self.bump();
                Ty::Unknown
            }
            _ => Ty::Unknown,
        }
    }

    /// Parse `<…>` generic arguments into types (lifetimes and const
    /// arguments collapse to `Unknown`/skipped). Cursor on `<`.
    fn generic_args(&mut self) -> Vec<Ty> {
        let mut args = Vec::new();
        if !self.eat_punct('<') {
            return args;
        }
        while !self.eof() && !self.at_punct('>') {
            let before = self.i;
            match self.kind(0) {
                Some(TokKind::Lifetime(_)) => self.bump(),
                Some(TokKind::Num(_)) => {
                    self.bump(); // const argument
                }
                Some(k) if k.is_punct(',') => self.bump(),
                _ => {
                    args.push(self.ty());
                    // Associated-type bindings `Item = T` or bound lists.
                    if self.eat_punct('=') {
                        args.pop();
                        args.push(self.ty());
                    }
                    while self.eat_punct('+') {
                        let _ = self.ty();
                    }
                }
            }
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct('>');
        args
    }

    // -- patterns ------------------------------------------------------------

    /// Collect the identifiers a pattern binds, consuming tokens until one
    /// of `stops` at depth 0 (not consumed). Path segments (`Some`,
    /// `AggState::Count`) and struct-field keys are heuristically excluded:
    /// an identifier is a binding if it is not part of a `::` path, does not
    /// start a call/struct sub-pattern, and is not a pattern keyword.
    fn pattern_until(&mut self, stops: &[char]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while let Some(k) = self.kind(0) {
            if depth == 0 && (self.at_ident("if") || self.at_ident("in") || self.at_ident("else")) {
                // Keywords that terminate a pattern: a match-arm guard, a
                // for-loop's iterator clause, a let-else. None can occur
                // inside a pattern, so stopping here is always safe.
                break;
            }
            if self.at_punct2('=', '>') && stops.contains(&'=') && depth == 0 {
                break;
            }
            match k {
                k if k.is_punct('(') || k.is_punct('[') || k.is_punct('{') => {
                    depth += 1;
                    self.bump();
                }
                k if k.is_punct(')') || k.is_punct(']') || k.is_punct('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    self.bump();
                }
                k if depth == 0 && stops.iter().any(|&c| k.is_punct(c)) => break,
                TokKind::Ident(name) => {
                    let name = name.clone();
                    let prev_path = self.i >= 2
                        && self.toks[self.i - 1].kind.is_punct(':')
                        && self.toks[self.i - 2].kind.is_punct(':');
                    let next_path = self.at_punct2(':', ':')
                        || self
                            .toks
                            .get(self.i + 1)
                            .is_some_and(|t| t.kind.is_punct(':') && t.joint)
                            && self.kind(2).is_some_and(|k| k.is_punct(':'));
                    let next = self.kind(1);
                    let starts_sub = next.is_some_and(|k| k.is_punct('(') || k.is_punct('{'));
                    let type_like = name.starts_with(char::is_uppercase);
                    self.bump();
                    if self.at_punct2(':', ':') {
                        self.i += 2;
                        continue;
                    }
                    if !prev_path
                        && !next_path
                        && !starts_sub
                        && !type_like
                        && !PATTERN_KEYWORDS.contains(&name.as_str())
                    {
                        names.push(name);
                    }
                }
                _ => self.bump(),
            }
        }
        names
    }

    // -- statements & blocks --------------------------------------------------

    /// Cursor on `{`.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat_punct('{') {
            return Block { stmts };
        }
        while !self.eof() && !self.at_punct('}') {
            let before = self.i;
            if let Some(s) = self.stmt() {
                stmts.push(s);
            }
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Block { stmts }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        if self.at_punct(';') {
            self.bump();
            return None;
        }
        // Item-in-block. `#` attrs also precede items — but they can also
        // precede statements; `attrs()` inside `item()` handles both, and a
        // non-item after attrs parses as an expression statement.
        if self.at_ident("let") {
            self.bump();
            let names = self.pattern_until(&[':', '=', ';']);
            let ty = if self.at_punct(':') && !self.at_punct2(':', ':') {
                self.bump();
                Some(self.ty())
            } else {
                None
            };
            let init = if self.at_punct('=') && !self.at_punct2('=', '=') {
                self.bump();
                Some(self.expr(0, false))
            } else {
                None
            };
            let else_block = if self.eat_ident("else") {
                Some(self.block())
            } else {
                None
            };
            self.eat_punct(';');
            return Some(Stmt::Let(LetStmt {
                names,
                ty,
                init,
                else_block,
            }));
        }
        let item_kw = matches!(
            self.ident_text().as_deref(),
            Some(
                "fn" | "struct"
                    | "enum"
                    | "impl"
                    | "trait"
                    | "mod"
                    | "use"
                    | "type"
                    | "static"
                    | "macro_rules"
            )
        ) || (self.at_ident("const")
            && !self.kind(1).is_some_and(|k| k.is_punct('{')))
            || (self.at_ident("pub"))
            || (self.at_punct('#') && self.kind(1).is_some_and(|k| k.is_punct('[')));
        if item_kw {
            if let Some(item) = self.item() {
                return Some(Stmt::Item(item));
            }
        }
        let e = self.expr(0, false);
        self.eat_punct(';');
        Some(Stmt::Expr(e))
    }

    // -- expressions ----------------------------------------------------------

    /// Binding powers, Pratt-style. Returns `(op, lbp, tok_len)`.
    fn peek_binop(&self) -> Option<(BinOp, u8, usize)> {
        // Order matters: longest match first.
        if self.at_punct2('&', '&') {
            return Some((BinOp::And, 4, 2));
        }
        if self.at_punct2('|', '|') {
            return Some((BinOp::Or, 3, 2));
        }
        if self.at_punct2('=', '=') {
            return Some((BinOp::Eq, 5, 2));
        }
        if self.at_punct2('!', '=') {
            return Some((BinOp::Ne, 5, 2));
        }
        if self.at_punct2('<', '=') {
            return Some((BinOp::Le, 5, 2));
        }
        if self.at_punct2('>', '=') {
            return Some((BinOp::Ge, 5, 2));
        }
        if self.at_punct2('<', '<') {
            return Some((BinOp::Shl, 9, 2));
        }
        if self.at_punct2('>', '>') {
            return Some((BinOp::Shr, 9, 2));
        }
        match self.kind(0) {
            Some(k) if k.is_punct('<') => Some((BinOp::Lt, 5, 1)),
            Some(k) if k.is_punct('>') => Some((BinOp::Gt, 5, 1)),
            Some(k) if k.is_punct('+') => Some((BinOp::Add, 10, 1)),
            Some(k) if k.is_punct('-') => Some((BinOp::Sub, 10, 1)),
            Some(k) if k.is_punct('*') => Some((BinOp::Mul, 11, 1)),
            Some(k) if k.is_punct('/') => Some((BinOp::Div, 11, 1)),
            Some(k) if k.is_punct('%') => Some((BinOp::Rem, 11, 1)),
            Some(k) if k.is_punct('&') => Some((BinOp::BitAnd, 8, 1)),
            Some(k) if k.is_punct('|') => Some((BinOp::BitOr, 6, 1)),
            Some(k) if k.is_punct('^') => Some((BinOp::BitXor, 7, 1)),
            _ => None,
        }
    }

    /// Compound assignment operator at the cursor: `(op, tok_len)`.
    fn peek_compound_assign(&self) -> Option<(BinOp, usize)> {
        if self.at_punct3('<', '<', '=') {
            return Some((BinOp::Shl, 3));
        }
        if self.at_punct3('>', '>', '=') {
            return Some((BinOp::Shr, 3));
        }
        let first = self.toks.get(self.i)?;
        if !first.joint {
            return None;
        }
        if !self.kind(1).is_some_and(|k| k.is_punct('=')) {
            return None;
        }
        // Exclude `==`, `<=`, `>=`, `!=` (comparisons, not assignments).
        let op = match &first.kind {
            k if k.is_punct('+') => BinOp::Add,
            k if k.is_punct('-') => BinOp::Sub,
            k if k.is_punct('*') => BinOp::Mul,
            k if k.is_punct('/') => BinOp::Div,
            k if k.is_punct('%') => BinOp::Rem,
            k if k.is_punct('&') => BinOp::BitAnd,
            k if k.is_punct('|') => BinOp::BitOr,
            k if k.is_punct('^') => BinOp::BitXor,
            _ => return None,
        };
        // `x *= 2` vs `x * = …` — jointness already required above.
        if self.kind(2).is_some_and(|k| k.is_punct('=')) {
            // `+==`? Not a thing; let it parse as compound then `=` errors out.
        }
        Some((op, 2))
    }

    fn expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let line = self.line();
        let mut lhs = self.prefix(no_struct);
        loop {
            // Postfix-like `as` cast binds tighter than comparisons.
            if self.at_ident("as") {
                self.bump();
                let ty = self.ty();
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    ty,
                    line,
                };
                continue;
            }
            // Range operators (low precedence).
            if (self.at_punct2('.', '.') || self.at_punct3('.', '.', '=')) && min_bp <= 2 {
                let len = if self.at_punct3('.', '.', '=') { 3 } else { 2 };
                self.i += len;
                let hi = if self.starts_expr(no_struct) {
                    Some(Box::new(self.expr(3, no_struct)))
                } else {
                    None
                };
                lhs = Expr::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                    line,
                };
                continue;
            }
            // Assignment (lowest precedence, right-assoc).
            if min_bp <= 1 {
                if let Some((op, len)) = self.peek_compound_assign() {
                    self.i += len;
                    let rhs = self.expr(1, no_struct);
                    lhs = Expr::Assign {
                        op: Some(op),
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                    continue;
                }
                if self.at_punct('=') && !self.at_punct2('=', '=') && !self.at_punct2('=', '>') {
                    self.bump();
                    let rhs = self.expr(1, no_struct);
                    lhs = Expr::Assign {
                        op: None,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                    continue;
                }
            }
            let Some((op, lbp, len)) = self.peek_binop() else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            let op_line = self.line();
            self.i += len;
            let rhs = self.expr(lbp + 1, no_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line: op_line,
            };
        }
        lhs
    }

    /// Does the current token plausibly start an expression? (Used to
    /// decide whether a range has an upper bound.)
    fn starts_expr(&self, no_struct: bool) -> bool {
        let _ = no_struct;
        match self.kind(0) {
            Some(TokKind::Ident(s)) => !matches!(s.as_str(), "in" | "else" | "as" | "where"),
            Some(TokKind::Num(_)) | Some(TokKind::Literal) => true,
            Some(k) => {
                k.is_punct('(')
                    || k.is_punct('[')
                    || k.is_punct('-')
                    || k.is_punct('!')
                    || k.is_punct('*')
                    || k.is_punct('&')
            }
            None => false,
        }
    }

    fn prefix(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(kind) = self.kind(0) else {
            return Expr::Unknown { line };
        };
        let mut e = match kind {
            TokKind::Num(text) => {
                let text = text.clone();
                self.bump();
                Expr::Num { text, line }
            }
            TokKind::Literal => {
                self.bump();
                Expr::Lit { line }
            }
            TokKind::Lifetime(_) => {
                // Loop label `'a: loop { … }`.
                self.bump();
                self.eat_punct(':');
                return self.prefix(no_struct);
            }
            k if k.is_punct('-') || k.is_punct('!') || k.is_punct('*') => {
                let op = match k {
                    k if k.is_punct('-') => '-',
                    k if k.is_punct('!') => '!',
                    _ => '*',
                };
                self.bump();
                let inner = self.expr(12, no_struct);
                Expr::Unary {
                    op,
                    expr: Box::new(inner),
                    line,
                }
            }
            k if k.is_punct('&') => {
                self.bump();
                self.eat_punct('&'); // `&&x` double-reference
                self.eat_ident("mut");
                let inner = self.expr(12, no_struct);
                Expr::Unary {
                    op: '&',
                    expr: Box::new(inner),
                    line,
                }
            }
            k if k.is_punct('(') => {
                self.bump();
                let mut items = Vec::new();
                let mut trailing = false;
                while !self.eof() && !self.at_punct(')') {
                    let before = self.i;
                    items.push(self.expr(0, false));
                    trailing = self.eat_punct(',');
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat_punct(')');
                if items.len() == 1 && !trailing {
                    items.pop().unwrap_or(Expr::Unknown { line })
                } else {
                    Expr::Tuple { items, line }
                }
            }
            k if k.is_punct('[') => {
                self.bump();
                let mut items = Vec::new();
                while !self.eof() && !self.at_punct(']') {
                    let before = self.i;
                    items.push(self.expr(0, false));
                    let _ = self.eat_punct(',') || self.eat_punct(';');
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat_punct(']');
                Expr::Array { items, line }
            }
            k if k.is_punct('{') => Expr::Block {
                block: self.block(),
                line,
            },
            k if k.is_punct('|') || self.at_punct2('|', '|') => self.closure(line),
            k if k.is_punct('.') && self.at_punct2('.', '.') => {
                // Leading range `..n` / `..=n`.
                let len = if self.at_punct3('.', '.', '=') { 3 } else { 2 };
                self.i += len;
                let hi = if self.starts_expr(no_struct) {
                    Some(Box::new(self.expr(3, no_struct)))
                } else {
                    None
                };
                Expr::Range { lo: None, hi, line }
            }
            k if k.is_punct('<') => {
                // Qualified path expression `<T as Trait>::method(…)`.
                self.skip_generics();
                let mut segs = Vec::new();
                while self.at_punct2(':', ':') {
                    self.i += 2;
                    if let Some(seg) = self.ident_text() {
                        segs.push(seg);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Expr::Path { segs, line }
            }
            k if k.is_punct('#') => {
                // Expression-position attribute (e.g. on a match arm value).
                let _ = self.attrs();
                return self.prefix(no_struct);
            }
            TokKind::Ident(name) => {
                let name = name.clone();
                match name.as_str() {
                    "if" => {
                        self.bump();
                        return self.if_expr(line);
                    }
                    "match" => {
                        self.bump();
                        return self.match_expr(line);
                    }
                    "for" => {
                        self.bump();
                        let binds = self.pattern_until(&['=', ';']);
                        self.eat_ident("in");
                        let iter = self.expr(0, true);
                        let body = self.block();
                        return Expr::For {
                            binds,
                            iter: Box::new(iter),
                            body,
                            line,
                        };
                    }
                    "while" => {
                        self.bump();
                        let (cond, binds) = if self.eat_ident("let") {
                            let binds = self.pattern_until(&['=']);
                            self.eat_punct('=');
                            (self.expr(0, true), binds)
                        } else {
                            (self.expr(0, true), Vec::new())
                        };
                        let body = self.block();
                        return Expr::While {
                            cond: Box::new(cond),
                            binds,
                            body,
                            line,
                        };
                    }
                    "loop" => {
                        self.bump();
                        return Expr::Loop {
                            body: self.block(),
                            line,
                        };
                    }
                    "unsafe" => {
                        self.bump();
                        return Expr::Block {
                            block: self.block(),
                            line,
                        };
                    }
                    "move" => {
                        self.bump();
                        return self.closure(line);
                    }
                    "return" => {
                        self.bump();
                        let inner = if self.starts_expr(no_struct) {
                            Some(Box::new(self.expr(0, no_struct)))
                        } else {
                            None
                        };
                        return Expr::Return { expr: inner, line };
                    }
                    "break" | "continue" => {
                        self.bump();
                        while matches!(self.kind(0), Some(TokKind::Lifetime(_))) {
                            self.bump();
                        }
                        if self.starts_expr(no_struct) && !self.at_punct('{') {
                            let _ = self.expr(0, no_struct);
                        }
                        return Expr::Unknown { line };
                    }
                    "true" | "false" => {
                        self.bump();
                        Expr::Bool { line }
                    }
                    "let" => {
                        // `let pat = expr` inside a condition chain.
                        self.bump();
                        let _binds = self.pattern_until(&['=']);
                        self.eat_punct('=');
                        return self.expr(5, true);
                    }
                    _ => {
                        // Path, possibly macro call or struct literal.
                        self.bump();
                        let mut segs = vec![name];
                        loop {
                            if self.at_punct2(':', ':') {
                                let save = self.i;
                                self.i += 2;
                                if self.at_punct('<') {
                                    let _ = self.generic_args(); // path turbofish
                                    continue;
                                }
                                match self.ident_text() {
                                    Some(seg) => {
                                        segs.push(seg);
                                        self.bump();
                                    }
                                    None => {
                                        self.i = save;
                                        break;
                                    }
                                }
                            } else {
                                break;
                            }
                        }
                        if self.at_punct('!') && !self.at_punct2('!', '=') {
                            self.bump();
                            return self.macro_call(segs, line);
                        }
                        if self.at_punct('{') && !no_struct {
                            let head = segs.last().cloned().unwrap_or_default();
                            if head.starts_with(char::is_uppercase) {
                                return self.struct_lit(head, line);
                            }
                        }
                        Expr::Path { segs, line }
                    }
                }
            }
            _ => {
                self.bump();
                Expr::Unknown { line }
            }
        };
        // Postfix chain.
        loop {
            if self.at_punct('.') && !self.at_punct2('.', '.') {
                self.bump();
                if self.eat_ident("await") {
                    continue;
                }
                let mline = self.line();
                match self.kind(0).cloned() {
                    Some(TokKind::Ident(m)) => {
                        self.bump();
                        let mut targs = Vec::new();
                        if self.at_punct2(':', ':') {
                            self.i += 2;
                            if self.at_punct('<') {
                                targs = self.generic_args();
                            }
                        }
                        if self.at_punct('(') {
                            let args = self.call_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                method: m,
                                targs,
                                args,
                                line: mline,
                            };
                        } else {
                            e = Expr::Field {
                                base: Box::new(e),
                                name: m,
                                line: mline,
                            };
                        }
                    }
                    Some(TokKind::Num(n)) => {
                        self.bump();
                        e = Expr::Field {
                            base: Box::new(e),
                            name: n,
                            line: mline,
                        };
                    }
                    _ => break,
                }
                continue;
            }
            if self.at_punct('?') {
                self.bump();
                continue; // `?` is transparent to the lints
            }
            if self.at_punct('(') {
                let args = self.call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.at_punct('[') {
                self.bump();
                let idx = self.expr(0, false);
                self.eat_punct(']');
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                    line,
                };
                continue;
            }
            break;
        }
        e
    }

    /// Cursor on `(`. Parses a comma-separated argument list.
    fn call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct('(') {
            return args;
        }
        while !self.eof() && !self.at_punct(')') {
            let before = self.i;
            args.push(self.expr(0, false));
            self.eat_punct(',');
            if self.i == before {
                // Recovery: skip to the next argument or the close paren.
                self.skip_until(&[',', ')']);
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
        }
        self.eat_punct(')');
        args
    }

    /// Cursor just past `name!`. Parses macro arguments best-effort as a
    /// comma/semicolon-separated expression list so rule scanning reaches
    /// inside `format!`/`assert!`/`vec!` bodies; tokens that do not parse as
    /// expressions are skipped.
    fn macro_call(&mut self, segs: Vec<String>, line: u32) -> Expr {
        let name = segs.last().cloned().unwrap_or_default();
        let close = match self.kind(0) {
            Some(k) if k.is_punct('(') => ')',
            Some(k) if k.is_punct('[') => ']',
            Some(k) if k.is_punct('{') => '}',
            _ => {
                return Expr::Macro {
                    name,
                    args: Vec::new(),
                    line,
                }
            }
        };
        self.bump();
        let mut args = Vec::new();
        while !self.eof() && !self.at_punct(close) {
            let before = self.i;
            // A macro argument position may hold a pattern (`matches!`),
            // a format string, or an expression; expressions subsume enough
            // of the first two for lint purposes.
            args.push(self.expr(0, false));
            let _ = self.eat_punct(',') || self.eat_punct(';');
            if self.i == before {
                self.skip_until(&[',', ';', close]);
                let _ = self.eat_punct(',') || self.eat_punct(';');
                if self.i == before {
                    self.bump();
                }
            }
        }
        self.eat_punct(close);
        Expr::Macro { name, args, line }
    }

    /// Cursor just past the struct name, on `{`.
    fn struct_lit(&mut self, name: String, line: u32) -> Expr {
        self.bump();
        let mut fields = Vec::new();
        while !self.eof() && !self.at_punct('}') {
            let before = self.i;
            if self.at_punct2('.', '.') {
                self.i += 2;
                if self.starts_expr(false) {
                    fields.push(self.expr(0, false)); // functional update base
                }
                continue;
            }
            // `field: expr`, or shorthand `field`.
            if matches!(self.kind(0), Some(TokKind::Ident(_)))
                && self.kind(1).is_some_and(|k| k.is_punct(':'))
                && !self.at_punct2(':', ':')
                && !(self
                    .toks
                    .get(self.i + 1)
                    .is_some_and(|t| t.kind.is_punct(':') && t.joint)
                    && self.kind(2).is_some_and(|k| k.is_punct(':')))
            {
                self.bump();
                self.bump();
            }
            fields.push(self.expr(0, false));
            self.eat_punct(',');
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct('}');
        Expr::StructLit { name, fields, line }
    }

    fn if_expr(&mut self, line: u32) -> Expr {
        let (cond, binds) = if self.eat_ident("let") {
            let binds = self.pattern_until(&['=']);
            self.eat_punct('=');
            (self.expr(0, true), binds)
        } else {
            (self.expr(0, true), Vec::new())
        };
        let then = self.block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                self.bump();
                Some(Box::new(self.if_expr(self.line())))
            } else {
                Some(Box::new(Expr::Block {
                    block: self.block(),
                    line: self.line(),
                }))
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            binds,
            then,
            els,
            line,
        }
    }

    fn match_expr(&mut self, line: u32) -> Expr {
        let scrut = self.expr(0, true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            while !self.eof() && !self.at_punct('}') {
                let before = self.i;
                let _ = self.attrs();
                let binds = self.pattern_until(&['=']);
                let guard = if self.at_ident("if") {
                    // `pattern_until` stops at a depth-0 `if`, so the guard
                    // expression is parsed (and walkable) rather than
                    // swallowed by the pattern scan.
                    self.bump();
                    Some(self.expr(0, true))
                } else {
                    None
                };
                if self.at_punct2('=', '>') {
                    self.i += 2;
                } else {
                    // Malformed arm — resync.
                    self.skip_until(&[',', '}']);
                    self.eat_punct(',');
                    if self.i == before {
                        self.bump();
                    }
                    continue;
                }
                let body = self.expr(0, false);
                self.eat_punct(',');
                arms.push(Arm { binds, guard, body });
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('}');
        }
        Expr::Match {
            scrut: Box::new(scrut),
            arms,
            line,
        }
    }

    fn closure(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.at_punct2('|', '|') {
            self.i += 2;
        } else if self.eat_punct('|') {
            while !self.eof() && !self.at_punct('|') {
                let before = self.i;
                let names = self.pattern_until(&[':', ',', '|']);
                let ty = if self.at_punct(':') && !self.at_punct2(':', ':') {
                    self.bump();
                    Some(self.ty())
                } else {
                    None
                };
                params.push((names, ty));
                self.eat_punct(',');
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct('|');
        }
        if self.at_punct2('-', '>') {
            self.i += 2;
            let _ = self.ty();
        }
        let body = self.expr(0, false);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }
}

// ---------------------------------------------------------------------------
// Walkers
// ---------------------------------------------------------------------------

/// Visit every expression in a block, depth-first.
pub fn walk_block<'a>(b: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(e) = &l.init {
                    walk_expr(e, f);
                }
                if let Some(blk) = &l.else_block {
                    walk_block(blk, f);
                }
            }
            Stmt::Expr(e) => walk_expr(e, f),
            Stmt::Item(item) => walk_item(item, f),
        }
    }
}

pub fn walk_item<'a>(item: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match item {
        Item::Fn(func) => {
            if let Some(b) = &func.body {
                walk_block(b, f);
            }
        }
        Item::Impl(i) => {
            for it in &i.items {
                walk_item(it, f);
            }
        }
        Item::Mod(m) => {
            for it in &m.items {
                walk_item(it, f);
            }
        }
        Item::Const(c) => {
            if let Some(e) = &c.init {
                walk_expr(e, f);
            }
        }
        _ => {}
    }
}

pub fn walk_expr<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => walk_expr(expr, f),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Field { base, .. } => walk_expr(base, f),
        Expr::Index { base, index, .. } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Closure { body, .. } => walk_expr(body, f),
        Expr::If {
            cond, then, els, ..
        } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        Expr::Match { scrut, arms, .. } => {
            walk_expr(scrut, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        Expr::While { cond, body, .. } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        Expr::Loop { body, .. } => walk_block(body, f),
        Expr::Block { block, .. } => walk_block(block, f),
        Expr::Macro { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for i in items {
                walk_expr(i, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for e in fields {
                walk_expr(e, f);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
        Expr::Return { expr: Some(e), .. } => walk_expr(e, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse_src(src: &str) -> SourceFile {
        let code: Vec<Tok> = tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        parse(&code)
    }

    fn first_fn(f: &SourceFile) -> &FnItem {
        for item in &f.items {
            if let Item::Fn(func) = item {
                return func;
            }
        }
        panic!("no fn item parsed");
    }

    #[test]
    fn fn_signature_types() {
        let f = parse_src("pub fn scale(x: f64, n: usize) -> f64 { x * n as f64 }");
        let func = first_fn(&f);
        assert_eq!(func.name, "scale");
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.params[0].ty, Ty::path("f64"));
        assert_eq!(func.params[1].ty, Ty::path("usize"));
        assert_eq!(func.ret, Some(Ty::path("f64")));
    }

    #[test]
    fn shift_vs_generics() {
        // Expression position: `>>` is a shift. Type position: two closes.
        let f = parse_src("fn f(a: u64) -> u64 { let v: Vec<Vec<u8>> = Vec::new(); a >> 3 }");
        let func = first_fn(&f);
        let body = func.body.as_ref().unwrap();
        let Stmt::Let(l) = &body.stmts[0] else {
            panic!("expected let")
        };
        match l.ty.as_ref().unwrap() {
            Ty::Path { name, args } => {
                assert_eq!(name, "Vec");
                assert_eq!(args.len(), 1);
                assert!(matches!(&args[0], Ty::Path { name, .. } if name == "Vec"));
            }
            other => panic!("bad type {other:?}"),
        }
        let Stmt::Expr(Expr::Binary { op, .. }) = &body.stmts[1] else {
            panic!("expected shift, got {:?}", body.stmts[1])
        };
        assert_eq!(*op, BinOp::Shr);
    }

    #[test]
    fn method_calls_with_turbofish() {
        let f = parse_src("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }");
        let func = first_fn(&f);
        let mut found = false;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if let Expr::MethodCall { method, targs, .. } = e {
                    if method == "sum" {
                        assert_eq!(targs, &[Ty::path("f64")]);
                        found = true;
                    }
                }
            });
        }
        assert!(found);
    }

    #[test]
    fn casts_and_comparisons() {
        let f = parse_src("fn f(n: usize, x: f64, y: f64) -> bool { (n as u32) < 3 && x == y }");
        let func = first_fn(&f);
        let mut casts = 0;
        let mut eqs = 0;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| match e {
                Expr::Cast { ty, .. } => {
                    assert_eq!(*ty, Ty::path("u32"));
                    casts += 1;
                }
                Expr::Binary { op: BinOp::Eq, .. } => eqs += 1,
                _ => {}
            });
        }
        assert_eq!((casts, eqs), (1, 1));
    }

    #[test]
    fn struct_derives_and_fields() {
        let f = parse_src(
            "#[derive(Debug, Clone, PartialEq)]\npub struct RangeVal { pub lo: f64, pub hi: f64 }",
        );
        let Item::Struct(s) = &f.items[0] else {
            panic!("expected struct")
        };
        assert!(s.attrs.derives.iter().any(|d| d == "PartialEq"));
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0], ("lo".to_string(), Ty::path("f64")));
    }

    #[test]
    fn enum_variant_payloads() {
        let f = parse_src("enum E { A, B(f64), C { w: f64, n: u32 } }");
        let Item::Enum(e) = &f.items[0] else {
            panic!("expected enum")
        };
        assert_eq!(e.fields.len(), 3);
        assert_eq!(e.fields[1].0, "w");
    }

    #[test]
    fn impl_blocks_nest() {
        let f = parse_src("impl Foo { fn a(&self) {} fn b(&self) {} }");
        let Item::Impl(i) = &f.items[0] else {
            panic!("expected impl")
        };
        assert_eq!(i.self_ty, "Foo");
        assert_eq!(i.items.len(), 2);
    }

    #[test]
    fn cfg_test_mod_marked() {
        let f = parse_src("#[cfg(test)]\nmod tests { fn helper() {} }");
        let Item::Mod(m) = &f.items[0] else {
            panic!("expected mod")
        };
        assert!(m.cfg_test);
        assert_eq!(m.items.len(), 1);
    }

    #[test]
    fn match_arms_and_guards() {
        let f = parse_src(
            "fn f(x: Option<f64>, y: f64) -> f64 { match x { Some(v) if v == y => v, _ => 0.0 } }",
        );
        let func = first_fn(&f);
        let mut guard_eq = false;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if let Expr::Binary { op: BinOp::Eq, .. } = e {
                    guard_eq = true;
                }
            });
        }
        assert!(guard_eq, "guard expression must be reachable by walkers");
    }

    #[test]
    fn closures_bind_params() {
        let f = parse_src("fn f(xs: Vec<f64>) { xs.sort_by(|a, b| a.total_cmp(b)); }");
        let func = first_fn(&f);
        let mut closure_params = Vec::new();
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if let Expr::Closure { params, .. } = e {
                    for (names, _) in params {
                        closure_params.extend(names.clone());
                    }
                }
            });
        }
        assert_eq!(closure_params, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn macros_expose_arguments() {
        let f = parse_src(
            "fn f(m: std::collections::HashMap<u64, f64>) { format!(\"{:?}\", m.iter().count()); }",
        );
        let func = first_fn(&f);
        let mut saw_iter = false;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if let Expr::MethodCall { method, .. } = e {
                    if method == "iter" {
                        saw_iter = true;
                    }
                }
            });
        }
        assert!(saw_iter, "macro arguments must be walkable");
    }

    #[test]
    fn for_loop_over_range() {
        let f = parse_src("fn f(n: usize) { for i in 0..n { let _ = i; } }");
        let func = first_fn(&f);
        let mut fors = 0;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if matches!(e, Expr::For { .. }) {
                    fors += 1;
                }
            });
        }
        assert_eq!(fors, 1);
    }

    #[test]
    fn struct_literal_vs_block() {
        // `if x { … }` must not parse `x {` as a struct literal.
        let f = parse_src("fn f(x: bool) -> u32 { if x { 1 } else { 2 } }");
        let func = first_fn(&f);
        let mut ifs = 0;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if matches!(e, Expr::If { .. }) {
                    ifs += 1;
                }
            });
        }
        assert_eq!(ifs, 1);
        // But a real struct literal still parses.
        let f = parse_src("fn g() -> Point { Point { x: 1.0, y: 2.0 } }");
        let func = first_fn(&f);
        let mut lits = 0;
        if let Some(b) = &func.body {
            walk_block(b, &mut |e| {
                if matches!(e, Expr::StructLit { .. }) {
                    lits += 1;
                }
            });
        }
        assert_eq!(lits, 1);
    }

    #[test]
    fn let_else_and_compound_assign() {
        let f = parse_src(
            "fn f(o: Option<f64>) -> f64 { let Some(x) = o else { return 0.0; }; let mut a = 0.0; a += x; a }",
        );
        let func = first_fn(&f);
        let body = func.body.as_ref().unwrap();
        let Stmt::Let(l) = &body.stmts[0] else {
            panic!("let-else");
        };
        assert_eq!(l.names, vec!["x".to_string()]);
        assert!(l.else_block.is_some());
        let mut compound = 0;
        walk_block(body, &mut |e| {
            if let Expr::Assign { op: Some(op), .. } = e {
                assert_eq!(*op, BinOp::Add);
                compound += 1;
            }
        });
        assert_eq!(compound, 1);
    }

    #[test]
    fn parser_never_loops_on_garbage() {
        let f = parse_src("fn f() { @@ %% ^^ }} {{ let = ; impl impl }");
        let _ = f; // completing at all is the assertion
        let f = parse_src("} ) ] >>>>> :: fn");
        let _ = f;
    }
}
