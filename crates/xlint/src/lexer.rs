//! A minimal Rust tokenizer for static analysis.
//!
//! Adapts the byte-wise scanning techniques of `gola_sql::lexer` to Rust
//! source: line-tracked tokens, comments preserved as first-class tokens
//! (the lint rules read `// SAFETY:` and `// golint: allow(...)` comments),
//! raw/byte string literals, and the lifetime-vs-char-literal ambiguity.
//!
//! The lexer is deliberately lossy where lints don't care: multi-character
//! operators arrive as sequences of single-character [`TokKind::Punct`]
//! tokens (`::` is two `:`), and literal payloads beyond numbers are
//! dropped. It must however never mis-bracket — all rule scanning relies on
//! depth counting over `() [] {} <>` being trustworthy outside strings and
//! comments.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: u32,
    /// `true` when the next token begins at the immediately following byte
    /// (no whitespace or comment between). This is how the parser
    /// reassembles multi-character operators from single-character
    /// [`TokKind::Punct`] tokens — and, crucially, how it distinguishes the
    /// shift operator `>>` (two *joint* `>`s in expression position) from
    /// two closing angle brackets of nested generics (`Vec<Vec<u8>>`, the
    /// same two joint `>`s in type position, split by context).
    pub joint: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers arrive without the `r#`).
    Ident(String),
    /// `'a` — distinguished from char literals so `<'a>` depth-scans work.
    Lifetime(String),
    /// Number literal, verbatim (suffixes included: `0.5f64`, `1_000u32`).
    Num(String),
    /// Any string/char/byte literal (payload dropped).
    Literal,
    /// A `//` or `/* */` comment: full text plus the line it ends on.
    Comment { text: String, end_line: u32 },
    /// Any other single character (`::` is two `:` tokens).
    Punct(char),
}

impl TokKind {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokKind::Punct(p) if *p == c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokKind::Ident(i) if i == s)
    }
}

/// Tokenize Rust source. Unlike the SQL lexer this never fails: static
/// analysis must degrade gracefully on source it half-understands, so any
/// unexpected byte becomes a `Punct` and scanning continues.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: Vec::new(),
        last_end: usize::MAX,
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: Vec<Tok>,
    /// Byte offset just past the previously pushed token, for `joint`.
    last_end: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.bytes.len() {
            let line = self.line;
            let start = self.i;
            let before = self.out.len();
            let c = self.bytes[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'r' | b'b' if self.raw_or_byte_literal(line) => {}
                b'"' => self.string_literal(line),
                b'\'' => self.quote(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(line),
                c if c.is_ascii() => {
                    self.i += 1;
                    self.push(TokKind::Punct(c as char), line);
                }
                _ => {
                    // Multi-byte UTF-8 outside literals (e.g. in doc text
                    // that slipped through): skip the full char.
                    let ch = self.src[self.i..].chars().next().unwrap_or('\u{fffd}');
                    self.i += ch.len_utf8();
                }
            }
            if self.out.len() > before {
                // A token was pushed starting at `start`: mark the previous
                // token joint when nothing separated them. Comments are
                // invisible to jointness (the parser filters them out of
                // the code stream, so they must not create false joins).
                if matches!(self.out[before].kind, TokKind::Comment { .. }) {
                    continue;
                }
                if before > 0 && start == self.last_end {
                    self.out[before - 1].joint = true;
                }
                self.last_end = self.i;
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, line: u32) {
        self.out.push(Tok {
            kind,
            line,
            joint: false,
        });
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.i;
        while self.i < self.bytes.len() && self.bytes[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(
            TokKind::Comment {
                text: self.src[start..self.i].to_string(),
                end_line: line,
            },
            line,
        );
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.i;
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.bytes.len() && depth > 0 {
            match (self.bytes[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(
            TokKind::Comment {
                text: self.src[start..self.i].to_string(),
                end_line: self.line,
            },
            line,
        );
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `br#"…"#`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns `false` when the `r`/`b` is just the
    /// start of a plain identifier (caller falls through to `ident`).
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut j = self.i + 1;
        // `r…` and `br…` are raw (no escape processing); plain `b"…"` is a
        // byte string whose `\"` escapes must be honoured like `"…"`.
        let raw = self.bytes[self.i] == b'r' || {
            let br = self.bytes[self.i] == b'b' && self.peek(1) == Some(b'r');
            if br {
                j += 1;
            }
            br
        };
        // Count `#`s of a raw string opener.
        let mut hashes = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.bytes.get(j) {
            Some(b'"') if raw => {
                self.i = j + 1;
                self.raw_string_tail(hashes, line);
                true
            }
            Some(b'"') if hashes == 0 => {
                // Plain byte string `b"…"`: escape-aware scan.
                self.i = j;
                self.string_literal(line);
                true
            }
            Some(b'\'') if self.bytes[self.i] == b'b' && hashes == 0 && !raw => {
                self.i = j; // byte char literal b'x'
                self.quote(line);
                true
            }
            _ if hashes == 1 && self.bytes[self.i] == b'r' => {
                // Raw identifier r#type — lex the ident without the prefix.
                self.i += 2;
                self.ident(line);
                true
            }
            _ => false,
        }
    }

    fn raw_string_tail(&mut self, hashes: usize, line: u32) {
        while self.i < self.bytes.len() {
            if self.bytes[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.bytes[self.i] == b'"' {
                let mut k = 0usize;
                while k < hashes && self.bytes.get(self.i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.i += 1 + hashes;
                    self.push(TokKind::Literal, line);
                    return;
                }
            }
            self.i += 1;
        }
        self.push(TokKind::Literal, line);
    }

    fn string_literal(&mut self, line: u32) {
        self.i += 1;
        while self.i < self.bytes.len() {
            match self.bytes[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Literal, line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`). Lifetime iff the next char starts an identifier and
    /// the char after that identifier char is not a closing `'`.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime = matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'_')
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.i += 1;
            let start = self.i;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.i += 1;
            }
            self.push(TokKind::Lifetime(self.src[start..self.i].to_string()), line);
            return;
        }
        // Char literal: skip the (possibly escaped, possibly multi-byte)
        // payload up to the closing quote.
        self.i += 1;
        if self.peek(0) == Some(b'\\') {
            self.i += 2;
        } else if self.i < self.bytes.len() {
            let ch = self.src[self.i..].chars().next().unwrap_or('x');
            self.i += ch.len_utf8();
        }
        if self.peek(0) == Some(b'\'') {
            self.i += 1;
        }
        self.push(TokKind::Literal, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.i;
        // Hex/octal/binary prefix.
        if self.bytes[self.i] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.i += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.i += 1;
            }
            self.push(TokKind::Num(self.src[start..self.i].to_string()), line);
            return;
        }
        let mut saw_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == b'_' {
                self.i += 1;
            } else if c == b'.' && !saw_dot {
                // `1..n` is a range, `1.f()` a method call — only consume
                // the dot when a digit follows (or nothing ident-like,
                // e.g. `1.` at expression end).
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        saw_dot = true;
                        self.i += 1;
                    }
                    _ => break,
                }
            } else if c == b'e' || c == b'E' {
                // Exponent only if followed by digit or sign+digit;
                // otherwise it's a suffix-ish ident boundary.
                let (a, b) = (self.peek(1), self.peek(2));
                let exp = matches!(a, Some(d) if d.is_ascii_digit())
                    || (matches!(a, Some(b'+' | b'-'))
                        && matches!(b, Some(d) if d.is_ascii_digit()));
                if !exp {
                    break;
                }
                self.i += 2;
                saw_dot = true; // exponent implies float-ish; fine for lints
            } else if c.is_ascii_alphabetic() {
                // Type suffix (f64, u32, usize…): consume as part of the
                // literal so `0.5f64` is one token.
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    self.i += 1;
                }
                break;
            } else {
                break;
            }
        }
        self.push(TokKind::Num(self.src[start..self.i].to_string()), line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.i;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.i += 1;
        }
        self.push(TokKind::Ident(self.src[start..self.i].to_string()), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let k = kinds("let m: FxHashMap<K, V> = FxHashMap::default();");
        assert!(k.contains(&TokKind::Ident("FxHashMap".into())));
        assert!(k.contains(&TokKind::Punct('<')));
        // `::` arrives as two colons (plus the type-ascription colon).
        let colons = k.iter().filter(|t| t.is_punct(':')).count();
        assert_eq!(colons, 3);
    }

    #[test]
    fn comments_preserved_with_lines() {
        let toks = tokenize("a\n// SAFETY: fine\nb /* multi\nline */ c");
        let comments: Vec<&Tok> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        match &comments[1].kind {
            TokKind::Comment { end_line, .. } => assert_eq!(*end_line, 4),
            _ => unreachable!(),
        }
        // Line tracking survives the block comment.
        let c = toks.last().unwrap();
        assert_eq!((c.line, &c.kind), (4, &TokKind::Ident("c".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            k.iter()
                .filter(|t| matches!(t, TokKind::Lifetime(l) if l == "a"))
                .count(),
            2
        );
        assert_eq!(
            k.iter().filter(|t| **t == TokKind::Literal).count(),
            2,
            "{k:?}"
        );
    }

    #[test]
    fn strings_and_raw_strings() {
        let k = kinds(r##"let s = "has // no comment"; let r = r#"raw "x" end"#;"##);
        assert_eq!(k.iter().filter(|t| **t == TokKind::Literal).count(), 2);
        assert!(!k.iter().any(|t| matches!(t, TokKind::Comment { .. })));
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("0..trials; 0.5f64; 1_000; 0x1F; 2.5e-3");
        assert!(k.contains(&TokKind::Num("0".into())));
        assert!(k.contains(&TokKind::Num("0.5f64".into())));
        assert!(k.contains(&TokKind::Num("1_000".into())));
        assert!(k.contains(&TokKind::Num("0x1F".into())));
        assert!(k.contains(&TokKind::Num("2.5e-3".into())));
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#type = 1;");
        assert!(k.contains(&TokKind::Ident("type".into())));
    }

    #[test]
    fn unexpected_bytes_do_not_abort() {
        // A stray `@` or unicode char must not stop the scan.
        let k = kinds("a @ b £ c");
        assert!(k.contains(&TokKind::Ident("c".into())));
    }

    #[test]
    fn byte_strings_honour_escapes() {
        // The `\"` inside a plain byte string must not terminate it; the
        // `]` lives inside the literal, so no Punct(']') may appear.
        let k = kinds(r#"let b = b"quote \" bracket ] end"; done"#);
        assert_eq!(k.iter().filter(|t| **t == TokKind::Literal).count(), 1);
        assert!(!k.iter().any(|t| t.is_punct(']')));
        assert!(k.contains(&TokKind::Ident("done".into())));
    }

    #[test]
    fn raw_byte_strings() {
        // `br#"…"#` carries no escapes: a lone `\` and an inner `"` are
        // payload; the literal ends only at `"#`.
        let k = kinds(r##"let b = br#"raw \ "quoted" bytes"#; done"##);
        assert_eq!(k.iter().filter(|t| **t == TokKind::Literal).count(), 1);
        assert!(!k.iter().any(|t| t.is_punct('\\')));
        assert!(k.contains(&TokKind::Ident("done".into())));
        // Unhashed raw byte string: backslash before the quote is payload?
        // No — `br"…"` ends at the first `"`, backslash or not.
        let k = kinds(r#"br"a\" rest"#);
        assert_eq!(k.iter().filter(|t| **t == TokKind::Literal).count(), 1);
        assert!(k.contains(&TokKind::Ident("rest".into())));
    }

    #[test]
    fn byte_char_literals() {
        let k = kinds(r#"let a = b'x'; let q = b'\''; done"#);
        assert_eq!(k.iter().filter(|t| **t == TokKind::Literal).count(), 2);
        assert!(k.contains(&TokKind::Ident("done".into())));
    }

    #[test]
    fn jointness_distinguishes_shift_from_spaced_angles() {
        // `a >> b`: the two `>`s are joint (shift material); `c > > d`
        // (hypothetical spaced closes) are not.
        let t = tokenize("a >> b; c > > d");
        let gts: Vec<&Tok> = t.iter().filter(|t| t.kind.is_punct('>')).collect();
        assert_eq!(gts.len(), 4);
        assert!(gts[0].joint, "first `>` of `>>` is joint");
        assert!(!gts[1].joint, "second `>` of `>>` precedes a space");
        assert!(!gts[2].joint && !gts[3].joint, "spaced `>`s are not joint");
        // Nested generics produce the same joint pair — the *parser* splits
        // them by type-vs-expression context.
        let t = tokenize("Vec<Vec<u8>>");
        let gts: Vec<&Tok> = t.iter().filter(|t| t.kind.is_punct('>')).collect();
        assert!(gts[0].joint);
    }

    #[test]
    fn comments_are_invisible_to_jointness() {
        // `>/*c*/>` must not read as a joint `>>`.
        let t = tokenize("a >/*c*/> b");
        let gts: Vec<&Tok> = t.iter().filter(|t| t.kind.is_punct('>')).collect();
        assert_eq!(gts.len(), 2);
        assert!(!gts[0].joint);
    }

    #[test]
    fn multichar_operator_jointness() {
        let t = tokenize("x == y; a -> b; p :: q; m != n");
        let joint_pairs: Vec<(char, char)> = t
            .windows(2)
            .filter(|w| w[0].joint)
            .filter_map(|w| match (&w[0].kind, &w[1].kind) {
                (TokKind::Punct(a), TokKind::Punct(b)) => Some((*a, *b)),
                _ => None,
            })
            .collect();
        assert!(joint_pairs.contains(&('=', '=')));
        assert!(joint_pairs.contains(&('-', '>')));
        assert!(joint_pairs.contains(&(':', ':')));
        assert!(joint_pairs.contains(&('!', '=')));
    }
}
