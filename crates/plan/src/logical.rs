//! Resolved logical plans and the query graph.

use std::fmt;
use std::sync::Arc;

use gola_agg::AggKind;
use gola_common::Schema;
use gola_expr::{Expr, SubqueryId};

/// One aggregate call in an `Aggregate` node.
#[derive(Debug, Clone)]
pub struct AggCall {
    pub kind: AggKind,
    /// Argument expression over the input schema. `COUNT(*)` lowers to
    /// `COUNT(1)`.
    pub arg: Expr,
    /// Output column name.
    pub name: String,
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) AS {}", self.kind, self.arg, self.name)
    }
}

/// A resolved relational-algebra tree. Every node carries its output
/// schema (computed by the binder).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Base-table scan.
    Scan {
        table: String,
        schema: Arc<Schema>,
    },
    /// `WHERE`/`HAVING` filter. Predicates may reference subqueries.
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    /// Projection: compute `exprs` over the input row.
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<Expr>,
        schema: Arc<Schema>,
    },
    /// Inner equi-join. `on` pairs are (left-schema expr, right-schema
    /// expr); output rows are `left ++ right`.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        on: Vec<(Expr, Expr)>,
        schema: Arc<Schema>,
    },
    /// Hash aggregation. Output schema: group columns then aggregate
    /// columns.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<Expr>,
        aggs: Vec<AggCall>,
        schema: Arc<Schema>,
    },
    /// Sort by output column indices (`desc` per key).
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(usize, bool)>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
}

impl LogicalPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> &Arc<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// All table names scanned anywhere under this node.
    pub fn scanned_tables(&self, out: &mut Vec<String>) {
        match self {
            LogicalPlan::Scan { table, .. } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.scanned_tables(out),
            LogicalPlan::Join { left, right, .. } => {
                left.scanned_tables(out);
                right.scanned_tables(out);
            }
        }
    }

    /// All subquery ids referenced by expressions anywhere in this tree.
    pub fn subquery_refs(&self, out: &mut Vec<SubqueryId>) {
        let visit_expr = |e: &Expr, out: &mut Vec<SubqueryId>| {
            let mut refs = Vec::new();
            e.collect_subquery_refs(&mut refs);
            for r in refs {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        };
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Filter { input, predicate } => {
                visit_expr(predicate, out);
                input.subquery_refs(out);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                for e in exprs {
                    visit_expr(e, out);
                }
                input.subquery_refs(out);
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                for (l, r) in on {
                    visit_expr(l, out);
                    visit_expr(r, out);
                }
                left.subquery_refs(out);
                right.subquery_refs(out);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                for e in group_by {
                    visit_expr(e, out);
                }
                for a in aggs {
                    visit_expr(&a.arg, out);
                }
                input.subquery_refs(out);
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.subquery_refs(out)
            }
        }
    }

    /// Multi-line indented explain string.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan { table, schema } => {
                out.push_str(&format!("{pad}Scan {table} {schema}\n"));
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| format!("{e} AS {}", f.name))
                    .collect();
                out.push_str(&format!("{pad}Project {}\n", items.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l} = {r}")).collect();
                out.push_str(&format!("{pad}Join on {}\n", conds.join(" AND ")));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let g: Vec<String> = group_by.iter().map(|e| e.to_string()).collect();
                let a: Vec<String> = aggs.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "{pad}Aggregate group=[{}] aggs=[{}]\n",
                    g.join(", "),
                    a.join(", ")
                ));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Sort { input, keys } => {
                let k: Vec<String> = keys
                    .iter()
                    .map(|(i, desc)| format!("#{i}{}", if *desc { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort {}\n", k.join(", ")));
                input.explain_into(out, depth + 1);
            }
            LogicalPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// What a subquery's output means to its consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubqueryKind {
    /// A (possibly grouped, after decorrelation) scalar: consumers look up
    /// one value by correlation key.
    Scalar,
    /// A filtered group set: consumers test key membership.
    Membership,
}

/// One aggregate subquery in the graph.
#[derive(Debug, Clone)]
pub struct SubqueryPlan {
    pub plan: LogicalPlan,
    pub kind: SubqueryKind,
}

/// A precision or deadline contract attached to a query (BlinkDB-style).
///
/// `Error` stops at the first mini-batch where every selected aggregate's
/// FPC-corrected confidence interval (at `confidence`) has a half-width of
/// at most `target` times the estimate's magnitude. `Within` adapts the
/// number of mini-batches folded per report so the query finishes before
/// the wall-clock deadline; its stopping batch index is explicitly
/// nondeterministic (everything else stays deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryContract {
    /// `ERROR <p>% CONFIDENCE <c>%`: both stored as fractions in (0, 1).
    Error { target: f64, confidence: f64 },
    /// `WITHIN <n> SECONDS`: a positive wall-clock budget.
    Within { seconds: f64 },
}

/// The root plan plus all aggregate subqueries it (transitively)
/// references. `subqueries[i]` is referenced as `SubqueryId(i)`.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    pub subqueries: Vec<SubqueryPlan>,
    pub root: LogicalPlan,
    /// Precision/deadline contract on the root query, if any.
    pub contract: Option<QueryContract>,
}

impl QueryGraph {
    /// A graph with no subqueries.
    pub fn simple(root: LogicalPlan) -> Self {
        QueryGraph {
            subqueries: Vec::new(),
            root,
            contract: None,
        }
    }

    /// Explain the whole graph: subqueries first, then the root.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, sq) in self.subqueries.iter().enumerate() {
            out.push_str(&format!("-- subquery sq{i} ({:?}) --\n", sq.kind));
            out.push_str(&sq.plan.explain());
        }
        out.push_str("-- root --\n");
        out.push_str(&self.root.explain());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::DataType;

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "sessions".into(),
            schema: Arc::new(Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("buffer_time", DataType::Float),
                ("play_time", DataType::Float),
            ])),
        }
    }

    fn sbi_graph() -> QueryGraph {
        // Inner: SELECT AVG(buffer_time) FROM sessions
        let inner = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Avg,
                arg: Expr::col(1),
                name: "avg_buffer".into(),
            }],
            schema: Arc::new(Schema::from_pairs(&[("avg_buffer", DataType::Float)])),
        };
        // Outer: SELECT AVG(play_time) WHERE buffer_time > $sq0
        let filter = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::gt(
                Expr::col(1),
                Expr::ScalarRef {
                    id: SubqueryId(0),
                    key: vec![],
                },
            ),
        };
        let root = LogicalPlan::Aggregate {
            input: Box::new(filter),
            group_by: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Avg,
                arg: Expr::col(2),
                name: "avg_play".into(),
            }],
            schema: Arc::new(Schema::from_pairs(&[("avg_play", DataType::Float)])),
        };
        QueryGraph {
            subqueries: vec![SubqueryPlan {
                plan: inner,
                kind: SubqueryKind::Scalar,
            }],
            root,
            contract: None,
        }
    }

    #[test]
    fn schema_propagation() {
        let g = sbi_graph();
        assert_eq!(g.root.schema().field(0).name, "avg_play");
        let filter = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::lit(true),
        };
        assert_eq!(filter.schema().len(), 3);
    }

    #[test]
    fn subquery_refs_collected() {
        let g = sbi_graph();
        let mut refs = Vec::new();
        g.root.subquery_refs(&mut refs);
        assert_eq!(refs, vec![SubqueryId(0)]);
        let mut refs = Vec::new();
        g.subqueries[0].plan.subquery_refs(&mut refs);
        assert!(refs.is_empty());
    }

    #[test]
    fn scanned_tables() {
        let mut tables = Vec::new();
        sbi_graph().root.scanned_tables(&mut tables);
        assert_eq!(tables, vec!["sessions".to_string()]);
    }

    #[test]
    fn explain_renders() {
        let s = sbi_graph().explain();
        assert!(s.contains("subquery sq0"));
        assert!(s.contains("Aggregate group=[] aggs=[AVG(#2) AS avg_play]"));
        assert!(s.contains("Filter (#1 > $sq0)"));
        assert!(s.contains("Scan sessions"));
    }
}
