//! Query plans for G-OLA.
//!
//! Two plan layers:
//!
//! * [`logical`] — a conventional resolved logical plan ([`LogicalPlan`]),
//!   plus the [`QueryGraph`] that ties the root plan to its (possibly
//!   nested, possibly decorrelated) aggregate subqueries.
//! * [`meta`] — the **meta query plan** (paper §4: the online query
//!   compiler's output). The compiler decomposes the query graph into
//!   maximal SPJA **lineage blocks** (paper §3.3): within a block, lineage
//!   (a projection of the needed source columns) is propagated with each
//!   cached uncertain tuple; across blocks only finalized aggregate values
//!   and their variation ranges flow.

pub mod logical;
pub mod meta;

pub use logical::{AggCall, LogicalPlan, QueryContract, QueryGraph, SubqueryKind, SubqueryPlan};
pub use meta::{Block, BlockRole, DimJoin, MetaPlan};
