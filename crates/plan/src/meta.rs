//! The meta query plan: lineage-block decomposition (paper §3.3, §4).
//!
//! The online query compiler turns a [`QueryGraph`] into a [`MetaPlan`]: a
//! topologically-ordered list of **lineage blocks**. A lineage block is a
//! maximal SPJA unit — scans (one streamed fact table plus broadcast
//! dimension joins), conjunctive filters, one hash aggregation, HAVING
//! conjuncts, and a post-projection. Within a block the executor propagates
//! lineage (the projection of source columns the block needs) with every
//! cached uncertain tuple; across blocks only finalized aggregate values
//! and their variation ranges are broadcast — exactly the paper's bound on
//! lineage-propagation cost.

use std::sync::Arc;

use gola_common::{Error, Result, Schema};
use gola_expr::{Expr, SubqueryId};

use crate::logical::{AggCall, LogicalPlan, QueryContract, QueryGraph, SubqueryKind};

/// A broadcast join against a small, fully-materialized dimension table.
#[derive(Debug, Clone)]
pub struct DimJoin {
    pub table: String,
    pub dim_schema: Arc<Schema>,
    /// Join-key expressions over the *accumulated* left schema (fact ++
    /// previously joined dims).
    pub fact_keys: Vec<Expr>,
    /// Join-key expressions over the dimension schema.
    pub dim_keys: Vec<Expr>,
}

/// What a block's output feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockRole {
    /// Scalar subquery: consumers look up one output value per group key.
    Scalar,
    /// Membership subquery: consumers test whether a key survives the
    /// block's HAVING filter.
    Membership,
    /// The root query: output rows go to the user.
    Root,
}

/// One lineage block — a streaming SPJA unit.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of this block in [`MetaPlan::blocks`]. Subquery `SubqueryId(i)`
    /// is block `i`; the root is the last block.
    pub id: usize,
    pub role: BlockRole,
    /// The base table this block scans.
    pub source_table: String,
    /// `true` if `source_table` is the streamed fact table; static blocks
    /// are computed exactly, once, before streaming starts.
    pub is_streaming: bool,
    /// Broadcast dimension joins, applied left-to-right.
    pub dims: Vec<DimJoin>,
    /// Schema of the joined source row (fact ++ dims).
    pub source_schema: Arc<Schema>,
    /// WHERE conjuncts over `source_schema` (may reference subqueries).
    pub filters: Vec<Expr>,
    /// Group-key expressions over `source_schema` (deterministic only).
    pub group_by: Vec<Expr>,
    /// Aggregates over `source_schema` (deterministic arguments only).
    pub aggs: Vec<AggCall>,
    /// Schema of a group row: group columns then aggregate columns.
    pub agg_row_schema: Arc<Schema>,
    /// HAVING conjuncts over `agg_row_schema` (may reference subqueries).
    pub having: Vec<Expr>,
    /// Final projection over `agg_row_schema`; `None` keeps group rows.
    pub post_project: Option<Vec<Expr>>,
    /// Output schema (after `post_project`).
    pub output_schema: Arc<Schema>,
    /// Sort keys over `output_schema` (root only).
    pub order_by: Vec<(usize, bool)>,
    pub limit: Option<usize>,
    /// Subqueries this block's expressions reference.
    pub deps: Vec<SubqueryId>,
    /// The lineage projection: indices of `source_schema` columns that must
    /// be cached with uncertain tuples (everything group-by, aggregate
    /// arguments and filters touch).
    pub lineage_cols: Vec<usize>,
}

impl Block {
    /// `true` if any filter or having conjunct references a subquery — i.e.
    /// this block needs uncertain/deterministic partitioning at all.
    pub fn has_uncertain_predicates(&self) -> bool {
        self.filters.iter().any(Expr::has_subquery_ref)
            || self.having.iter().any(Expr::has_subquery_ref)
    }
}

/// The compiled meta plan: blocks in a valid execution (topological) order.
#[derive(Debug, Clone)]
pub struct MetaPlan {
    pub blocks: Vec<Block>,
    /// Index of the root block in `blocks`.
    pub root: usize,
    /// Topological execution order (dependencies first).
    pub order: Vec<usize>,
    /// The streamed fact table.
    pub stream_table: String,
    /// Precision/deadline contract carried down from the query graph.
    pub contract: Option<QueryContract>,
}

impl MetaPlan {
    /// Compile a query graph into lineage blocks, streaming `stream_table`.
    pub fn compile(graph: &QueryGraph, stream_table: &str) -> Result<MetaPlan> {
        let mut blocks = Vec::with_capacity(graph.subqueries.len() + 1);
        for (i, sq) in graph.subqueries.iter().enumerate() {
            let role = match sq.kind {
                SubqueryKind::Scalar => BlockRole::Scalar,
                SubqueryKind::Membership => BlockRole::Membership,
            };
            blocks.push(blockify(&sq.plan, i, role, stream_table)?);
        }
        let root_id = blocks.len();
        blocks.push(blockify(
            &graph.root,
            root_id,
            BlockRole::Root,
            stream_table,
        )?);

        // Static blocks must not depend on streaming blocks: their output is
        // computed once, before any mini-batch.
        for b in &blocks {
            if !b.is_streaming {
                for dep in &b.deps {
                    if blocks[dep.0].is_streaming {
                        return Err(Error::plan(format!(
                            "static block {} (over '{}') depends on streaming subquery {dep}; \
                             mark '{}' as the streamed table or denormalize",
                            b.id, b.source_table, b.source_table
                        )));
                    }
                }
            }
        }

        let order = topo_order(&blocks)?;
        Ok(MetaPlan {
            blocks,
            root: root_id,
            order,
            stream_table: stream_table.to_string(),
            contract: graph.contract,
        })
    }

    pub fn root_block(&self) -> &Block {
        &self.blocks[self.root]
    }

    /// Group blocks into dependency-ordered **wavefronts**: wave `w` holds
    /// every block whose longest dependency chain has length `w`. All blocks
    /// in one wave are mutually independent, so the executor may ingest them
    /// in parallel; waves execute in order. Block ids ascend within a wave,
    /// so the flattened wavefront order is deterministic and is itself a
    /// valid topological order.
    pub fn wavefronts(&self) -> Vec<Vec<usize>> {
        let n = self.blocks.len();
        let mut depth = vec![0usize; n];
        // `self.order` is topological, so every dependency's depth is final
        // by the time its consumer is visited.
        for &i in &self.order {
            for d in &self.blocks[i].deps {
                depth[i] = depth[i].max(depth[d.0] + 1);
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut waves = vec![Vec::new(); max_depth + 1];
        for (i, &w) in depth.iter().enumerate() {
            waves[w].push(i);
        }
        waves
    }

    /// Human-readable rendering of the block structure.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for &i in &self.order {
            let b = &self.blocks[i];
            out.push_str(&format!(
                "block {} [{:?}{}] scan={} dims={:?}\n",
                b.id,
                b.role,
                if b.is_streaming {
                    ", streaming"
                } else {
                    ", static"
                },
                b.source_table,
                b.dims.iter().map(|d| d.table.as_str()).collect::<Vec<_>>(),
            ));
            for f in &b.filters {
                out.push_str(&format!("  where {f}\n"));
            }
            if !b.group_by.is_empty() {
                let g: Vec<String> = b.group_by.iter().map(|e| e.to_string()).collect();
                out.push_str(&format!("  group by {}\n", g.join(", ")));
            }
            for a in &b.aggs {
                out.push_str(&format!("  agg {a}\n"));
            }
            for h in &b.having {
                out.push_str(&format!("  having {h}\n"));
            }
            if let Some(p) = &b.post_project {
                let items: Vec<String> = p.iter().map(|e| e.to_string()).collect();
                out.push_str(&format!("  project {}\n", items.join(", ")));
            }
            if !b.deps.is_empty() {
                let d: Vec<String> = b.deps.iter().map(|d| d.to_string()).collect();
                out.push_str(&format!("  depends on {}\n", d.join(", ")));
            }
        }
        out
    }
}

/// Pattern-match one logical plan into an SPJA lineage block.
fn blockify(plan: &LogicalPlan, id: usize, role: BlockRole, stream_table: &str) -> Result<Block> {
    let mut node = plan;
    let mut limit = None;
    let mut order_by: Vec<(usize, bool)> = Vec::new();
    if let LogicalPlan::Limit { input, n } = node {
        limit = Some(*n);
        node = input;
    }
    if let LogicalPlan::Sort { input, keys } = node {
        order_by = keys.clone();
        node = input;
    }
    let (post_project, output_schema_from_project) = match node {
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            node = input;
            (Some(exprs.clone()), Some(Arc::clone(schema)))
        }
        _ => (None, None),
    };
    let mut having = Vec::new();
    while let LogicalPlan::Filter { input, predicate } = node {
        if matches!(peel_filters(input), LogicalPlan::Aggregate { .. }) {
            split_conjuncts(predicate, &mut having);
            node = input;
        } else {
            break;
        }
    }
    let (group_by, aggs, agg_row_schema, mut node) = match node {
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            schema,
        } => (
            group_by.clone(),
            aggs.clone(),
            Arc::clone(schema),
            input.as_ref(),
        ),
        _ => {
            return Err(Error::plan(
                "online execution requires an aggregate query (SPJA block)".to_string(),
            ))
        }
    };
    let mut filters = Vec::new();
    while let LogicalPlan::Filter { input, predicate } = node {
        split_conjuncts(predicate, &mut filters);
        node = input;
    }
    // Flatten the join spine: Join(Join(Scan(fact), Scan(d1)), Scan(d2)).
    let mut dims_rev: Vec<DimJoin> = Vec::new();
    let (source_table, fact_schema) = loop {
        match node {
            LogicalPlan::Scan { table, schema } => break (table.clone(), Arc::clone(schema)),
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let (dim_table, dim_schema) = match right.as_ref() {
                    LogicalPlan::Scan { table, schema } => (table.clone(), Arc::clone(schema)),
                    _ => {
                        return Err(Error::plan(
                            "join right side must be a base dimension table scan; \
                             list the fact table first in FROM"
                                .to_string(),
                        ))
                    }
                };
                if dim_table.eq_ignore_ascii_case(stream_table) {
                    return Err(Error::plan(format!(
                        "streamed table '{stream_table}' must be the first table in FROM"
                    )));
                }
                if on.is_empty() {
                    return Err(Error::plan(format!(
                        "join with '{dim_table}' needs at least one equi-join condition"
                    )));
                }
                dims_rev.push(DimJoin {
                    table: dim_table,
                    dim_schema,
                    fact_keys: on.iter().map(|(l, _)| l.clone()).collect(),
                    dim_keys: on.iter().map(|(_, r)| r.clone()).collect(),
                });
                node = left;
            }
            other => {
                return Err(Error::plan(format!(
                    "unsupported operator inside an SPJA block: {}",
                    other.explain().lines().next().unwrap_or("?")
                )))
            }
        }
    };
    dims_rev.reverse();
    let dims = dims_rev;

    // Source schema accumulates fact ++ each dim.
    let mut source_schema = (*fact_schema).clone();
    for d in &dims {
        source_schema = source_schema.join(&d.dim_schema);
    }
    let source_schema = Arc::new(source_schema);

    // Validate: group keys and aggregate args must be deterministic.
    for g in &group_by {
        if g.has_subquery_ref() {
            return Err(Error::plan(format!(
                "GROUP BY expression {g} may not reference a subquery"
            )));
        }
    }
    for a in &aggs {
        if a.arg.has_subquery_ref() {
            return Err(Error::plan(format!(
                "aggregate argument {} may not reference a subquery \
                 (delta maintenance would be unbounded)",
                a.arg
            )));
        }
    }
    if role == BlockRole::Scalar {
        let out_cols = output_schema_from_project
            .as_ref()
            .map(|s| s.len())
            .unwrap_or(agg_row_schema.len() - group_by.len());
        if out_cols != 1 {
            return Err(Error::plan(format!(
                "scalar subquery must produce exactly one column, got {out_cols}"
            )));
        }
    }
    if role == BlockRole::Membership && group_by.is_empty() {
        return Err(Error::plan(
            "membership (IN) subquery must have a GROUP BY key".to_string(),
        ));
    }

    // Dependencies: every subquery referenced from filters/having/project.
    let mut deps = Vec::new();
    for e in filters.iter().chain(having.iter()) {
        e.collect_subquery_refs(&mut deps);
    }
    if let Some(p) = &post_project {
        for e in p {
            e.collect_subquery_refs(&mut deps);
        }
    }
    deps.sort_unstable();
    deps.dedup();
    if deps.contains(&SubqueryId(id)) {
        return Err(Error::plan(format!("block {id} references itself")));
    }

    // Lineage projection: columns of source_schema needed downstream.
    let mut lineage_cols = Vec::new();
    for e in group_by
        .iter()
        .chain(aggs.iter().map(|a| &a.arg))
        .chain(filters.iter())
    {
        e.collect_columns(&mut lineage_cols);
    }
    lineage_cols.sort_unstable();

    let output_schema = match (&post_project, output_schema_from_project) {
        (Some(_), Some(s)) => s,
        _ => Arc::clone(&agg_row_schema),
    };
    let is_streaming = source_table.eq_ignore_ascii_case(stream_table);

    Ok(Block {
        id,
        role,
        source_table,
        is_streaming,
        dims,
        source_schema,
        filters,
        group_by,
        aggs,
        agg_row_schema,
        having,
        post_project,
        output_schema,
        order_by,
        limit,
        deps,
        lineage_cols,
    })
}

/// Skip over stacked filters to find the underlying node.
fn peel_filters(mut plan: &LogicalPlan) -> &LogicalPlan {
    while let LogicalPlan::Filter { input, .. } = plan {
        plan = input;
    }
    plan
}

/// Split a predicate into top-level AND conjuncts.
fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: gola_expr::BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Kahn topological sort over block dependencies.
fn topo_order(blocks: &[Block]) -> Result<Vec<usize>> {
    let n = blocks.len();
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in blocks {
        for d in &b.deps {
            if d.0 >= n {
                return Err(Error::plan(format!(
                    "block {} references unknown {d}",
                    b.id
                )));
            }
            indegree[b.id] += 1;
            consumers[d.0].push(b.id);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &c in &consumers[i] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
            }
        }
    }
    if order.len() != n {
        return Err(Error::plan("cyclic subquery dependencies".to_string()));
    }
    // Stable-ish: prefer ascending ids among independents for determinism.
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::SubqueryPlan;
    use gola_agg::AggKind;
    use gola_common::DataType;

    fn sessions_schema() -> Arc<Schema> {
        Arc::new(Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
        ]))
    }

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: "sessions".into(),
            schema: sessions_schema(),
        }
    }

    fn agg(input: LogicalPlan, col: usize, name: &str) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(input),
            group_by: vec![],
            aggs: vec![AggCall {
                kind: AggKind::Avg,
                arg: Expr::col(col),
                name: name.into(),
            }],
            schema: Arc::new(Schema::from_pairs(&[(name, DataType::Float)])),
        }
    }

    fn sbi() -> QueryGraph {
        let inner = agg(scan(), 1, "avg_buffer");
        let outer = agg(
            LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::gt(
                    Expr::col(1),
                    Expr::ScalarRef {
                        id: SubqueryId(0),
                        key: vec![],
                    },
                ),
            },
            2,
            "avg_play",
        );
        QueryGraph {
            subqueries: vec![SubqueryPlan {
                plan: inner,
                kind: SubqueryKind::Scalar,
            }],
            root: outer,
            contract: None,
        }
    }

    #[test]
    fn sbi_compiles_to_two_blocks() {
        let mp = MetaPlan::compile(&sbi(), "sessions").unwrap();
        assert_eq!(mp.blocks.len(), 2);
        assert_eq!(mp.root, 1);
        // Inner block first in topo order.
        assert_eq!(mp.order, vec![0, 1]);
        let inner = &mp.blocks[0];
        assert!(inner.is_streaming);
        assert!(inner.deps.is_empty());
        assert!(!inner.has_uncertain_predicates());
        let root = &mp.blocks[1];
        assert_eq!(root.deps, vec![SubqueryId(0)]);
        assert!(root.has_uncertain_predicates());
        // Lineage: the root needs buffer_time (filter) and play_time (agg).
        assert_eq!(root.lineage_cols, vec![1, 2]);
    }

    #[test]
    fn wavefronts_respect_dependency_depth() {
        let mp = MetaPlan::compile(&sbi(), "sessions").unwrap();
        // Inner block (no deps) in wave 0; root (depends on it) in wave 1.
        assert_eq!(mp.wavefronts(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn wavefront_flattening_is_topological() {
        let mp = MetaPlan::compile(&sbi(), "sessions").unwrap();
        let flat: Vec<usize> = mp.wavefronts().into_iter().flatten().collect();
        let pos = |b: usize| flat.iter().position(|&x| x == b).unwrap();
        for blk in &mp.blocks {
            for d in &blk.deps {
                assert!(pos(d.0) < pos(blk.id));
            }
        }
        assert_eq!(flat.len(), mp.blocks.len());
    }

    #[test]
    fn non_aggregate_root_rejected() {
        let g = QueryGraph::simple(scan());
        let err = MetaPlan::compile(&g, "sessions").unwrap_err();
        assert!(err.to_string().contains("aggregate"));
    }

    #[test]
    fn group_by_with_subquery_rejected() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![],
            }],
            aggs: vec![AggCall {
                kind: AggKind::Count,
                arg: Expr::lit(1i64),
                name: "c".into(),
            }],
            schema: Arc::new(Schema::from_pairs(&[
                ("g", DataType::Float),
                ("c", DataType::Float),
            ])),
        };
        let g = QueryGraph {
            subqueries: vec![SubqueryPlan {
                plan: agg(scan(), 1, "x"),
                kind: SubqueryKind::Scalar,
            }],
            root: plan,
            contract: None,
        };
        assert!(MetaPlan::compile(&g, "sessions").is_err());
    }

    #[test]
    fn having_split_into_conjuncts() {
        let aggregate = LogicalPlan::Aggregate {
            input: Box::new(scan()),
            group_by: vec![Expr::col(0)],
            aggs: vec![AggCall {
                kind: AggKind::Sum,
                arg: Expr::col(2),
                name: "s".into(),
            }],
            schema: Arc::new(Schema::from_pairs(&[
                ("session_id", DataType::Int),
                ("s", DataType::Float),
            ])),
        };
        let filtered = LogicalPlan::Filter {
            input: Box::new(aggregate),
            predicate: Expr::and(
                Expr::gt(Expr::col(1), Expr::lit(300.0)),
                Expr::lt(Expr::col(1), Expr::lit(900.0)),
            ),
        };
        let g = QueryGraph::simple(filtered);
        let mp = MetaPlan::compile(&g, "sessions").unwrap();
        let b = mp.root_block();
        assert_eq!(b.having.len(), 2);
        assert!(b.filters.is_empty());
        assert_eq!(b.group_by.len(), 1);
    }

    #[test]
    fn dim_join_flattening() {
        let dim_schema = Arc::new(Schema::from_pairs(&[
            ("ad_id", DataType::Int),
            ("ad_name", DataType::Str),
        ]));
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(LogicalPlan::Scan {
                table: "ads".into(),
                schema: Arc::clone(&dim_schema),
            }),
            on: vec![(Expr::col(0), Expr::col(0))],
            schema: Arc::new(sessions_schema().join(&dim_schema)),
        };
        let g = QueryGraph::simple(agg(join, 2, "avg_play"));
        let mp = MetaPlan::compile(&g, "sessions").unwrap();
        let b = mp.root_block();
        assert_eq!(b.dims.len(), 1);
        assert_eq!(b.dims[0].table, "ads");
        assert_eq!(b.source_schema.len(), 5);
        assert!(b.is_streaming);
    }

    #[test]
    fn fact_table_must_lead_joins() {
        let join = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan {
                table: "ads".into(),
                schema: Arc::new(Schema::from_pairs(&[("ad_id", DataType::Int)])),
            }),
            right: Box::new(scan()),
            on: vec![(Expr::col(0), Expr::col(0))],
            schema: sessions_schema(),
        };
        let g = QueryGraph::simple(agg(join, 1, "x"));
        let err = MetaPlan::compile(&g, "sessions").unwrap_err();
        assert!(err.to_string().contains("first table in FROM"), "{err}");
    }

    #[test]
    fn static_block_depending_on_streaming_rejected() {
        // Inner streams `sessions`; outer scans a different (static) table
        // and references the inner → unsupported.
        let inner = agg(scan(), 1, "avg_buffer");
        let other = LogicalPlan::Scan {
            table: "ads".into(),
            schema: Arc::new(Schema::from_pairs(&[("x", DataType::Float)])),
        };
        let outer = agg(
            LogicalPlan::Filter {
                input: Box::new(other),
                predicate: Expr::gt(
                    Expr::col(0),
                    Expr::ScalarRef {
                        id: SubqueryId(0),
                        key: vec![],
                    },
                ),
            },
            0,
            "a",
        );
        let g = QueryGraph {
            subqueries: vec![SubqueryPlan {
                plan: inner,
                kind: SubqueryKind::Scalar,
            }],
            root: outer,
            contract: None,
        };
        let err = MetaPlan::compile(&g, "sessions").unwrap_err();
        assert!(err.to_string().contains("static block"), "{err}");
    }

    #[test]
    fn membership_requires_group_key() {
        let inner = agg(scan(), 1, "avg_buffer"); // no GROUP BY
        let outer = agg(
            LogicalPlan::Filter {
                input: Box::new(scan()),
                predicate: Expr::InSubquery {
                    id: SubqueryId(0),
                    key: vec![Expr::col(0)],
                    negated: false,
                },
            },
            2,
            "avg_play",
        );
        let g = QueryGraph {
            subqueries: vec![SubqueryPlan {
                plan: inner,
                kind: SubqueryKind::Membership,
            }],
            root: outer,
            contract: None,
        };
        assert!(MetaPlan::compile(&g, "sessions").is_err());
    }

    #[test]
    fn explain_lists_blocks() {
        let mp = MetaPlan::compile(&sbi(), "sessions").unwrap();
        let s = mp.explain();
        assert!(s.contains("block 0 [Scalar, streaming]"));
        assert!(s.contains("block 1 [Root, streaming]"));
        assert!(s.contains("depends on sq0"));
    }
}
