//! Property tests for the SQL front end: the lexer and parser must never
//! panic on arbitrary input, valid expressions round-trip through
//! parse→bind→display deterministically, and structured query generation
//! always binds.

use std::sync::Arc;

use gola_common::{DataType, Row, Schema, Value};
use gola_sql::{lexer::tokenize, parse_select, Binder};
use gola_storage::{Catalog, Table};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("s", DataType::Str),
    ]));
    let mut c = Catalog::new();
    c.register(
        "t",
        Arc::new(Table::new_unchecked(
            schema,
            vec![Row::new(vec![
                Value::Int(1),
                Value::Float(1.0),
                Value::Float(2.0),
                Value::str("a"),
            ])],
        )),
    )
    .unwrap();
    c
}

/// Grammar for small well-formed numeric expressions over columns x/y/k.
fn arb_num_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("k".to_string()),
        (0i32..100).prop_map(|i| i.to_string()),
        (0i32..100).prop_map(|i| format!("{}.5", i)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*"), Just("/")],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

proptest! {
    /// Total robustness: arbitrary byte soup must produce Ok or Err, never
    /// a panic, from both the lexer and the parser.
    #[test]
    fn lexer_never_panics(input in "\\PC{0,120}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parse_select(&input);
    }

    /// SQL-looking garbage (keywords + symbols soup) must not panic either.
    #[test]
    fn parser_never_panics_on_sqlish_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("HAVING"), Just("IN"), Just("("), Just(")"),
                Just(","), Just("AVG"), Just("SUM"), Just("t"), Just("x"),
                Just(">"), Just("<"), Just("="), Just("1"), Just("'s'"),
                Just("AND"), Just("OR"), Just("NOT"), Just("NULL"), Just("*"),
            ],
            0..25,
        )
    ) {
        let sql = words.join(" ");
        let _ = parse_select(&sql);
    }

    /// Generated well-formed aggregate queries always parse and bind.
    #[test]
    fn well_formed_queries_bind(
        agg in prop_oneof![Just("AVG"), Just("SUM"), Just("MIN"), Just("MAX"), Just("COUNT")],
        arg in arb_num_expr(),
        pred in arb_num_expr(),
        threshold in -100.0f64..100.0,
        grouped in any::<bool>(),
    ) {
        let sql = if grouped {
            format!(
                "SELECT k, {agg}({arg}) FROM t WHERE {pred} > {threshold} GROUP BY k"
            )
        } else {
            format!("SELECT {agg}({arg}) FROM t WHERE {pred} > {threshold}")
        };
        let cat = catalog();
        let stmt = parse_select(&sql).expect("generated SQL must parse");
        let graph = Binder::new(&cat).bind(&stmt);
        prop_assert!(graph.is_ok(), "{sql}: {:?}", graph.err());
    }

    /// Nested variants with a scalar subquery always parse, bind, and
    /// blockify.
    #[test]
    fn well_formed_nested_queries_compile(
        outer in arb_num_expr(),
        inner in arb_num_expr(),
        factor in 0.1f64..4.0,
    ) {
        let sql = format!(
            "SELECT AVG({outer}) FROM t WHERE x > {factor} * (SELECT AVG({inner}) FROM t)"
        );
        let cat = catalog();
        let graph = gola_sql::compile(&sql, &cat);
        prop_assert!(graph.is_ok(), "{sql}: {:?}", graph.err());
        let meta = gola_plan::MetaPlan::compile(&graph.unwrap(), "t");
        prop_assert!(meta.is_ok(), "{sql}: {:?}", meta.err());
    }

    /// Binding is deterministic: the same SQL yields the same plan display.
    #[test]
    fn binding_is_deterministic(arg in arb_num_expr(), pred in arb_num_expr()) {
        let sql = format!("SELECT SUM({arg}) FROM t WHERE {pred} >= 0 GROUP BY k");
        let cat = catalog();
        let a = gola_sql::compile(&sql, &cat).map(|g| g.explain());
        let b = gola_sql::compile(&sql, &cat).map(|g| g.explain());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(_), Err(_)) => {}
            other => prop_assert!(false, "nondeterministic outcome {other:?}"),
        }
    }
}
