//! Negative-path coverage for the SQL front end: malformed queries must
//! fail with *stable, specific* diagnostics at the right layer.
//!
//! Each assertion pins the user-visible error text (via substring, so
//! positions and quoting may evolve without churn) and the layer prefix
//! (`lex error` / `parse error` / `bind error`), so an accidental change
//! to a diagnostic — or a malformed query suddenly compiling — fails
//! loudly here instead of surfacing as a confusing message downstream.

use std::sync::Arc;

use gola_common::{DataType, Error, Row, Schema, Value};
use gola_sql::{compile, lexer::tokenize};
use gola_storage::{Catalog, Table};

fn catalog() -> Catalog {
    let schema = Arc::new(Schema::from_pairs(&[
        ("k", DataType::Int),
        ("x", DataType::Float),
        ("s", DataType::Str),
    ]));
    let row = Row::new(vec![Value::Int(1), Value::Float(1.0), Value::str("a")]);
    let mut c = Catalog::new();
    c.register(
        "t",
        Arc::new(Table::new_unchecked(Arc::clone(&schema), vec![row.clone()])),
    )
    .unwrap();
    c.register("u", Arc::new(Table::new_unchecked(schema, vec![row])))
        .unwrap();
    c
}

/// Compile `sql` and return the rendered error (panics if it compiles).
fn diag(sql: &str) -> String {
    match compile(sql, &catalog()) {
        Ok(_) => panic!("expected failure, but compiled: {sql}"),
        Err(e) => e.to_string(),
    }
}

#[track_caller]
fn assert_diag(sql: &str, layer: &str, needle: &str) {
    let msg = diag(sql);
    assert!(
        msg.starts_with(layer),
        "wrong layer for {sql:?}: got {msg:?}, want prefix {layer:?}"
    );
    assert!(
        msg.contains(needle),
        "unstable diagnostic for {sql:?}: got {msg:?}, want substring {needle:?}"
    );
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_unterminated_string() {
    assert_diag(
        "SELECT COUNT(*) FROM t WHERE s = 'oops",
        "lex error",
        "unterminated '-quoted literal",
    );
    assert_diag(
        "SELECT COUNT(*) FROM \"t",
        "lex error",
        "unterminated \"-quoted literal",
    );
}

#[test]
fn lexer_unexpected_character() {
    assert_diag(
        "SELECT COUNT(*) FROM t WHERE x ? 1",
        "lex error",
        "unexpected character '?'",
    );
}

#[test]
fn lexer_invalid_number() {
    // A dangling exponent is consumed into the number token and fails the
    // float parse ("1.2.3" instead lexes as two valid numbers).
    assert_diag(
        "SELECT SUM(x) FROM t WHERE x > 1.5e",
        "lex error",
        "invalid number '1.5e'",
    );
}

#[test]
fn lexer_reports_byte_position() {
    let Err(Error::Lex { pos, .. }) = tokenize("SELECT @") else {
        panic!("expected a lex error");
    };
    assert_eq!(pos, 7);
}

// --------------------------------------------------------------- parser

#[test]
fn parser_missing_from() {
    assert_diag("SELECT COUNT(*) t", "parse error", "expected FROM");
}

#[test]
fn parser_expected_identifier() {
    assert_diag(
        "SELECT COUNT(*) FROM 42",
        "parse error",
        "expected identifier",
    );
}

#[test]
fn parser_unexpected_token_in_expression() {
    assert_diag(
        "SELECT SUM(x) FROM t WHERE > 1",
        "parse error",
        "unexpected token",
    );
}

#[test]
fn parser_trailing_tokens() {
    assert_diag(
        "SELECT COUNT(*) FROM t extra garbage",
        "parse error",
        "unexpected trailing tokens",
    );
}

#[test]
fn parser_between_requires_and() {
    assert_diag(
        "SELECT COUNT(*) FROM t WHERE x BETWEEN 1 2",
        "parse error",
        "expected AND",
    );
}

// ------------------------------------------------------------ contracts

#[test]
fn contract_negative_error_target() {
    assert_diag(
        "SELECT AVG(x) FROM t ERROR -5%",
        "parse error",
        "ERROR expects a percentage in (0, 100), got -5",
    );
}

#[test]
fn contract_confidence_over_100() {
    assert_diag(
        "SELECT AVG(x) FROM t ERROR 5% CONFIDENCE 120%",
        "parse error",
        "CONFIDENCE expects a percentage in (0, 100), got 120",
    );
}

#[test]
fn contract_zero_deadline() {
    assert_diag(
        "SELECT AVG(x) FROM t WITHIN 0 SECONDS",
        "parse error",
        "WITHIN expects a positive number of seconds",
    );
}

#[test]
fn contract_missing_percent_sign() {
    assert_diag(
        "SELECT AVG(x) FROM t ERROR 5",
        "parse error",
        "ERROR expects a percentage (e.g. 5%)",
    );
}

#[test]
fn contract_on_non_aggregate_query() {
    assert_diag(
        "SELECT x FROM t ERROR 5%",
        "bind error",
        "ERROR/WITHIN contracts require an aggregate query",
    );
    assert_diag(
        "SELECT x FROM t WITHIN 1 SECONDS",
        "bind error",
        "ERROR/WITHIN contracts require an aggregate query",
    );
}

#[test]
fn contract_in_subquery_rejected() {
    assert_diag(
        "SELECT AVG(x) FROM t WHERE x > (SELECT AVG(x) FROM u ERROR 5%)",
        "bind error",
        "ERROR/WITHIN contracts are not allowed in subqueries",
    );
    assert_diag(
        "SELECT AVG(x) FROM t WHERE k IN (SELECT k FROM u GROUP BY k WITHIN 1 SECONDS)",
        "bind error",
        "ERROR/WITHIN contracts are not allowed in subqueries",
    );
}

// --------------------------------------------------------------- binder

#[test]
fn binder_unknown_column() {
    assert_diag(
        "SELECT SUM(nope) FROM t",
        "bind error",
        "unknown column 'nope'",
    );
}

#[test]
fn binder_unknown_table_alias() {
    assert_diag(
        "SELECT SUM(z.x) FROM t",
        "bind error",
        "unknown table or alias 'z'",
    );
}

#[test]
fn binder_ambiguous_column() {
    // `x` exists in both joined tables.
    assert_diag(
        "SELECT COUNT(*) FROM t JOIN u ON t.k = u.k WHERE x > 1",
        "bind error",
        "ambiguous column 'x'",
    );
}

#[test]
fn binder_aggregate_in_where() {
    assert_diag(
        "SELECT COUNT(*) FROM t WHERE SUM(x) > 10",
        "bind error",
        "aggregate functions are not allowed in WHERE",
    );
}

#[test]
fn binder_having_without_group() {
    assert_diag(
        "SELECT x FROM t HAVING x > 1",
        "bind error",
        "HAVING requires GROUP BY",
    );
}

#[test]
fn binder_unknown_function() {
    // An unknown call name is routed to the scalar-function registry, so
    // the diagnostic says "function", not "aggregate".
    assert_diag(
        "SELECT MEDIAN_ABS(x) FROM t",
        "bind error",
        "unknown function 'MEDIAN_ABS'",
    );
}

#[test]
fn binder_nested_aggregates() {
    assert_diag(
        "SELECT SUM(AVG(x)) FROM t",
        "bind error",
        "nested aggregate calls are not allowed",
    );
}

#[test]
fn binder_in_subquery_arity() {
    assert_diag(
        "SELECT COUNT(*) FROM t WHERE k IN (SELECT k, x FROM u)",
        "bind error",
        "IN subquery must select exactly one column",
    );
}

#[test]
fn binder_unknown_cast_type() {
    // Type names are upper-cased before lookup, and the diagnostic echoes
    // the canonical form.
    assert_diag(
        "SELECT SUM(CAST(x AS decimal128)) FROM t",
        "bind error",
        "unknown type 'DECIMAL128' in CAST",
    );
}
