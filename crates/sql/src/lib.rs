//! SQL front end for G-OLA.
//!
//! A from-scratch pipeline: [`lexer`] → [`parser`] ([`ast`]) → [`binder`],
//! producing a resolved [`gola_plan::QueryGraph`]. The binder performs the
//! work G-OLA's online query compiler needs before blockification:
//!
//! * name resolution against a catalog (with table aliases and qualified
//!   references),
//! * aggregate extraction and GROUP BY validation,
//! * nested scalar subqueries → [`gola_expr::Expr::ScalarRef`],
//! * **decorrelation** of equality-correlated scalar subqueries into
//!   grouped blocks keyed by the correlation columns (TPC-H Q17-style),
//! * `IN (SELECT …)` membership subqueries → grouped membership blocks
//!   (TPC-H Q18-style), and
//! * scalar-function and UDAF resolution from registries.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::Binder;
pub use parser::parse_select;

use gola_common::Result;
use gola_plan::QueryGraph;
use gola_storage::Catalog;

/// One-call convenience: parse and bind `sql` against `catalog` with the
/// default function/UDAF registries.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<QueryGraph> {
    let stmt = parse_select(sql)?;
    Binder::new(catalog).bind(&stmt)
}
