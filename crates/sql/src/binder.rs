//! Name resolution and planning: AST → [`QueryGraph`].
//!
//! The binder resolves identifiers against the catalog, extracts aggregate
//! calls, validates GROUP BY / HAVING shape, performs type checking, and
//! lowers nested subqueries:
//!
//! * `(SELECT agg FROM t)` → a [`SubqueryKind::Scalar`] plan referenced as
//!   [`Expr::ScalarRef`];
//! * `(SELECT agg FROM t WHERE t.k = outer.k)` → **decorrelated** into a
//!   grouped scalar plan (`GROUP BY t.k`) whose consumers look up the group
//!   with `key = [outer.k]` — the transformation that turns TPC-H Q17/Q20
//!   style correlated subqueries into streamable lineage blocks;
//! * `x IN (SELECT k FROM t ... [GROUP BY k HAVING ...])` → a
//!   [`SubqueryKind::Membership`] plan referenced as [`Expr::InSubquery`].

use std::sync::Arc;

use gola_agg::{AggKind, UdafRegistry};
use gola_common::{DataType, Error, Field, Result, Schema, Value};
use gola_expr::types::{infer_type, TypeEnv};
use gola_expr::{BinOp, Expr, FunctionRegistry, SubqueryId, UnaryOp};
use gola_plan::{AggCall, LogicalPlan, QueryGraph, SubqueryKind, SubqueryPlan};
use gola_storage::Catalog;

use crate::ast::*;

/// Binds parsed statements against a catalog and function registries.
pub struct Binder<'a> {
    catalog: &'a Catalog,
    functions: FunctionRegistry,
    udafs: UdafRegistry,
}

impl<'a> Binder<'a> {
    /// Binder with the default built-in registries.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder {
            catalog,
            functions: FunctionRegistry::with_builtins(),
            udafs: UdafRegistry::with_builtins(),
        }
    }

    /// Binder with custom function/UDAF registries.
    pub fn with_registries(
        catalog: &'a Catalog,
        functions: FunctionRegistry,
        udafs: UdafRegistry,
    ) -> Self {
        Binder {
            catalog,
            functions,
            udafs,
        }
    }

    /// Bind a parsed statement into a resolved query graph.
    pub fn bind(&self, stmt: &SelectStmt) -> Result<QueryGraph> {
        if stmt.contract.is_some() && !self.is_aggregate_stmt(stmt) {
            return Err(Error::bind(
                "ERROR/WITHIN contracts require an aggregate query",
            ));
        }
        let mut ctx = BindCtx::default();
        let root = self.bind_select(stmt, None, &mut ctx, &[])?;
        Ok(QueryGraph {
            subqueries: ctx.subqueries,
            root,
            contract: stmt.contract,
        })
    }

    /// `true` if the statement aggregates (any aggregate call in the select
    /// list or HAVING, or a GROUP BY) — mirrors `bind_select`'s
    /// classification, before binding.
    fn is_aggregate_stmt(&self, stmt: &SelectStmt) -> bool {
        !stmt.group_by.is_empty()
            || stmt
                .items
                .iter()
                .any(|i| contains_agg(&i.expr, &self.udafs))
            || stmt
                .having
                .as_ref()
                .is_some_and(|h| contains_agg(h, &self.udafs))
    }

    // -----------------------------------------------------------------
    // SELECT binding
    // -----------------------------------------------------------------

    /// Bind one SELECT. `outer` is the enclosing scope for correlated
    /// subqueries; `extra_group` prepends synthetic (decorrelation) group
    /// keys already bound over this statement's own scope.
    fn bind_select(
        &self,
        stmt: &SelectStmt,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
        extra_group: &[(Expr, String)],
    ) -> Result<LogicalPlan> {
        let (scope, mut plan, join_residue) = self.bind_from(stmt, ctx)?;

        // WHERE — aggregates are not allowed here.
        let mut where_parts: Vec<Expr> = join_residue;
        if let Some(w) = &stmt.where_clause {
            for c in w.conjuncts() {
                if contains_agg(c, &self.udafs) {
                    return Err(Error::bind("aggregate functions are not allowed in WHERE"));
                }
                where_parts.push(self.bind_scalar_expr(c, &scope, outer, ctx)?);
            }
        }
        let source_env = scope.type_env(ctx);
        for p in &where_parts {
            let t = infer_type(p, &source_env)?;
            if t != DataType::Bool && t != DataType::Null {
                return Err(Error::bind(format!(
                    "WHERE predicate must be BOOL, got {t}"
                )));
            }
        }
        if let Some(pred) = Expr::conjunction(where_parts) {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: pred,
            };
        }

        // GROUP BY (with select-alias resolution).
        let mut groups: Vec<(Expr, String)> = extra_group.to_vec();
        for g in &stmt.group_by {
            let (expr, name) = self.resolve_group_expr(g, stmt, &scope, outer, ctx)?;
            groups.push((expr, name));
        }

        let has_agg_items = stmt
            .items
            .iter()
            .any(|i| contains_agg(&i.expr, &self.udafs))
            || stmt
                .having
                .as_ref()
                .is_some_and(|h| contains_agg(h, &self.udafs));
        let is_aggregate_query = has_agg_items || !groups.is_empty();

        if !is_aggregate_query {
            if stmt.having.is_some() {
                return Err(Error::bind("HAVING requires GROUP BY or aggregates"));
            }
            return self.finish_plain_select(stmt, plan, &scope, outer, ctx);
        }

        // Aggregate query: extract aggregate calls from SELECT and HAVING.
        let mut aggs: Vec<AggCall> = Vec::new();
        let mut agg_keys: Vec<String> = Vec::new();
        let mut select_exprs = Vec::with_capacity(stmt.items.len());
        let mut select_names = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            let e = self.bind_projection_expr(
                &item.expr,
                &scope,
                outer,
                ctx,
                &groups,
                &mut aggs,
                &mut agg_keys,
            )?;
            select_exprs.push(e);
            select_names.push(
                item.alias
                    .clone()
                    .unwrap_or_else(|| ast_display(&item.expr)),
            );
        }
        let having_expr = stmt
            .having
            .as_ref()
            .map(|h| {
                self.bind_projection_expr(h, &scope, outer, ctx, &groups, &mut aggs, &mut agg_keys)
            })
            .transpose()?;

        // Aggregate-row schema: group columns then aggregate columns.
        let mut agg_row_fields: Vec<Field> = Vec::with_capacity(groups.len() + aggs.len());
        for (g, name) in &groups {
            agg_row_fields.push(Field::new(name.clone(), infer_type(g, &source_env)?));
        }
        for a in &aggs {
            let arg_t = infer_type(&a.arg, &source_env)?;
            agg_row_fields.push(Field::new(a.name.clone(), a.kind.return_type(arg_t)?));
        }
        let agg_row_schema = Arc::new(Schema::new(agg_row_fields));

        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: groups.iter().map(|(g, _)| g.clone()).collect(),
            aggs,
            schema: Arc::clone(&agg_row_schema),
        };

        // Type-check and attach HAVING.
        let agg_env = type_env_for_schema(&agg_row_schema, ctx);
        if let Some(h) = having_expr {
            let t = infer_type(&h, &agg_env)?;
            if t != DataType::Bool && t != DataType::Null {
                return Err(Error::bind(format!(
                    "HAVING predicate must be BOOL, got {t}"
                )));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }

        // Final projection over the aggregate row.
        let mut out_fields = Vec::with_capacity(select_exprs.len());
        for (e, name) in select_exprs.iter().zip(&select_names) {
            out_fields.push(Field::new(name.clone(), infer_type(e, &agg_env)?));
        }
        let out_schema = Arc::new(Schema::new(out_fields));
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: select_exprs.clone(),
            schema: Arc::clone(&out_schema),
        };

        // ORDER BY / LIMIT.
        if !stmt.order_by.is_empty() {
            let keys = self.resolve_order_keys(stmt, &select_exprs, &out_schema, |ast| {
                // Re-bind an ORDER BY expression in projection mode for
                // display matching against the select list.
                let mut tmp_aggs = Vec::new();
                let mut tmp_keys = agg_keys.clone();
                self.bind_projection_expr(
                    ast,
                    &scope,
                    outer,
                    ctx,
                    &groups,
                    &mut tmp_aggs,
                    &mut tmp_keys,
                )
            })?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Bind FROM + JOIN clauses: returns the scope, the join plan, and any
    /// non-equi join conjuncts to apply as filters.
    fn bind_from(
        &self,
        stmt: &SelectStmt,
        ctx: &mut BindCtx,
    ) -> Result<(Scope, LogicalPlan, Vec<Expr>)> {
        let _ = ctx;
        let mut scope = Scope::default();
        let base = self.catalog.get(&stmt.from.table)?;
        scope.push(&stmt.from, base.schema());
        let mut plan = LogicalPlan::Scan {
            table: stmt.from.table.to_ascii_lowercase(),
            schema: Arc::clone(base.schema()),
        };
        let mut residue = Vec::new();
        for join in &stmt.joins {
            let dim = self.catalog.get(&join.table.table)?;
            let left_width = scope.width();
            scope.push(&join.table, dim.schema());
            // Bind the ON condition over the combined scope, then split each
            // equality conjunct into (left-expr, right-expr-in-dim-coords).
            let mut on_pairs = Vec::new();
            for c in join.on.conjuncts() {
                let bound = self.bind_scalar_expr(c, &scope, None, &mut BindCtx::default())?;
                match &bound {
                    Expr::Binary {
                        op: BinOp::Eq,
                        left,
                        right,
                    } => {
                        let (l_side, r_side) = split_join_sides(left, right, left_width)
                            .ok_or_else(|| {
                                Error::bind(format!(
                                    "join condition {bound} must compare left-side and \
                                     right-side columns"
                                ))
                            })?;
                        on_pairs.push((l_side, r_side));
                    }
                    _ => {
                        // Non-equi conjunct: keep as a post-join filter.
                        residue.push(bound);
                        continue;
                    }
                }
            }
            if on_pairs.is_empty() {
                return Err(Error::bind(format!(
                    "join with '{}' needs at least one equality condition",
                    join.table.table
                )));
            }
            let joined_schema = Arc::new(plan.schema().join(dim.schema()));
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::Scan {
                    table: join.table.table.to_ascii_lowercase(),
                    schema: Arc::clone(dim.schema()),
                }),
                on: on_pairs,
                schema: joined_schema,
            };
        }
        Ok((scope, plan, residue))
    }

    fn finish_plain_select(
        &self,
        stmt: &SelectStmt,
        mut plan: LogicalPlan,
        scope: &Scope,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
    ) -> Result<LogicalPlan> {
        let env = scope.type_env(ctx);
        let mut exprs = Vec::with_capacity(stmt.items.len());
        let mut fields = Vec::with_capacity(stmt.items.len());
        for item in &stmt.items {
            let e = self.bind_scalar_expr(&item.expr, scope, outer, ctx)?;
            let name = item
                .alias
                .clone()
                .unwrap_or_else(|| ast_display(&item.expr));
            fields.push(Field::new(name, infer_type(&e, &env)?));
            exprs.push(e);
        }
        let out_schema = Arc::new(Schema::new(fields));
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: exprs.clone(),
            schema: Arc::clone(&out_schema),
        };
        if !stmt.order_by.is_empty() {
            let keys = self.resolve_order_keys(stmt, &exprs, &out_schema, |ast| {
                self.bind_scalar_expr(ast, scope, outer, ctx)
            })?;
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Resolve ORDER BY keys to output column indices: ordinal, alias, or
    /// display-matching a select expression.
    fn resolve_order_keys(
        &self,
        stmt: &SelectStmt,
        select_exprs: &[Expr],
        out_schema: &Schema,
        mut bind_key: impl FnMut(&AstExpr) -> Result<Expr>,
    ) -> Result<Vec<(usize, bool)>> {
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for k in &stmt.order_by {
            let idx = match &k.expr {
                AstExpr::IntLit(n) => {
                    let n = *n;
                    if n < 1 || n as usize > select_exprs.len() {
                        return Err(Error::bind(format!(
                            "ORDER BY ordinal {n} out of range 1..={}",
                            select_exprs.len()
                        )));
                    }
                    (n - 1) as usize
                }
                AstExpr::Ident(parts) if parts.len() == 1 => match out_schema.index_of(&parts[0]) {
                    Some(i) => i,
                    None => self.match_order_expr(&k.expr, select_exprs, &mut bind_key)?,
                },
                other => self.match_order_expr(other, select_exprs, &mut bind_key)?,
            };
            keys.push((idx, k.desc));
        }
        Ok(keys)
    }

    fn match_order_expr(
        &self,
        ast: &AstExpr,
        select_exprs: &[Expr],
        bind_key: &mut impl FnMut(&AstExpr) -> Result<Expr>,
    ) -> Result<usize> {
        let bound = bind_key(ast)?;
        let key = bound.to_string();
        select_exprs
            .iter()
            .position(|e| e.to_string() == key)
            .ok_or_else(|| {
                Error::bind(format!(
                    "ORDER BY expression {} must appear in the select list",
                    ast_display(ast)
                ))
            })
    }

    /// Resolve one GROUP BY expression, supporting select-alias references.
    fn resolve_group_expr(
        &self,
        g: &AstExpr,
        stmt: &SelectStmt,
        scope: &Scope,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
    ) -> Result<(Expr, String)> {
        if let AstExpr::Ident(parts) = g {
            if parts.len() == 1 && scope.resolve(parts).is_err() {
                // Not a source column: try a select alias.
                if let Some(item) = stmt.items.iter().find(|i| {
                    i.alias
                        .as_deref()
                        .is_some_and(|a| a.eq_ignore_ascii_case(&parts[0]))
                }) {
                    if contains_agg(&item.expr, &self.udafs) {
                        return Err(Error::bind(format!(
                            "GROUP BY alias '{}' refers to an aggregate expression",
                            parts[0]
                        )));
                    }
                    let e = self.bind_scalar_expr(&item.expr, scope, outer, ctx)?;
                    return Ok((e, parts[0].clone()));
                }
            }
        }
        if contains_agg(g, &self.udafs) {
            return Err(Error::bind(
                "GROUP BY expressions may not contain aggregates",
            ));
        }
        let e = self.bind_scalar_expr(g, scope, outer, ctx)?;
        Ok((e, ast_display(g)))
    }

    // -----------------------------------------------------------------
    // Expression binding (source mode)
    // -----------------------------------------------------------------

    /// Bind an expression over the source scope. Aggregate calls are
    /// rejected; subqueries are lowered via `ctx`.
    fn bind_scalar_expr(
        &self,
        e: &AstExpr,
        scope: &Scope,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
    ) -> Result<Expr> {
        match e {
            AstExpr::Ident(parts) => match scope.resolve(parts) {
                Ok((idx, _)) => Ok(Expr::Column(idx)),
                Err(e) => {
                    // A name that resolves in the enclosing query is a
                    // correlated reference used outside the supported
                    // equality-in-WHERE position.
                    if outer.is_some_and(|o| o.resolve(parts).is_ok()) {
                        Err(Error::bind(format!(
                            "correlated reference '{}' is only supported as an \
                             equality predicate in the subquery's WHERE clause",
                            parts.join(".")
                        )))
                    } else {
                        Err(e)
                    }
                }
            },
            AstExpr::IntLit(v) => Ok(Expr::Literal(Value::Int(*v))),
            AstExpr::FloatLit(v) => Ok(Expr::Literal(Value::Float(*v))),
            AstExpr::StringLit(s) => Ok(Expr::Literal(Value::str(s))),
            AstExpr::BoolLit(b) => Ok(Expr::Literal(Value::Bool(*b))),
            AstExpr::NullLit => Ok(Expr::Literal(Value::Null)),
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                lower_binop(*op),
                self.bind_scalar_expr(left, scope, outer, ctx)?,
                self.bind_scalar_expr(right, scope, outer, ctx)?,
            )),
            AstExpr::Neg(inner) => Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(self.bind_scalar_expr(inner, scope, outer, ctx)?),
            }),
            AstExpr::Not(inner) => Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(self.bind_scalar_expr(inner, scope, outer, ctx)?),
            }),
            AstExpr::Call { name, args, star } => {
                if is_aggregate_name(name, &self.udafs) || *star {
                    return Err(Error::bind(format!(
                        "aggregate '{name}' is not allowed in this context"
                    )));
                }
                let func = self.functions.get(name)?;
                let bound: Result<Vec<Expr>> = args
                    .iter()
                    .map(|a| self.bind_scalar_expr(a, scope, outer, ctx))
                    .collect();
                Ok(Expr::Func {
                    name: name.to_ascii_lowercase(),
                    func,
                    args: bound?,
                })
            }
            AstExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let mut bound_branches = Vec::with_capacity(branches.len());
                for (cond, result) in branches {
                    let cond_ast = match operand {
                        // Simple form: CASE x WHEN v THEN r → x = v.
                        Some(op) => AstExpr::binary(AstBinOp::Eq, (**op).clone(), cond.clone()),
                        None => cond.clone(),
                    };
                    bound_branches.push((
                        self.bind_scalar_expr(&cond_ast, scope, outer, ctx)?,
                        self.bind_scalar_expr(result, scope, outer, ctx)?,
                    ));
                }
                let else_bound = else_expr
                    .as_ref()
                    .map(|e| self.bind_scalar_expr(e, scope, outer, ctx))
                    .transpose()?;
                Ok(Expr::Case {
                    branches: bound_branches,
                    else_expr: else_bound.map(Box::new),
                })
            }
            AstExpr::Cast { expr, ty } => Ok(Expr::Cast {
                expr: Box::new(self.bind_scalar_expr(expr, scope, outer, ctx)?),
                to: parse_type_name(ty)?,
            }),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.bind_scalar_expr(expr, scope, outer, ctx)?),
                negated: *negated,
            }),
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.bind_scalar_expr(expr, scope, outer, ctx)?;
                let lo = self.bind_scalar_expr(low, scope, outer, ctx)?;
                let hi = self.bind_scalar_expr(high, scope, outer, ctx)?;
                let between = Expr::and(
                    Expr::binary(BinOp::GtEq, e.clone(), lo),
                    Expr::binary(BinOp::LtEq, e, hi),
                );
                Ok(if *negated {
                    Expr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(between),
                    }
                } else {
                    between
                })
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.bind_scalar_expr(expr, scope, outer, ctx)?;
                let items: Result<Vec<Expr>> = list
                    .iter()
                    .map(|i| self.bind_scalar_expr(i, scope, outer, ctx))
                    .collect();
                Ok(Expr::InList {
                    expr: Box::new(e),
                    list: items?,
                    negated: *negated,
                })
            }
            AstExpr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let key = self.bind_scalar_expr(expr, scope, outer, ctx)?;
                let id = self.bind_membership_subquery(subquery, ctx)?;
                Ok(Expr::InSubquery {
                    id,
                    key: vec![key],
                    negated: *negated,
                })
            }
            AstExpr::ScalarSubquery(sub) => self.bind_scalar_subquery(sub, scope, ctx),
        }
    }

    // -----------------------------------------------------------------
    // Expression binding (projection mode: over the aggregate row)
    // -----------------------------------------------------------------

    /// Bind a SELECT/HAVING expression of an aggregate query. Output
    /// references the aggregate-row schema: group columns first, then one
    /// column per (deduplicated) aggregate call in `aggs`.
    #[allow(clippy::too_many_arguments)]
    fn bind_projection_expr(
        &self,
        e: &AstExpr,
        scope: &Scope,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
        groups: &[(Expr, String)],
        aggs: &mut Vec<AggCall>,
        agg_keys: &mut Vec<String>,
    ) -> Result<Expr> {
        // Case 1: an aggregate call.
        if let AstExpr::Call { name, args, star } = e {
            if is_aggregate_name(name, &self.udafs) || *star {
                let call = self.bind_agg_call(name, args, *star, scope, outer, ctx)?;
                let key = format!("{}({})", call.kind.name(), call.arg);
                let idx = match agg_keys.iter().position(|k| k == &key) {
                    Some(i) => i,
                    None => {
                        agg_keys.push(key);
                        aggs.push(call);
                        aggs.len() - 1
                    }
                };
                return Ok(Expr::Column(groups.len() + idx));
            }
        }
        // Case 2: the whole expression matches a GROUP BY expression.
        if !contains_agg(e, &self.udafs) {
            if let Ok(bound) = self.bind_scalar_expr(e, scope, outer, ctx) {
                let key = bound.to_string();
                if let Some(i) = groups.iter().position(|(g, _)| g.to_string() == key) {
                    return Ok(Expr::Column(i));
                }
                // A constant (no source columns) can pass through directly.
                let mut cols = Vec::new();
                bound.collect_columns(&mut cols);
                if cols.is_empty() {
                    return Ok(bound);
                }
                // Select alias matching a group name.
                if let AstExpr::Ident(parts) = e {
                    if parts.len() == 1 {
                        if let Some(i) = groups
                            .iter()
                            .position(|(_, n)| n.eq_ignore_ascii_case(&parts[0]))
                        {
                            return Ok(Expr::Column(i));
                        }
                    }
                }
                return Err(Error::bind(format!(
                    "expression {} must appear in GROUP BY or inside an aggregate",
                    ast_display(e)
                )));
            }
        }
        // Case 3: recurse structurally.
        match e {
            AstExpr::Binary { op, left, right } => Ok(Expr::binary(
                lower_binop(*op),
                self.bind_projection_expr(left, scope, outer, ctx, groups, aggs, agg_keys)?,
                self.bind_projection_expr(right, scope, outer, ctx, groups, aggs, agg_keys)?,
            )),
            AstExpr::Neg(inner) => Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(
                    self.bind_projection_expr(inner, scope, outer, ctx, groups, aggs, agg_keys)?,
                ),
            }),
            AstExpr::Not(inner) => Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(
                    self.bind_projection_expr(inner, scope, outer, ctx, groups, aggs, agg_keys)?,
                ),
            }),
            AstExpr::Call { name, args, .. } => {
                let func = self.functions.get(name)?;
                let bound: Result<Vec<Expr>> = args
                    .iter()
                    .map(|a| {
                        self.bind_projection_expr(a, scope, outer, ctx, groups, aggs, agg_keys)
                    })
                    .collect();
                Ok(Expr::Func {
                    name: name.to_ascii_lowercase(),
                    func,
                    args: bound?,
                })
            }
            AstExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let mut bound_branches = Vec::with_capacity(branches.len());
                for (cond, result) in branches {
                    let cond_ast = match operand {
                        Some(op) => AstExpr::binary(AstBinOp::Eq, (**op).clone(), cond.clone()),
                        None => cond.clone(),
                    };
                    bound_branches.push((
                        self.bind_projection_expr(
                            &cond_ast, scope, outer, ctx, groups, aggs, agg_keys,
                        )?,
                        self.bind_projection_expr(
                            result, scope, outer, ctx, groups, aggs, agg_keys,
                        )?,
                    ));
                }
                let else_bound = else_expr
                    .as_ref()
                    .map(|x| {
                        self.bind_projection_expr(x, scope, outer, ctx, groups, aggs, agg_keys)
                    })
                    .transpose()?;
                Ok(Expr::Case {
                    branches: bound_branches,
                    else_expr: else_bound.map(Box::new),
                })
            }
            AstExpr::Cast { expr, ty } => Ok(Expr::Cast {
                expr: Box::new(
                    self.bind_projection_expr(expr, scope, outer, ctx, groups, aggs, agg_keys)?,
                ),
                to: parse_type_name(ty)?,
            }),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(
                    self.bind_projection_expr(expr, scope, outer, ctx, groups, aggs, agg_keys)?,
                ),
                negated: *negated,
            }),
            AstExpr::ScalarSubquery(sub) => {
                // Subquery in HAVING/SELECT: correlation keys must be group
                // expressions, so the reference stays valid over group rows.
                let bound = self.bind_scalar_subquery(sub, scope, ctx)?;
                remap_subquery_keys_to_groups(bound, groups)
            }
            AstExpr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let key =
                    self.bind_projection_expr(expr, scope, outer, ctx, groups, aggs, agg_keys)?;
                let id = self.bind_membership_subquery(subquery, ctx)?;
                Ok(Expr::InSubquery {
                    id,
                    key: vec![key],
                    negated: *negated,
                })
            }
            AstExpr::InList {
                expr,
                list,
                negated,
            } => {
                let e2 =
                    self.bind_projection_expr(expr, scope, outer, ctx, groups, aggs, agg_keys)?;
                let items: Result<Vec<Expr>> = list
                    .iter()
                    .map(|i| {
                        self.bind_projection_expr(i, scope, outer, ctx, groups, aggs, agg_keys)
                    })
                    .collect();
                Ok(Expr::InList {
                    expr: Box::new(e2),
                    list: items?,
                    negated: *negated,
                })
            }
            AstExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let rewritten = AstExpr::binary(
                    AstBinOp::And,
                    AstExpr::binary(AstBinOp::GtEq, (**expr).clone(), (**low).clone()),
                    AstExpr::binary(AstBinOp::LtEq, (**expr).clone(), (**high).clone()),
                );
                let bound = self
                    .bind_projection_expr(&rewritten, scope, outer, ctx, groups, aggs, agg_keys)?;
                Ok(if *negated {
                    Expr::Unary {
                        op: UnaryOp::Not,
                        expr: Box::new(bound),
                    }
                } else {
                    bound
                })
            }
            other => Err(Error::bind(format!(
                "expression {} must appear in GROUP BY or inside an aggregate",
                ast_display(other)
            ))),
        }
    }

    /// Bind one aggregate call (built-in or UDAF).
    fn bind_agg_call(
        &self,
        name: &str,
        args: &[AstExpr],
        star: bool,
        scope: &Scope,
        outer: Option<&Scope>,
        ctx: &mut BindCtx,
    ) -> Result<AggCall> {
        let display = if star {
            format!("{}(*)", name.to_lowercase())
        } else {
            format!(
                "{}({})",
                name.to_lowercase(),
                args.iter().map(ast_display).collect::<Vec<_>>().join(", ")
            )
        };
        if star {
            if !name.eq_ignore_ascii_case("count") {
                return Err(Error::bind(format!(
                    "{name}(*) is not supported; only COUNT(*)"
                )));
            }
            return Ok(AggCall {
                kind: AggKind::Count,
                arg: Expr::lit(1i64),
                name: display,
            });
        }
        // QUANTILE's second argument must be a numeric literal.
        let quantile_arg = if args.len() == 2 {
            match &args[1] {
                AstExpr::FloatLit(q) => Some(*q),
                AstExpr::IntLit(q) => Some(*q as f64),
                _ => None,
            }
        } else {
            None
        };
        let kind = match AggKind::from_name(name, quantile_arg)? {
            Some(k) => k,
            None => match self.udafs.get(name) {
                Some(u) => AggKind::Udaf(u),
                None => return Err(Error::bind(format!("unknown aggregate '{name}'"))),
            },
        };
        // QUANTILE/PERCENTILE take (expr, q); MEDIAN and the rest take one.
        let expected_args = match name.to_ascii_lowercase().as_str() {
            "quantile" | "percentile" => 2,
            _ => 1,
        };
        if args.len() != expected_args {
            return Err(Error::bind(format!(
                "{} expects {expected_args} argument(s), got {}",
                kind.name(),
                args.len()
            )));
        }
        if contains_agg(&args[0], &self.udafs) {
            return Err(Error::bind("nested aggregate calls are not allowed"));
        }
        let arg = self.bind_scalar_expr(&args[0], scope, outer, ctx)?;
        if arg.has_subquery_ref() {
            return Err(Error::bind(format!(
                "aggregate argument {} may not reference a subquery",
                ast_display(&args[0])
            )));
        }
        Ok(AggCall {
            kind,
            arg,
            name: display,
        })
    }

    // -----------------------------------------------------------------
    // Subquery lowering
    // -----------------------------------------------------------------

    /// Bind `(SELECT …)` used as a scalar, decorrelating equality
    /// correlation predicates into group keys.
    fn bind_scalar_subquery(
        &self,
        sub: &SelectStmt,
        outer_scope: &Scope,
        ctx: &mut BindCtx,
    ) -> Result<Expr> {
        if sub.contract.is_some() {
            return Err(Error::bind(
                "ERROR/WITHIN contracts are not allowed in subqueries",
            ));
        }
        if sub.items.len() != 1 {
            return Err(Error::bind(
                "scalar subquery must select exactly one expression",
            ));
        }
        if !contains_agg(&sub.items[0].expr, &self.udafs) {
            return Err(Error::bind(
                "scalar subquery must be an aggregate (G-OLA streams aggregates)",
            ));
        }
        // Build the inner scope to classify correlation predicates.
        let (inner_scope, _, _) = self.bind_from(sub, &mut BindCtx::default())?;

        let mut kept_conjuncts: Vec<AstExpr> = Vec::new();
        let mut corr_inner: Vec<(Expr, String)> = Vec::new();
        let mut corr_outer: Vec<Expr> = Vec::new();
        if let Some(w) = &sub.where_clause {
            for c in w.conjuncts() {
                if let Some((inner_col, outer_col)) =
                    self.classify_correlation(c, &inner_scope, outer_scope)?
                {
                    corr_inner.push(inner_col);
                    corr_outer.push(outer_col);
                } else {
                    kept_conjuncts.push(c.clone());
                }
            }
        }
        if !corr_inner.is_empty() && !sub.group_by.is_empty() {
            return Err(Error::bind(
                "correlated scalar subquery may not also have GROUP BY",
            ));
        }
        let mut decorrelated = sub.clone();
        decorrelated.where_clause = AstExpr::conjunction(kept_conjuncts);
        let plan = self.bind_select(&decorrelated, Some(outer_scope), ctx, &corr_inner)?;
        let out_ty = plan.schema().field(plan.schema().len() - 1).data_type;
        let id = ctx.push(
            SubqueryPlan {
                plan,
                kind: SubqueryKind::Scalar,
            },
            out_ty,
        );
        Ok(Expr::ScalarRef {
            id,
            key: corr_outer,
        })
    }

    /// If `c` is an equality between one inner and one outer column, return
    /// `((inner_col_expr, inner_name), outer_col_expr)`.
    fn classify_correlation(
        &self,
        c: &AstExpr,
        inner: &Scope,
        outer: &Scope,
    ) -> Result<Option<((Expr, String), Expr)>> {
        let AstExpr::Binary {
            op: AstBinOp::Eq,
            left,
            right,
        } = c
        else {
            return Ok(None);
        };
        let (AstExpr::Ident(lp), AstExpr::Ident(rp)) = (left.as_ref(), right.as_ref()) else {
            return Ok(None);
        };
        let l_inner = inner.resolve(lp).ok();
        let r_inner = inner.resolve(rp).ok();
        match (l_inner, r_inner) {
            (Some(_), Some(_)) => Ok(None), // plain inner predicate
            (Some((li, _)), None) => {
                let (ro, _) = outer.resolve(rp).map_err(|_| correlation_err(rp))?;
                Ok(Some((
                    (Expr::Column(li), lp.last().unwrap().clone()),
                    Expr::Column(ro),
                )))
            }
            (None, Some((ri, _))) => {
                let (lo, _) = outer.resolve(lp).map_err(|_| correlation_err(lp))?;
                Ok(Some((
                    (Expr::Column(ri), rp.last().unwrap().clone()),
                    Expr::Column(lo),
                )))
            }
            (None, None) => Err(Error::bind(format!(
                "cannot resolve columns in subquery predicate {}",
                ast_display(c)
            ))),
        }
    }

    /// Bind `expr IN (SELECT …)` as a membership subquery.
    fn bind_membership_subquery(&self, sub: &SelectStmt, ctx: &mut BindCtx) -> Result<SubqueryId> {
        if sub.contract.is_some() {
            return Err(Error::bind(
                "ERROR/WITHIN contracts are not allowed in subqueries",
            ));
        }
        if sub.items.len() != 1 {
            return Err(Error::bind("IN subquery must select exactly one column"));
        }
        if contains_agg(&sub.items[0].expr, &self.udafs) {
            return Err(Error::bind(
                "IN subquery must select a grouping key, not an aggregate",
            ));
        }
        let mut rewritten = sub.clone();
        if rewritten.group_by.is_empty() {
            // `IN (SELECT k FROM …)` ≡ group by k (DISTINCT semantics).
            rewritten.group_by = vec![rewritten.items[0].expr.clone()];
        } else {
            // The selected column must be one of the group keys.
            let sel = ast_display(&rewritten.items[0].expr);
            if !rewritten.group_by.iter().any(|g| ast_display(g) == sel) {
                return Err(Error::bind(format!(
                    "IN subquery select item {sel} must be a GROUP BY key"
                )));
            }
        }
        let plan = self.bind_select(&rewritten, None, ctx, &[])?;
        let id = ctx.push(
            SubqueryPlan {
                plan,
                kind: SubqueryKind::Membership,
            },
            DataType::Bool,
        );
        Ok(id)
    }
}

fn correlation_err(parts: &[String]) -> Error {
    Error::bind(format!(
        "cannot resolve '{}' in the subquery or its immediate outer query \
         (only single-level equality correlation is supported)",
        parts.join(".")
    ))
}

/// When a scalar subquery is referenced from HAVING/SELECT of an aggregate
/// query, its correlation keys (bound over the source) must be rewritten to
/// group-row columns.
fn remap_subquery_keys_to_groups(expr: Expr, groups: &[(Expr, String)]) -> Result<Expr> {
    match expr {
        Expr::ScalarRef { id, key } => {
            let mut remapped = Vec::with_capacity(key.len());
            for k in key {
                let ks = k.to_string();
                match groups.iter().position(|(g, _)| g.to_string() == ks) {
                    Some(i) => remapped.push(Expr::Column(i)),
                    None => {
                        return Err(Error::bind(format!(
                            "correlated key {ks} in HAVING/SELECT must be a GROUP BY expression"
                        )))
                    }
                }
            }
            Ok(Expr::ScalarRef { id, key: remapped })
        }
        other => Ok(other),
    }
}

// ---------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------

/// Name-resolution scope: the tables visible to one SELECT.
#[derive(Debug, Default, Clone)]
struct Scope {
    /// (alias-or-table-name lowercase, table-name lowercase, schema, column offset)
    entries: Vec<(String, String, Arc<Schema>, usize)>,
    width: usize,
}

impl Scope {
    fn push(&mut self, table_ref: &TableRef, schema: &Arc<Schema>) {
        let alias = table_ref
            .alias
            .clone()
            .unwrap_or_else(|| table_ref.table.clone())
            .to_ascii_lowercase();
        self.entries.push((
            alias,
            table_ref.table.to_ascii_lowercase(),
            Arc::clone(schema),
            self.width,
        ));
        self.width += schema.len();
    }

    fn width(&self) -> usize {
        self.width
    }

    /// Resolve a possibly-qualified column reference to a global index.
    fn resolve(&self, parts: &[String]) -> Result<(usize, DataType)> {
        match parts {
            [col] => {
                let mut found: Option<(usize, DataType)> = None;
                for (_, _, schema, offset) in &self.entries {
                    if let Some(i) = schema.index_of(col) {
                        if found.is_some() {
                            return Err(Error::bind(format!("ambiguous column '{col}'")));
                        }
                        found = Some((offset + i, schema.field(i).data_type));
                    }
                }
                found.ok_or_else(|| Error::bind(format!("unknown column '{col}'")))
            }
            [qual, col] => {
                let q = qual.to_ascii_lowercase();
                for (alias, table, schema, offset) in &self.entries {
                    if *alias == q || *table == q {
                        let i = schema.index_of_or_err(col)?;
                        return Ok((offset + i, schema.field(i).data_type));
                    }
                }
                Err(Error::bind(format!("unknown table or alias '{qual}'")))
            }
            other => Err(Error::bind(format!(
                "unsupported qualified name '{}'",
                other.join(".")
            ))),
        }
    }

    /// Column types of the whole scope plus subquery types bound so far.
    fn type_env(&self, ctx: &BindCtx) -> TypeEnv {
        let mut cols = vec![DataType::Null; self.width];
        for (_, _, schema, offset) in &self.entries {
            for (i, f) in schema.fields().iter().enumerate() {
                cols[offset + i] = f.data_type;
            }
        }
        let mut env = TypeEnv::new(cols);
        for (i, t) in ctx.scalar_types.iter().enumerate() {
            env.set_scalar(SubqueryId(i), *t);
        }
        env
    }
}

fn type_env_for_schema(schema: &Schema, ctx: &BindCtx) -> TypeEnv {
    let mut env = TypeEnv::new(schema.fields().iter().map(|f| f.data_type).collect());
    for (i, t) in ctx.scalar_types.iter().enumerate() {
        env.set_scalar(SubqueryId(i), *t);
    }
    env
}

// ---------------------------------------------------------------------
// Bind context & helpers
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct BindCtx {
    subqueries: Vec<SubqueryPlan>,
    scalar_types: Vec<DataType>,
}

impl BindCtx {
    fn push(&mut self, sq: SubqueryPlan, ty: DataType) -> SubqueryId {
        self.subqueries.push(sq);
        self.scalar_types.push(ty);
        SubqueryId(self.subqueries.len() - 1)
    }
}

fn lower_binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Mod => BinOp::Mod,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::NotEq => BinOp::NotEq,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::LtEq => BinOp::LtEq,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::GtEq => BinOp::GtEq,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

fn parse_type_name(ty: &str) -> Result<DataType> {
    match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" | "LONG" => Ok(DataType::Int),
        "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" => Ok(DataType::Float),
        "STRING" | "VARCHAR" | "TEXT" | "CHAR" => Ok(DataType::Str),
        "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
        other => Err(Error::bind(format!("unknown type '{other}' in CAST"))),
    }
}

/// Does the expression contain an aggregate call (not descending into
/// subquery bodies, which have their own aggregation scope)?
fn contains_agg(e: &AstExpr, udafs: &UdafRegistry) -> bool {
    match e {
        AstExpr::Call { name, args, star } => {
            if *star || is_aggregate_name(name, udafs) {
                return true;
            }
            args.iter().any(|a| contains_agg(a, udafs))
        }
        AstExpr::Binary { left, right, .. } => {
            contains_agg(left, udafs) || contains_agg(right, udafs)
        }
        AstExpr::Neg(x) | AstExpr::Not(x) => contains_agg(x, udafs),
        AstExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_ref().is_some_and(|o| contains_agg(o, udafs))
                || branches
                    .iter()
                    .any(|(c, r)| contains_agg(c, udafs) || contains_agg(r, udafs))
                || else_expr.as_ref().is_some_and(|x| contains_agg(x, udafs))
        }
        AstExpr::Cast { expr, .. } | AstExpr::IsNull { expr, .. } => contains_agg(expr, udafs),
        AstExpr::Between {
            expr, low, high, ..
        } => contains_agg(expr, udafs) || contains_agg(low, udafs) || contains_agg(high, udafs),
        AstExpr::InList { expr, list, .. } => {
            contains_agg(expr, udafs) || list.iter().any(|i| contains_agg(i, udafs))
        }
        AstExpr::InSubquery { expr, .. } => contains_agg(expr, udafs),
        _ => false,
    }
}

fn is_aggregate_name(name: &str, udafs: &UdafRegistry) -> bool {
    AggKind::from_name(name, Some(0.5)).ok().flatten().is_some() || udafs.contains(name)
}

/// Split an equi-join conjunct into (left-side expr, right-side expr in
/// dimension-local column coordinates). Returns `None` when either side
/// mixes columns from both inputs or references no columns.
fn split_join_sides(l: &Expr, r: &Expr, left_width: usize) -> Option<(Expr, Expr)> {
    // true = all columns on the left input, false = all on the right.
    let side = |e: &Expr| -> Option<bool> {
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        if cols.is_empty() {
            None
        } else if cols.iter().all(|&c| c < left_width) {
            Some(true)
        } else if cols.iter().all(|&c| c >= left_width) {
            Some(false)
        } else {
            None
        }
    };
    match (side(l), side(r)) {
        (Some(true), Some(false)) => Some((l.clone(), r.remap_columns(&|c| c - left_width))),
        (Some(false), Some(true)) => Some((r.clone(), l.remap_columns(&|c| c - left_width))),
        _ => None,
    }
}

/// Compact source-like rendering of an AST expression, used for implicit
/// column names and GROUP BY matching.
pub fn ast_display(e: &AstExpr) -> String {
    match e {
        AstExpr::Ident(parts) => parts.join(".").to_ascii_lowercase(),
        AstExpr::IntLit(v) => v.to_string(),
        AstExpr::FloatLit(v) => v.to_string(),
        AstExpr::StringLit(s) => format!("'{s}'"),
        AstExpr::BoolLit(b) => b.to_string(),
        AstExpr::NullLit => "null".into(),
        AstExpr::Binary { op, left, right } => {
            let sym = match op {
                AstBinOp::Add => "+",
                AstBinOp::Sub => "-",
                AstBinOp::Mul => "*",
                AstBinOp::Div => "/",
                AstBinOp::Mod => "%",
                AstBinOp::Eq => "=",
                AstBinOp::NotEq => "<>",
                AstBinOp::Lt => "<",
                AstBinOp::LtEq => "<=",
                AstBinOp::Gt => ">",
                AstBinOp::GtEq => ">=",
                AstBinOp::And => "and",
                AstBinOp::Or => "or",
            };
            format!("({} {} {})", ast_display(left), sym, ast_display(right))
        }
        AstExpr::Neg(x) => format!("(-{})", ast_display(x)),
        AstExpr::Not(x) => format!("(not {})", ast_display(x)),
        AstExpr::Call { name, args, star } => {
            if *star {
                format!("{}(*)", name.to_lowercase())
            } else {
                format!(
                    "{}({})",
                    name.to_lowercase(),
                    args.iter().map(ast_display).collect::<Vec<_>>().join(", ")
                )
            }
        }
        AstExpr::Case { .. } => "case".into(),
        AstExpr::Cast { expr, ty } => {
            format!("cast({} as {})", ast_display(expr), ty.to_lowercase())
        }
        AstExpr::IsNull { expr, negated } => format!(
            "({} is {}null)",
            ast_display(expr),
            if *negated { "not " } else { "" }
        ),
        AstExpr::Between { expr, .. } => format!("({} between ...)", ast_display(expr)),
        AstExpr::InList { expr, .. } => format!("({} in (...))", ast_display(expr)),
        AstExpr::InSubquery { expr, .. } => format!("({} in (select ...))", ast_display(expr)),
        AstExpr::ScalarSubquery(_) => "(select ...)".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use gola_common::row;
    use gola_storage::Table;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let sessions = Arc::new(Schema::from_pairs(&[
            ("session_id", DataType::Int),
            ("ad_id", DataType::Int),
            ("buffer_time", DataType::Float),
            ("play_time", DataType::Float),
        ]));
        c.register(
            "sessions",
            Arc::new(Table::try_new(sessions, vec![row![1i64, 10i64, 3.0f64, 100.0f64]]).unwrap()),
        )
        .unwrap();
        let ads = Arc::new(Schema::from_pairs(&[
            ("ad_id", DataType::Int),
            ("ad_name", DataType::Str),
        ]));
        c.register(
            "ads",
            Arc::new(Table::try_new(ads, vec![row![10i64, "promo"]]).unwrap()),
        )
        .unwrap();
        c
    }

    fn bind_sql(sql: &str) -> Result<QueryGraph> {
        let cat = catalog();
        let stmt = parse_select(sql)?;
        Binder::new(&cat).bind(&stmt)
    }

    #[test]
    fn binds_sbi_query() {
        let g = bind_sql(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        )
        .unwrap();
        assert_eq!(g.subqueries.len(), 1);
        assert_eq!(g.subqueries[0].kind, SubqueryKind::Scalar);
        let s = g.explain();
        assert!(s.contains("$sq0"), "{s}");
        assert_eq!(g.root.schema().field(0).name, "avg(play_time)");
    }

    #[test]
    fn decorrelates_equality_subquery() {
        let g = bind_sql(
            "SELECT AVG(play_time) FROM sessions s \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions t \
                                  WHERE t.ad_id = s.ad_id)",
        )
        .unwrap();
        assert_eq!(g.subqueries.len(), 1);
        // The inner plan must be grouped by ad_id...
        match &g.subqueries[0].plan {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { group_by, .. } => assert_eq!(group_by.len(), 1),
                other => panic!("unexpected inner {other:?}"),
            },
            other => panic!("unexpected inner {other:?}"),
        }
        // ...and the outer reference keyed by the outer ad_id column.
        let s = g.root.explain();
        assert!(s.contains("$sq0[#1]"), "{s}");
    }

    #[test]
    fn unsupported_correlation_reports_error() {
        let err = bind_sql(
            "SELECT AVG(play_time) FROM sessions s \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions t \
                                  WHERE t.ad_id > s.ad_id)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("correlated reference"), "{err}");
    }

    #[test]
    fn binds_membership_subquery() {
        let g = bind_sql(
            "SELECT AVG(play_time) FROM sessions WHERE ad_id IN \
             (SELECT ad_id FROM sessions GROUP BY ad_id HAVING SUM(play_time) > 300)",
        )
        .unwrap();
        assert_eq!(g.subqueries.len(), 1);
        assert_eq!(g.subqueries[0].kind, SubqueryKind::Membership);
        // Membership plan: Filter(having) over Aggregate.
        match &g.subqueries[0].plan {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(input.as_ref(), LogicalPlan::Filter { .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn in_subquery_without_group_by_gets_distinct_grouping() {
        let g = bind_sql(
            "SELECT COUNT(*) FROM sessions WHERE ad_id IN \
             (SELECT ad_id FROM sessions WHERE play_time > 50)",
        )
        .unwrap();
        match &g.subqueries[0].plan {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    assert_eq!(group_by.len(), 1);
                    assert!(aggs.is_empty());
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_validation() {
        let err = bind_sql("SELECT play_time, AVG(buffer_time) FROM sessions GROUP BY ad_id")
            .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
        // Valid: select the group key and aggregates.
        let g =
            bind_sql("SELECT ad_id, AVG(buffer_time) AS ab FROM sessions GROUP BY ad_id").unwrap();
        assert_eq!(g.root.schema().field(0).name, "ad_id");
        assert_eq!(g.root.schema().field(1).name, "ab");
    }

    #[test]
    fn group_by_alias_and_expression() {
        let g =
            bind_sql("SELECT play_time * 2 AS dbl, COUNT(*) FROM sessions GROUP BY dbl").unwrap();
        assert_eq!(g.root.schema().field(0).name, "dbl");
        let g2 = bind_sql("SELECT play_time * 2, COUNT(*) FROM sessions GROUP BY play_time * 2")
            .unwrap();
        assert_eq!(g2.root.schema().len(), 2);
    }

    #[test]
    fn aggregates_deduplicated() {
        let g = bind_sql("SELECT SUM(play_time), SUM(play_time) / COUNT(*) FROM sessions").unwrap();
        match &g.root {
            LogicalPlan::Project { input, exprs, .. } => {
                match input.as_ref() {
                    LogicalPlan::Aggregate { aggs, .. } => assert_eq!(aggs.len(), 2),
                    other => panic!("unexpected {other:?}"),
                }
                assert_eq!(exprs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let err = bind_sql("SELECT COUNT(*) FROM sessions WHERE AVG(play_time) > 1").unwrap_err();
        assert!(err.to_string().contains("WHERE"), "{err}");
    }

    #[test]
    fn nested_aggregate_rejected() {
        let err = bind_sql("SELECT AVG(SUM(play_time)) FROM sessions").unwrap_err();
        assert!(err.to_string().contains("nested aggregate"), "{err}");
    }

    #[test]
    fn joins_bind_with_aliases() {
        let g = bind_sql(
            "SELECT a.ad_name, AVG(s.play_time) FROM sessions s \
             JOIN ads a ON s.ad_id = a.ad_id GROUP BY a.ad_name",
        )
        .unwrap();
        let s = g.root.explain();
        assert!(s.contains("Join on #1 = #0"), "{s}");
    }

    #[test]
    fn join_swapped_equality_normalized() {
        let g =
            bind_sql("SELECT COUNT(*) FROM sessions s JOIN ads a ON a.ad_id = s.ad_id").unwrap();
        let s = g.root.explain();
        assert!(s.contains("Join on #1 = #0"), "{s}");
    }

    #[test]
    fn order_by_resolution() {
        let g = bind_sql(
            "SELECT ad_id, SUM(play_time) AS total FROM sessions \
             GROUP BY ad_id ORDER BY total DESC, 1",
        )
        .unwrap();
        match &g.root {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(keys[0], (1, true));
                assert_eq!(keys[1], (0, false));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(bind_sql("SELECT ad_id FROM sessions GROUP BY ad_id ORDER BY 5").is_err());
    }

    #[test]
    fn type_errors_caught() {
        let err = bind_sql("SELECT SUM(ad_name) FROM ads").unwrap_err();
        assert!(err.to_string().contains("numeric"), "{err}");
        let err = bind_sql("SELECT COUNT(*) FROM sessions WHERE play_time + 1").unwrap_err();
        assert!(err.to_string().contains("BOOL"), "{err}");
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(bind_sql("SELECT COUNT(*) FROM missing").is_err());
        assert!(bind_sql("SELECT nope FROM sessions").is_err());
        assert!(bind_sql("SELECT z.play_time FROM sessions s").is_err());
    }

    #[test]
    fn quantile_binding() {
        let g = bind_sql("SELECT QUANTILE(play_time, 0.95) FROM sessions").unwrap();
        match &g.root {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { aggs, .. } => {
                    assert!(matches!(aggs[0].kind, AggKind::Quantile(q) if q == 0.95));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(bind_sql("SELECT QUANTILE(play_time, play_time) FROM sessions").is_err());
    }

    #[test]
    fn udaf_binding() {
        let g = bind_sql("SELECT GEO_MEAN(play_time) FROM sessions").unwrap();
        match &g.root {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { aggs, .. } => {
                    assert!(matches!(aggs[0].kind, AggKind::Udaf(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn plain_select_without_aggregates() {
        let g = bind_sql(
            "SELECT session_id, play_time FROM sessions WHERE play_time > 10 \
             ORDER BY play_time DESC LIMIT 5",
        )
        .unwrap();
        match &g.root {
            LogicalPlan::Limit { input, n } => {
                assert_eq!(*n, 5);
                assert!(matches!(input.as_ref(), LogicalPlan::Sort { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scalar_subquery_must_be_single_aggregate() {
        assert!(bind_sql(
            "SELECT COUNT(*) FROM sessions WHERE play_time > (SELECT buffer_time FROM sessions)"
        )
        .is_err());
        assert!(bind_sql(
            "SELECT COUNT(*) FROM sessions \
             WHERE play_time > (SELECT AVG(play_time), AVG(buffer_time) FROM sessions)"
        )
        .is_err());
    }

    #[test]
    fn two_level_nesting() {
        let g = bind_sql(
            "SELECT AVG(play_time) FROM sessions WHERE buffer_time > \
             (SELECT AVG(buffer_time) FROM sessions WHERE play_time > \
              (SELECT AVG(play_time) FROM sessions))",
        )
        .unwrap();
        assert_eq!(g.subqueries.len(), 2);
        // The middle subquery references the innermost.
        let mut refs = Vec::new();
        g.subqueries[1].plan.subquery_refs(&mut refs);
        assert_eq!(refs, vec![SubqueryId(0)]);
    }

    #[test]
    fn having_with_scalar_subquery() {
        let g = bind_sql(
            "SELECT ad_id, SUM(play_time) FROM sessions GROUP BY ad_id \
             HAVING SUM(play_time) > 0.1 * (SELECT SUM(play_time) FROM sessions)",
        )
        .unwrap();
        assert_eq!(g.subqueries.len(), 1);
        let s = g.root.explain();
        assert!(s.contains("Filter"), "{s}");
    }

    #[test]
    fn count_star_lowering() {
        let g = bind_sql("SELECT COUNT(*) FROM sessions").unwrap();
        match &g.root {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Aggregate { aggs, .. } => {
                    assert!(matches!(aggs[0].kind, AggKind::Count));
                    assert_eq!(aggs[0].arg.to_string(), "1");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn case_and_scalar_functions() {
        let g = bind_sql(
            "SELECT AVG(CASE WHEN buffer_time > 10 THEN play_time ELSE 0 END), \
                    SUM(abs(play_time - 50)) FROM sessions",
        )
        .unwrap();
        assert!(g.root.schema().len() == 2);
    }
}
