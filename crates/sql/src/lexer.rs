//! SQL tokenizer.

use gola_common::{Error, Result};

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds. Keywords are recognized by the parser from `Ident` (SQL
/// identifiers are case-insensitive), except for quoted identifiers which
/// arrive as `QuotedIdent` and never match keywords.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    QuotedIdent(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl TokenKind {
    /// The uppercase keyword string if this token is an unquoted identifier.
    pub fn keyword(&self) -> Option<String> {
        match self {
            TokenKind::Ident(s) => Some(s.to_ascii_uppercase()),
            _ => None,
        }
    }
}

/// Tokenize a SQL string. Supports `--` line comments, single-quoted string
/// literals with `''` escapes, and double-quoted identifiers.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push_simple(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push_simple(&mut tokens, TokenKind::RParen, &mut i),
            ',' => push_simple(&mut tokens, TokenKind::Comma, &mut i),
            '.' if !next_is_digit(bytes, i + 1) => push_simple(&mut tokens, TokenKind::Dot, &mut i),
            ';' => push_simple(&mut tokens, TokenKind::Semicolon, &mut i),
            '+' => push_simple(&mut tokens, TokenKind::Plus, &mut i),
            '-' => push_simple(&mut tokens, TokenKind::Minus, &mut i),
            '*' => push_simple(&mut tokens, TokenKind::Star, &mut i),
            '/' => push_simple(&mut tokens, TokenKind::Slash, &mut i),
            '%' => push_simple(&mut tokens, TokenKind::Percent, &mut i),
            '=' => push_simple(&mut tokens, TokenKind::Eq, &mut i),
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(Error::Lex {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(&b'=') => (TokenKind::LtEq, 2),
                    Some(&b'>') => (TokenKind::NotEq, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token { kind, pos: i });
                i += len;
            }
            '>' => {
                let (kind, len) = match bytes.get(i + 1) {
                    Some(&b'=') => (TokenKind::GtEq, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token { kind, pos: i });
                i += len;
            }
            '\'' => {
                let (s, end) = lex_quoted(sql, i, '\'')?;
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    pos: i,
                });
                i = end;
            }
            '"' => {
                let (s, end) = lex_quoted(sql, i, '"')?;
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    pos: i,
                });
                i = end;
            }
            c if c.is_ascii_digit() || (c == '.' && next_is_digit(bytes, i + 1)) => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E') && !saw_exp && i > start {
                        saw_exp = true;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &sql[start..i];
                let kind = if saw_dot || saw_exp {
                    TokenKind::Float(text.parse().map_err(|_| Error::Lex {
                        pos: start,
                        message: format!("invalid number '{text}'"),
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => TokenKind::Float(text.parse().map_err(|_| Error::Lex {
                            pos: start,
                            message: format!("invalid number '{text}'"),
                        })?),
                    }
                };
                tokens.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let d = bytes[i] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                    pos: start,
                });
            }
            other => {
                return Err(Error::Lex {
                    pos: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, pos: *i });
    *i += 1;
}

fn next_is_digit(bytes: &[u8], i: usize) -> bool {
    bytes.get(i).is_some_and(|b| b.is_ascii_digit())
}

/// Lex a quoted run starting at `start` (which holds the quote char).
/// Doubled quotes escape. Returns (content, index-after-closing-quote).
fn lex_quoted(sql: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let q = quote as u8;
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                out.push(quote);
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Multi-byte UTF-8 safe: copy the full char.
            let ch = sql[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(Error::Lex {
        pos: start,
        message: format!("unterminated {quote}-quoted literal"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_query_tokens() {
        let k = kinds("SELECT AVG(play_time) FROM sessions WHERE buffer_time > 3.5");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert_eq!(k[1], TokenKind::Ident("AVG".into()));
        assert_eq!(k[2], TokenKind::LParen);
        assert!(k.contains(&TokenKind::Gt));
        assert_eq!(*k.last().unwrap(), TokenKind::Float(3.5));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= <> != = < >"),
            vec![
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Eq,
                TokenKind::Lt,
                TokenKind::Gt
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Int(42)]);
        assert_eq!(kinds("4.25"), vec![TokenKind::Float(4.25)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5E-2"), vec![TokenKind::Float(0.025)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Float(0.5)]);
        // Overflowing integers fall back to float.
        assert_eq!(kinds("99999999999999999999"), vec![TokenKind::Float(1e20)]);
    }

    #[test]
    fn strings_and_quoted_idents() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(
            kinds("\"weird col\""),
            vec![TokenKind::QuotedIdent("weird col".into())]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT 1 -- trailing comment\n, 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2)
            ]
        );
    }

    #[test]
    fn qualified_names() {
        let k = kinds("s.buffer_time");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("s".into()),
                TokenKind::Dot,
                TokenKind::Ident("buffer_time".into())
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("SELECT @").unwrap_err();
        match err {
            Error::Lex { pos, .. } => assert_eq!(pos, 7),
            other => panic!("unexpected {other}"),
        }
    }
}
