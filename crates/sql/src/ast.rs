//! Raw (unresolved) SQL AST produced by the parser.

/// A binary operator in the raw AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column reference (`a.b` → `["a", "b"]`).
    Ident(Vec<String>),
    IntLit(i64),
    FloatLit(f64),
    StringLit(String),
    BoolLit(bool),
    NullLit,
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Neg(Box<AstExpr>),
    Not(Box<AstExpr>),
    /// Function or aggregate call. `star` marks `COUNT(*)`.
    Call {
        name: String,
        args: Vec<AstExpr>,
        star: bool,
    },
    Case {
        /// Simple form operand (`CASE x WHEN ...`), rewritten by the binder.
        operand: Option<Box<AstExpr>>,
        branches: Vec<(AstExpr, AstExpr)>,
        else_expr: Option<Box<AstExpr>>,
    },
    Cast {
        expr: Box<AstExpr>,
        ty: String,
    },
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    Between {
        expr: Box<AstExpr>,
        low: Box<AstExpr>,
        high: Box<AstExpr>,
        negated: bool,
    },
    InList {
        expr: Box<AstExpr>,
        list: Vec<AstExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<AstExpr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `(SELECT ...)` used as a scalar.
    ScalarSubquery(Box<SelectStmt>),
}

/// One item in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: AstExpr,
    pub alias: Option<String>,
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

/// An explicit `JOIN <table> ON <cond>` clause (inner joins only).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: TableRef,
    pub on: AstExpr,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: AstExpr,
    pub desc: bool,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    /// `ERROR p% CONFIDENCE c%` / `WITHIN n SECONDS`, if present.
    pub contract: Option<gola_plan::QueryContract>,
}

impl AstExpr {
    /// Convenience: build `left op right`.
    pub fn binary(op: AstBinOp, left: AstExpr, right: AstExpr) -> AstExpr {
        AstExpr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Split a predicate into top-level AND conjuncts.
    pub fn conjuncts(&self) -> Vec<&AstExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a AstExpr, out: &mut Vec<&'a AstExpr>) {
            match e {
                AstExpr::Binary {
                    op: AstBinOp::And,
                    left,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from parts (`None` for empty input).
    pub fn conjunction(parts: Vec<AstExpr>) -> Option<AstExpr> {
        let mut it = parts.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, e| AstExpr::binary(AstBinOp::And, acc, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting_roundtrip() {
        let a = AstExpr::BoolLit(true);
        let b = AstExpr::BoolLit(false);
        let c = AstExpr::IntLit(1);
        let e = AstExpr::binary(
            AstBinOp::And,
            AstExpr::binary(AstBinOp::And, a.clone(), b.clone()),
            c.clone(),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], &a);
        assert_eq!(parts[2], &c);
        let rebuilt = AstExpr::conjunction(vec![a, b, c]).unwrap();
        assert_eq!(rebuilt, e);
        assert_eq!(AstExpr::conjunction(vec![]), None);
    }

    #[test]
    fn or_is_not_split() {
        let e = AstExpr::binary(
            AstBinOp::Or,
            AstExpr::BoolLit(true),
            AstExpr::BoolLit(false),
        );
        assert_eq!(e.conjuncts().len(), 1);
    }
}
