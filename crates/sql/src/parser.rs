//! Recursive-descent SQL parser.
//!
//! Grammar (subset of SQL-92 plus `QUANTILE(x, q)`):
//!
//! ```text
//! select   := SELECT item (, item)* FROM table_ref join* [WHERE expr]
//!             [GROUP BY expr (, expr)*] [HAVING expr]
//!             [ORDER BY key (, key)*] [LIMIT int] [contract]
//! contract := WITHIN num SECONDS | ERROR num % [CONFIDENCE num %]
//! join     := [INNER] JOIN table_ref ON expr
//! expr     := or_expr
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | predicate
//! predicate:= additive [cmp additive | IS [NOT] NULL | [NOT] BETWEEN a AND b
//!             | [NOT] IN (list | select)]
//! additive := multiplicative ((+|-) multiplicative)*
//! mult     := unary ((*|/|%) unary)*
//! unary    := - unary | primary
//! primary  := literal | ident[.ident] | call | CASE ... | CAST(e AS ty)
//!             | (select) | (expr)
//! ```

use gola_common::{Error, Result};
use gola_plan::QueryContract;

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parse a single SELECT statement (an optional trailing `;` is allowed).
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_select_stmt()?;
    if p.peek_kind() == Some(&TokenKind::Semicolon) {
        p.advance();
    }
    if p.pos < p.tokens.len() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek_kind(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek_keyword(&self) -> Option<String> {
        self.peek_kind().and_then(TokenKind::keyword)
    }

    fn keyword_at(&self, offset: usize) -> Option<String> {
        self.tokens
            .get(self.pos + offset)
            .and_then(|t| t.kind.keyword())
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn error(&self, msg: impl Into<String>) -> Error {
        Error::Parse {
            pos: self.pos,
            message: msg.into(),
        }
    }

    /// Consume `kw` (case-insensitive) or error.
    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kw}")))
        }
    }

    /// Consume `kw` if present.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword().as_deref() == Some(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek_kind() == Some(&kind) {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind:?}, found {:?}", self.peek_kind())))
        }
    }

    fn eat_token(&mut self, kind: TokenKind) -> bool {
        if self.peek_kind() == Some(&kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn parse_select_stmt(&mut self) -> Result<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_token(TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let save = self.pos;
            if self.eat_keyword("INNER") {
                if !self.eat_keyword("JOIN") {
                    self.pos = save;
                    break;
                }
            } else if !self.eat_keyword("JOIN") {
                break;
            }
            let table = self.parse_table_ref()?;
            self.expect_keyword("ON")?;
            let on = self.parse_expr()?;
            joins.push(JoinClause { table, on });
        }
        if self.peek_kind() == Some(&TokenKind::Comma) {
            return Err(self.error(
                "comma joins are not supported; use explicit JOIN ... ON with the \
                 fact table listed first",
            ));
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.parse_expr()?);
            while self.eat_token(TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_token(TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance().map(|t| t.kind.clone()) {
                Some(TokenKind::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        let contract = self.parse_contract()?;
        Ok(SelectStmt {
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            contract,
        })
    }

    /// Parse an optional BlinkDB-style accuracy contract:
    /// `WITHIN <n> SECONDS` or `ERROR <p>% [CONFIDENCE <c>%]`.
    fn parse_contract(&mut self) -> Result<Option<QueryContract>> {
        if self.eat_keyword("WITHIN") {
            let seconds = self.parse_signed_number("WITHIN")?;
            self.expect_keyword("SECONDS")?;
            if seconds <= 0.0 {
                return Err(self.error(format!(
                    "WITHIN expects a positive number of seconds, got {seconds}"
                )));
            }
            return Ok(Some(QueryContract::Within { seconds }));
        }
        if self.eat_keyword("ERROR") {
            let target = self.parse_percentage("ERROR")?;
            let confidence = if self.eat_keyword("CONFIDENCE") {
                self.parse_percentage("CONFIDENCE")?
            } else {
                0.95
            };
            return Ok(Some(QueryContract::Error { target, confidence }));
        }
        Ok(None)
    }

    /// A (possibly negative) numeric literal, as a float.
    fn parse_signed_number(&mut self, clause: &str) -> Result<f64> {
        let neg = self.eat_token(TokenKind::Minus);
        let v = match self.advance().map(|t| t.kind.clone()) {
            Some(TokenKind::Int(n)) => n as f64,
            Some(TokenKind::Float(f)) => f,
            other => return Err(self.error(format!("{clause} expects a number, found {other:?}"))),
        };
        Ok(if neg { -v } else { v })
    }

    /// `<num> %` with the percentage required to lie strictly inside
    /// (0, 100); returns the fraction (5% → 0.05).
    fn parse_percentage(&mut self, clause: &str) -> Result<f64> {
        let v = self.parse_signed_number(clause)?;
        if !self.eat_token(TokenKind::Percent) {
            return Err(self.error(format!("{clause} expects a percentage (e.g. 5%)")));
        }
        if !(v > 0.0 && v < 100.0) {
            return Err(self.error(format!(
                "{clause} expects a percentage in (0, 100), got {v}"
            )));
        }
        Ok(v / 100.0)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        let expr = self.parse_expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.parse_ident_string()?)
        } else {
            // Bare alias: an identifier that is not a clause keyword.
            match self.peek_keyword().as_deref() {
                Some(
                    "FROM" | "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "JOIN" | "INNER"
                    | "ON" | "AND" | "OR" | "ASC" | "DESC" | "WITHIN" | "ERROR",
                )
                | None => None,
                Some(_) => match self.peek_kind() {
                    Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                        Some(self.parse_ident_string()?)
                    }
                    _ => None,
                },
            }
        };
        Ok(SelectItem { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let table = self.parse_ident_string()?;
        let alias = match self.peek_keyword().as_deref() {
            Some("AS") => {
                self.advance();
                Some(self.parse_ident_string()?)
            }
            Some(
                "WHERE" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "JOIN" | "INNER" | "ON"
                | "WITHIN" | "ERROR",
            )
            | None => None,
            Some(_) => match self.peek_kind() {
                Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                    Some(self.parse_ident_string()?)
                }
                _ => None,
            },
        };
        Ok(TableRef { table, alias })
    }

    fn parse_ident_string(&mut self) -> Result<String> {
        match self.advance().map(|t| t.kind.clone()) {
            Some(TokenKind::Ident(s)) | Some(TokenKind::QuotedIdent(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Entry point for expressions.
    pub fn parse_expr(&mut self) -> Result<AstExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = AstExpr::binary(AstBinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = AstExpr::binary(AstBinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<AstExpr> {
        if self.eat_keyword("NOT") {
            Ok(AstExpr::Not(Box::new(self.parse_not()?)))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<AstExpr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek_keyword().as_deref() == Some("IS") {
            self.advance();
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN
        let negated = if self.peek_keyword().as_deref() == Some("NOT")
            && matches!(self.keyword_at(1).as_deref(), Some("BETWEEN") | Some("IN"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_token(TokenKind::LParen)?;
            if self.peek_keyword().as_deref() == Some("SELECT") {
                let sub = self.parse_select_stmt()?;
                self.expect_token(TokenKind::RParen)?;
                return Ok(AstExpr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_token(TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_token(TokenKind::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.error("expected BETWEEN or IN after NOT"));
        }
        // Comparison.
        let op = match self.peek_kind() {
            Some(TokenKind::Eq) => Some(AstBinOp::Eq),
            Some(TokenKind::NotEq) => Some(AstBinOp::NotEq),
            Some(TokenKind::Lt) => Some(AstBinOp::Lt),
            Some(TokenKind::LtEq) => Some(AstBinOp::LtEq),
            Some(TokenKind::Gt) => Some(AstBinOp::Gt),
            Some(TokenKind::GtEq) => Some(AstBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(AstExpr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => AstBinOp::Add,
                Some(TokenKind::Minus) => AstBinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => AstBinOp::Mul,
                Some(TokenKind::Slash) => AstBinOp::Div,
                Some(TokenKind::Percent) => AstBinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = AstExpr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr> {
        if self.eat_token(TokenKind::Minus) {
            return Ok(AstExpr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_token(TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<AstExpr> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Int(v)) => {
                self.advance();
                Ok(AstExpr::IntLit(v))
            }
            Some(TokenKind::Float(v)) => {
                self.advance();
                Ok(AstExpr::FloatLit(v))
            }
            Some(TokenKind::Str(s)) => {
                self.advance();
                Ok(AstExpr::StringLit(s))
            }
            Some(TokenKind::LParen) => {
                self.advance();
                if self.peek_keyword().as_deref() == Some("SELECT") {
                    let sub = self.parse_select_stmt()?;
                    self.expect_token(TokenKind::RParen)?;
                    return Ok(AstExpr::ScalarSubquery(Box::new(sub)));
                }
                let e = self.parse_expr()?;
                self.expect_token(TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                match self.peek_keyword().as_deref() {
                    Some("TRUE") => {
                        self.advance();
                        return Ok(AstExpr::BoolLit(true));
                    }
                    Some("FALSE") => {
                        self.advance();
                        return Ok(AstExpr::BoolLit(false));
                    }
                    Some("NULL") => {
                        self.advance();
                        return Ok(AstExpr::NullLit);
                    }
                    Some("CASE") => return self.parse_case(),
                    Some("CAST") => return self.parse_cast(),
                    _ => {}
                }
                let name = self.parse_ident_string()?;
                // Function call?
                if self.peek_kind() == Some(&TokenKind::LParen) {
                    self.advance();
                    if self.eat_token(TokenKind::Star) {
                        self.expect_token(TokenKind::RParen)?;
                        return Ok(AstExpr::Call {
                            name,
                            args: vec![],
                            star: true,
                        });
                    }
                    let mut args = Vec::new();
                    if self.peek_kind() != Some(&TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat_token(TokenKind::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect_token(TokenKind::RParen)?;
                    return Ok(AstExpr::Call {
                        name,
                        args,
                        star: false,
                    });
                }
                // Qualified reference a.b (at most two parts).
                if self.eat_token(TokenKind::Dot) {
                    let col = self.parse_ident_string()?;
                    return Ok(AstExpr::Ident(vec![name, col]));
                }
                Ok(AstExpr::Ident(vec![name]))
            }
            other => Err(self.error(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_case(&mut self) -> Result<AstExpr> {
        self.expect_keyword("CASE")?;
        let operand = if self.peek_keyword().as_deref() != Some("WHEN") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let result = self.parse_expr()?;
            branches.push((cond, result));
        }
        if branches.is_empty() {
            return Err(self.error("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(AstExpr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_cast(&mut self) -> Result<AstExpr> {
        self.expect_keyword("CAST")?;
        self.expect_token(TokenKind::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword("AS")?;
        let ty = self.parse_ident_string()?;
        self.expect_token(TokenKind::RParen)?;
        Ok(AstExpr::Cast {
            expr: Box::new(expr),
            ty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sbi_query() {
        let sql = "SELECT AVG(play_time) FROM Sessions \
                   WHERE buffer_time > (SELECT AVG(buffer_time) FROM Sessions)";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.items.len(), 1);
        assert_eq!(stmt.from.table, "Sessions");
        match stmt.where_clause.unwrap() {
            AstExpr::Binary {
                op: AstBinOp::Gt,
                right,
                ..
            } => {
                assert!(matches!(*right, AstExpr::ScalarSubquery(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_group_having_order_limit() {
        let sql = "SELECT ad_id, SUM(revenue) AS rev FROM logs \
                   GROUP BY ad_id HAVING SUM(revenue) > 100 \
                   ORDER BY rev DESC, ad_id LIMIT 10";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.group_by.len(), 1);
        assert!(stmt.having.is_some());
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].desc);
        assert!(!stmt.order_by[1].desc);
        assert_eq!(stmt.limit, Some(10));
        assert_eq!(stmt.items[1].alias.as_deref(), Some("rev"));
    }

    #[test]
    fn parses_joins() {
        let sql = "SELECT s.play_time FROM sessions s JOIN ads a ON s.ad_id = a.ad_id \
                   INNER JOIN geo g ON s.geo_id = g.id WHERE a.kind = 'video'";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.joins.len(), 2);
        assert_eq!(stmt.joins[0].table.table, "ads");
        assert_eq!(stmt.joins[0].table.alias.as_deref(), Some("a"));
        assert_eq!(stmt.from.alias.as_deref(), Some("s"));
    }

    #[test]
    fn comma_join_rejected_with_hint() {
        let err = parse_select("SELECT 1 FROM a, b").unwrap_err();
        assert!(err.to_string().contains("JOIN"), "{err}");
    }

    #[test]
    fn precedence_and_associativity() {
        let e = parse_select("SELECT 1 + 2 * 3 - 4 FROM t").unwrap().items[0]
            .expr
            .clone();
        // ((1 + (2*3)) - 4)
        match e {
            AstExpr::Binary {
                op: AstBinOp::Sub,
                left,
                ..
            } => match *left {
                AstExpr::Binary {
                    op: AstBinOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        *right,
                        AstExpr::Binary {
                            op: AstBinOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn logical_precedence() {
        let stmt = parse_select("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND NOT c = 3").unwrap();
        // OR(a=1, AND(b=2, NOT(c=3)))
        match stmt.where_clause.unwrap() {
            AstExpr::Binary {
                op: AstBinOp::Or,
                right,
                ..
            } => match *right {
                AstExpr::Binary {
                    op: AstBinOp::And,
                    right,
                    ..
                } => {
                    assert!(matches!(*right, AstExpr::Not(_)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star_and_quantile() {
        let stmt = parse_select("SELECT COUNT(*), QUANTILE(x, 0.95) FROM t").unwrap();
        assert!(matches!(
            &stmt.items[0].expr,
            AstExpr::Call { star: true, name, .. } if name == "COUNT"
        ));
        assert!(matches!(
            &stmt.items[1].expr,
            AstExpr::Call { args, .. } if args.len() == 2
        ));
    }

    #[test]
    fn between_in_isnull() {
        let stmt = parse_select(
            "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2) AND c IS NOT NULL",
        )
        .unwrap();
        let w = stmt.where_clause.unwrap();
        let parts = w.conjuncts();
        assert_eq!(parts.len(), 3);
        assert!(matches!(parts[0], AstExpr::Between { negated: false, .. }));
        assert!(matches!(parts[1], AstExpr::InList { negated: true, .. }));
        assert!(matches!(parts[2], AstExpr::IsNull { negated: true, .. }));
    }

    #[test]
    fn in_subquery() {
        let stmt = parse_select(
            "SELECT AVG(x) FROM t WHERE k IN (SELECT k FROM t GROUP BY k HAVING SUM(q) > 300)",
        )
        .unwrap();
        assert!(matches!(
            stmt.where_clause.unwrap(),
            AstExpr::InSubquery { .. }
        ));
    }

    #[test]
    fn case_expressions() {
        let stmt = parse_select("SELECT CASE WHEN x > 1 THEN 'a' ELSE 'b' END FROM t").unwrap();
        assert!(matches!(
            &stmt.items[0].expr,
            AstExpr::Case { operand: None, .. }
        ));
        let stmt = parse_select("SELECT CASE x WHEN 1 THEN 'a' END FROM t").unwrap();
        assert!(matches!(
            &stmt.items[0].expr,
            AstExpr::Case {
                operand: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn cast_and_unary() {
        let stmt = parse_select("SELECT CAST(-x AS FLOAT) FROM t").unwrap();
        match &stmt.items[0].expr {
            AstExpr::Cast { expr, ty } => {
                assert_eq!(ty, "FLOAT");
                assert!(matches!(expr.as_ref(), AstExpr::Neg(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_select("SELECT 1 FROM t extra junk here").is_err());
        assert!(parse_select("SELECT 1 FROM t;").is_ok());
    }

    #[test]
    fn nested_subqueries_two_levels() {
        let sql = "SELECT AVG(a) FROM t WHERE b > \
                   (SELECT AVG(b) FROM t WHERE c > (SELECT AVG(c) FROM t))";
        let stmt = parse_select(sql).unwrap();
        match stmt.where_clause.unwrap() {
            AstExpr::Binary { right, .. } => match *right {
                AstExpr::ScalarSubquery(inner) => {
                    assert!(matches!(
                        inner.where_clause.unwrap(),
                        AstExpr::Binary { .. }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_error_confidence_contract() {
        let stmt = parse_select("SELECT AVG(x) FROM t ERROR 5% CONFIDENCE 99%").unwrap();
        match stmt.contract {
            Some(QueryContract::Error { target, confidence }) => {
                assert!((target - 0.05).abs() < 1e-12);
                assert!((confidence - 0.99).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_contract_confidence_defaults_to_95() {
        let stmt = parse_select("SELECT AVG(x) FROM t GROUP BY k ERROR 2.5%").unwrap();
        match stmt.contract {
            Some(QueryContract::Error { target, confidence }) => {
                assert!((target - 0.025).abs() < 1e-12);
                assert!((confidence - 0.95).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_within_seconds_contract() {
        let stmt = parse_select("SELECT SUM(x) FROM t WHERE x > 1 WITHIN 2.5 SECONDS").unwrap();
        match stmt.contract {
            Some(QueryContract::Within { seconds }) => assert!((seconds - 2.5).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_select("SELECT SUM(x) FROM t")
            .unwrap()
            .contract
            .is_none());
    }

    #[test]
    fn contract_composes_with_limit_and_order() {
        let stmt = parse_select(
            "SELECT k, AVG(x) FROM t GROUP BY k ORDER BY k LIMIT 3 ERROR 10% CONFIDENCE 90%",
        )
        .unwrap();
        assert_eq!(stmt.limit, Some(3));
        assert!(matches!(stmt.contract, Some(QueryContract::Error { .. })));
    }

    #[test]
    fn contract_keywords_not_eaten_as_aliases() {
        // WITHIN/ERROR start a contract clause, never a bare column or
        // table alias.
        let stmt = parse_select("SELECT AVG(x) FROM t WITHIN 1 SECONDS").unwrap();
        assert_eq!(stmt.from.alias, None);
        let stmt = parse_select("SELECT AVG(x) FROM t ERROR 5%").unwrap();
        assert_eq!(stmt.from.alias, None);
        assert!(matches!(stmt.contract, Some(QueryContract::Error { .. })));
    }
}
