//! The snapshot timestamp — gola-obs's one sanctioned `SystemTime` read.
//!
//! Everything else in this crate measures elapsed time through
//! [`gola_common::timing::Stopwatch`]; the only absolute-time value is the
//! `generated_unix_ms` field stamped onto JSON snapshots, and only when the
//! caller opted into wall-clock output (`--timings`). golint's
//! schedule-leak rule blesses exactly this module, mirroring how
//! `crates/common/src/timing.rs` is the blessed home for `Instant`.

use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (0 if the system clock reads earlier
/// than the epoch, rather than panicking inside an exporter).
pub fn unix_millis() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn epoch_is_in_the_past() {
        // Any sane clock reads after 2020-01-01.
        assert!(super::unix_millis() > 1_577_836_800_000);
    }
}
