//! `validate-metrics` — check a `--metrics-out` JSON snapshot against a
//! schema of required metrics.
//!
//! ```text
//! validate-metrics <snapshot.json> <schema.json>
//! ```
//!
//! The schema (see `scripts/metrics_schema.json`) lists, per section, the
//! metric names that must be present:
//!
//! ```json
//! {"required": {"counters": ["report.batches"], "gauges": [...],
//!               "histograms": [...], "spans": [...]}}
//! ```
//!
//! Beyond presence, the validator checks structure: the snapshot must be a
//! version-1 object with all four sections, counters must be non-negative
//! numbers, histograms/spans must carry a `count`, and — unless the
//! snapshot was taken with timings on — no wall-clock field may appear.
//! Exit status is non-zero with one line per violation.

use std::process::ExitCode;

use gola_obs::json::{parse, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, schema_path] = args.as_slice() else {
        eprintln!("usage: validate-metrics <snapshot.json> <schema.json>");
        return ExitCode::from(2);
    };
    let mut errors = Vec::new();
    let snapshot = match read_json(snapshot_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate-metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let schema = match read_json(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("validate-metrics: {e}");
            return ExitCode::from(2);
        }
    };
    validate(&snapshot, &schema, &mut errors);
    if errors.is_empty() {
        println!("validate-metrics: {snapshot_path} ok");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("validate-metrics: {e}");
        }
        ExitCode::FAILURE
    }
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

const SECTIONS: [&str; 4] = ["counters", "gauges", "histograms", "spans"];

fn validate(snapshot: &Value, schema: &Value, errors: &mut Vec<String>) {
    if snapshot.get("version").and_then(Value::as_f64) != Some(1.0) {
        errors.push("snapshot version must be 1".to_string());
    }
    let timings = snapshot.get("timings") == Some(&Value::Bool(true));
    if !timings && snapshot.get("generated_unix_ms").is_some() {
        errors.push("wall-clock timestamp present without timings".to_string());
    }

    for section in SECTIONS {
        let Some(Value::Object(entries)) = snapshot.get(section) else {
            errors.push(format!("snapshot missing '{section}' object"));
            continue;
        };
        // Structural checks per section.
        for (name, v) in entries {
            match section {
                "counters" => {
                    if !matches!(v.as_f64(), Some(n) if n >= 0.0) {
                        errors.push(format!("counter '{name}' is not a non-negative number"));
                    }
                }
                "gauges" => {
                    if !matches!(v, Value::Number(_) | Value::Null) {
                        errors.push(format!("gauge '{name}' is not a number"));
                    }
                }
                _ => {
                    if !matches!(v.get("count").and_then(Value::as_f64), Some(n) if n >= 0.0) {
                        errors.push(format!("{section} entry '{name}' lacks a count"));
                    }
                    if !timings {
                        let clock_field = if section == "spans" {
                            "total_seconds"
                        } else {
                            "sum"
                        };
                        if v.get(clock_field).is_some() {
                            errors.push(format!(
                                "{section} entry '{name}' leaks wall-clock '{clock_field}' \
                                 without timings"
                            ));
                        }
                    }
                }
            }
        }
        // Required names from the schema.
        let required = schema.get("required").and_then(|r| r.get(section));
        if let Some(Value::Array(names)) = required {
            for n in names {
                let Some(name) = n.as_str() else {
                    errors.push(format!("schema: '{section}' entries must be strings"));
                    continue;
                };
                if !entries.contains_key(name) {
                    errors.push(format!("required {section} metric '{name}' missing"));
                }
            }
        }
    }
}
