//! `gola-obs` — inert observability for the G-OLA engine.
//!
//! A span API plus a metrics registry (monotonic counters, gauges,
//! fixed-bucket histograms) with two exporters: a JSON snapshot and the
//! Prometheus text format. Zero external dependencies; all elapsed-time
//! measurement routes through the blessed [`gola_common::timing::Stopwatch`]
//! so golint's schedule-leak rule holds (the one absolute-time read lives
//! in [`clock`], which the rule blesses explicitly).
//!
//! # The no-perturbation contract
//!
//! Observability must never change what the engine computes:
//!
//! * **Write-only in the hot path.** Handles record into atomics; nothing
//!   in `gola-core` ever reads a metric back. The `tests/obs_inert.rs`
//!   integration test proves `BatchReport`s are bit-identical with the
//!   registry enabled vs. disabled at threads 1 and 4.
//! * **Off by default, cheap when off.** Instrumentation sites check
//!   [`enabled`] (one relaxed atomic load) before creating handles or
//!   reading clocks; a disabled registry stays empty.
//! * **Deterministic exports.** Metrics are stored and exported in sorted
//!   name order, and wall-clock-derived values (duration sums, span elapsed
//!   time, the snapshot timestamp) are excluded unless the caller passes
//!   `timings = true` — so the default snapshot of a seeded run is
//!   byte-for-byte reproducible.
//! * **Schedule-independent parent links.** Span nesting uses a
//!   thread-local stack, and the worker pool re-establishes the submitting
//!   thread's span path around every job ([`span::current_path`] /
//!   [`span::with_path`]), so parent edges depend on program structure, not
//!   on which thread a job landed on.
//!
//! # Usage
//!
//! ```
//! gola_obs::set_enabled(true);
//! {
//!     let _span = gola_obs::span!("classify", batch = 3);
//!     gola_obs::counter("core.chunks").add(7);
//! }
//! let snapshot = gola_obs::snapshot_json(false);
//! assert!(snapshot.contains("\"core.chunks\": 7"));
//! # gola_obs::set_enabled(false);
//! # gola_obs::reset();
//! ```

pub mod clock;
pub mod export;
pub mod json;
pub mod registry;
pub mod span;

pub use export::{prometheus, snapshot_json};
pub use registry::{
    counter, counter_with, duration_histogram, enabled, gauge, gauge_with, histogram, labeled,
    reset, set_enabled, Counter, Gauge, Histogram, DURATION_BOUNDS,
};
pub use span::SpanGuard;
