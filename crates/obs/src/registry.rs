//! The metrics registry: named counters, gauges, histograms, and span
//! statistics behind cheap atomic handles.
//!
//! Design constraints, in order:
//!
//! 1. **Inert.** Nothing recorded here may flow back into computation.
//!    Handles expose write-mostly APIs; reads happen only at export time.
//! 2. **Cheap when off.** Instrumentation sites gate on [`enabled`] (one
//!    relaxed atomic load) before touching a clock or creating a handle, so
//!    a disabled registry costs a branch and stays empty.
//! 3. **Deterministic.** Metrics live in a `BTreeMap` keyed by name, so
//!    export order is sorted and independent of registration order, hash
//!    state, or thread schedule. Values derived from the wall clock are
//!    tagged [`timing`](Histogram) and excluded from exports unless the
//!    caller explicitly asks for them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding one `f64` (stored as bits so the handle
/// stays lock-free).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

pub(crate) struct HistCore {
    /// Upper bucket bounds, ascending; an implicit `+inf` bucket follows.
    pub(crate) bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    /// Running sum of observed values, stored as `f64` bits (CAS loop).
    pub(crate) sum_bits: AtomicU64,
    /// Wall-clock-derived histograms are hidden from deterministic exports.
    pub(crate) timing: bool,
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistCore>,
}

impl Histogram {
    pub fn observe(&self, v: f64) {
        let idx = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }
}

pub(crate) struct SpanCore {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    /// Parent-span name -> number of times this span closed under it. Only
    /// touched on span close (stage granularity), never per tuple.
    pub(crate) parents: Mutex<BTreeMap<&'static str, u64>>,
}

pub(crate) enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCore>),
    Span(Arc<SpanCore>),
}

/// The process-wide registry. Use the free functions ([`counter`],
/// [`gauge`], ...) rather than holding a reference.
pub struct Registry {
    enabled: AtomicBool,
    pub(crate) metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            enabled: AtomicBool::new(false),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }
}

/// The global registry instance.
pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Is metric collection on? One relaxed load — instrumentation sites check
/// this before creating handles or reading clocks.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide.
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

/// Zero every registered metric in place. Registrations (and any cached
/// handles — instrumented crates hold theirs in `OnceLock` statics) stay
/// valid and keep writing into the same cells. Used between runs and by
/// tests.
pub fn reset() {
    let map = global().metrics.lock().unwrap();
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => g.store(0f64.to_bits(), Ordering::Relaxed),
            Metric::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
            }
            Metric::Span(s) => {
                s.count.store(0, Ordering::Relaxed);
                s.total_ns.store(0, Ordering::Relaxed);
                s.parents.lock().unwrap().clear();
            }
        }
    }
}

fn register<T>(
    name: &str,
    make: impl FnOnce() -> Metric,
    pick: impl FnOnce(&Metric) -> Option<T>,
) -> T {
    let mut map = global().metrics.lock().unwrap();
    let metric = map.entry(name.to_string()).or_insert_with(make);
    pick(metric).unwrap_or_else(|| panic!("metric '{name}' already registered with another type"))
}

/// Build the canonical registry key for a labeled metric:
/// `name{k1="v1",k2="v2"}` with label pairs sorted by key and `"`/`\`
/// escaped in values. Metrics differing only in labels are distinct
/// registry entries but one logical family — the Prometheus exporter
/// splits the key back apart so every labeled series shares its family's
/// `# TYPE` header and name.
///
/// Labels exist for *dimensions with bounded, code-controlled
/// cardinality* — the canonical use is the query service's per-session
/// `session` dimension, so concurrent sessions never write through the
/// same gauge cell. Do not put user input in label values.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => key.push_str("\\\""),
                '\\' => key.push_str("\\\\"),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

/// Split a canonical registry key back into `(family name, label block)`.
/// Unlabeled keys return `(key, None)`.
pub(crate) fn split_labels(key: &str) -> (&str, Option<&str>) {
    match key.split_once('{') {
        Some((name, rest)) => (name, rest.strip_suffix('}')),
        None => (key, None),
    }
}

/// Get or create the counter `name` with a label set (one registry cell
/// per distinct label combination).
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    counter(&labeled(name, labels))
}

/// Get or create the gauge `name` with a label set.
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    gauge(&labeled(name, labels))
}

/// Get or create the counter `name`.
pub fn counter(name: &str) -> Counter {
    register(
        name,
        || Metric::Counter(Arc::new(AtomicU64::new(0))),
        |m| match m {
            Metric::Counter(c) => Some(Counter {
                cell: Arc::clone(c),
            }),
            _ => None,
        },
    )
}

/// Get or create the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    register(
        name,
        || Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        |m| match m {
            Metric::Gauge(g) => Some(Gauge {
                bits: Arc::clone(g),
            }),
            _ => None,
        },
    )
}

fn histogram_with(name: &str, bounds: &[f64], timing: bool) -> Histogram {
    register(
        name,
        || {
            let mut buckets = Vec::with_capacity(bounds.len() + 1);
            buckets.resize_with(bounds.len() + 1, || AtomicU64::new(0));
            Metric::Histogram(Arc::new(HistCore {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                timing,
            }))
        },
        |m| match m {
            Metric::Histogram(h) => Some(Histogram {
                core: Arc::clone(h),
            }),
            _ => None,
        },
    )
}

/// Get or create a histogram over deterministic values (exported in full
/// even without `--timings`).
pub fn histogram(name: &str, bounds: &[f64]) -> Histogram {
    histogram_with(name, bounds, false)
}

/// Log-spaced seconds buckets from 1µs to 10s — the shared shape for every
/// duration histogram.
pub const DURATION_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Get or create a wall-clock duration histogram (seconds). Its sum and
/// buckets are wall-clock-derived, so deterministic exports show only its
/// count.
pub fn duration_histogram(name: &str) -> Histogram {
    histogram_with(name, &DURATION_BOUNDS, true)
}

/// Record one closed span occurrence. Called by the span guard on drop.
pub(crate) fn record_span(name: &'static str, elapsed: Duration, parent: &'static str) {
    let core = register(
        name,
        || {
            Metric::Span(Arc::new(SpanCore {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                parents: Mutex::new(BTreeMap::new()),
            }))
        },
        |m| match m {
            Metric::Span(s) => Some(Arc::clone(s)),
            _ => None,
        },
    );
    core.count.fetch_add(1, Ordering::Relaxed);
    core.total_ns
        .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    *core.parents.lock().unwrap().entry(parent).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so each test uses its own metric
    // names rather than relying on `reset` (tests run concurrently).

    #[test]
    fn counter_accumulates() {
        let c = counter("test.reg.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(counter("test.reg.counter").get(), 5);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.reg.gauge");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = histogram("test.reg.hist", &[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 0.1] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        let map = global().metrics.lock().unwrap();
        let Some(Metric::Histogram(core)) = map.get("test.reg.hist") else {
            panic!("histogram registered");
        };
        let loads: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        assert_eq!(loads, vec![2, 1, 1]);
        assert!((f64::from_bits(core.sum_bits.load(Ordering::Relaxed)) - 55.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered with another type")]
    fn type_mismatch_panics() {
        counter("test.reg.mismatch");
        gauge("test.reg.mismatch");
    }

    #[test]
    fn labeled_keys_are_canonical() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(
            labeled("m", &[("session", "s3"), ("kind", "avg")]),
            "m{kind=\"avg\",session=\"s3\"}",
            "labels sort by key"
        );
        assert_eq!(labeled("m", &[("k", "a\"b\\c")]), "m{k=\"a\\\"b\\\\c\"}");
        assert_eq!(split_labels("m{k=\"v\"}"), ("m", Some("k=\"v\"")));
        assert_eq!(split_labels("m"), ("m", None));
    }

    #[test]
    fn labeled_series_are_distinct_cells() {
        let a = counter_with("test.reg.sessions", &[("session", "a")]);
        let b = counter_with("test.reg.sessions", &[("session", "b")]);
        a.add(3);
        b.add(5);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 5);
        let ga = gauge_with("test.reg.sgauge", &[("session", "a")]);
        let gb = gauge_with("test.reg.sgauge", &[("session", "b")]);
        ga.set(1.5);
        gb.set(-2.5);
        assert_eq!(ga.get(), 1.5);
        assert_eq!(gb.get(), -2.5);
        // Re-resolving the same label set shares the cell.
        assert_eq!(
            counter_with("test.reg.sessions", &[("session", "a")]).get(),
            3
        );
    }
}
