//! Exporters: a JSON snapshot and the Prometheus text format.
//!
//! Both walk the registry's `BTreeMap`, so output order is sorted by metric
//! name — independent of registration order and thread schedule. The
//! `timings` flag controls whether wall-clock-derived values (duration
//! histogram sums/buckets, span elapsed totals, the snapshot timestamp)
//! appear at all; with `timings = false` the output is a pure function of
//! the computation's deterministic event counts and gauge values.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use crate::registry::{global, Metric};

/// JSON-escape a metric name (names are code-controlled ASCII, but escaping
/// keeps the exporter total).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value (`null` for non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; that is still a valid
        // JSON number, so leave it.
        s
    } else {
        "null".to_string()
    }
}

/// Deterministic JSON snapshot of every registered metric.
pub fn snapshot_json(timings: bool) -> String {
    let map = global().metrics.lock().unwrap();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    let mut spans = Vec::new();
    for (name, metric) in map.iter() {
        let name = esc(name);
        match metric {
            Metric::Counter(c) => {
                counters.push(format!("\"{name}\": {}", c.load(Ordering::Relaxed)));
            }
            Metric::Gauge(g) => {
                gauges.push(format!(
                    "\"{name}\": {}",
                    json_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                ));
            }
            Metric::Histogram(h) => {
                let count = h.count.load(Ordering::Relaxed);
                let mut entry = format!("\"{name}\": {{\"count\": {count}");
                if !h.timing || timings {
                    let _ = write!(
                        entry,
                        ", \"sum\": {}",
                        json_f64(f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
                    );
                    let bounds: Vec<String> = h.bounds.iter().map(|&b| json_f64(b)).collect();
                    let counts: Vec<String> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed).to_string())
                        .collect();
                    let _ = write!(
                        entry,
                        ", \"bounds\": [{}], \"bucket_counts\": [{}]",
                        bounds.join(", "),
                        counts.join(", ")
                    );
                }
                entry.push('}');
                hists.push(entry);
            }
            Metric::Span(s) => {
                let count = s.count.load(Ordering::Relaxed);
                let mut entry = format!("\"{name}\": {{\"count\": {count}");
                if timings {
                    let secs = s.total_ns.load(Ordering::Relaxed) as f64 / 1e9;
                    let _ = write!(entry, ", \"total_seconds\": {}", json_f64(secs));
                }
                let parents = s.parents.lock().unwrap();
                let edges: Vec<String> = parents
                    .iter()
                    .map(|(p, n)| format!("\"{}\": {n}", esc(p)))
                    .collect();
                let _ = write!(entry, ", \"parents\": {{{}}}}}", edges.join(", "));
                spans.push(entry);
            }
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n");
    let _ = writeln!(out, "  \"timings\": {timings},");
    if timings {
        let _ = writeln!(
            out,
            "  \"generated_unix_ms\": {},",
            crate::clock::unix_millis()
        );
    }
    let _ = writeln!(out, "  \"counters\": {{{}}},", counters.join(", "));
    let _ = writeln!(out, "  \"gauges\": {{{}}},", gauges.join(", "));
    let _ = writeln!(out, "  \"histograms\": {{{}}},", hists.join(", "));
    let _ = writeln!(out, "  \"spans\": {{{}}}", spans.join(", "));
    out.push('}');
    out.push('\n');
    out
}

/// Sanitize a metric name into a Prometheus identifier with the `gola_`
/// namespace prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("gola_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Prometheus text-format export (one `# TYPE` header per family, sorted by
/// metric name).
pub fn prometheus(timings: bool) -> String {
    let map = global().metrics.lock().unwrap();
    let mut out = String::new();
    // Registry keys may carry a label block (`name{session="s3"}`, see
    // `registry::labeled`). Series of one family sort adjacently in the
    // BTreeMap ("f" < "f{...}" < "g"), so one `# TYPE` header per family
    // suffices: emit it only when the family name changes.
    let mut last_family = String::new();
    for (key, metric) in map.iter() {
        let (name, labels) = crate::registry::split_labels(key);
        let labels = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
        match metric {
            Metric::Counter(c) => {
                let n = prom_name(name);
                if last_family != n {
                    let _ = writeln!(out, "# TYPE {n}_total counter");
                    last_family = n.clone();
                }
                let _ = writeln!(out, "{n}_total{labels} {}", c.load(Ordering::Relaxed));
            }
            Metric::Gauge(g) => {
                let n = prom_name(name);
                if last_family != n {
                    let _ = writeln!(out, "# TYPE {n} gauge");
                    last_family = n.clone();
                }
                let _ = writeln!(
                    out,
                    "{n}{labels} {}",
                    prom_f64(f64::from_bits(g.load(Ordering::Relaxed)))
                );
            }
            Metric::Histogram(h) => {
                let n = prom_name(name);
                let count = h.count.load(Ordering::Relaxed);
                if h.timing && !timings {
                    // Deterministic face of a wall-clock histogram: only
                    // the event count.
                    let _ = writeln!(out, "# TYPE {n}_count counter");
                    let _ = writeln!(out, "{n}_count {count}");
                    continue;
                }
                let _ = writeln!(out, "# TYPE {n} histogram");
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative += h.buckets[i].load(Ordering::Relaxed);
                    let _ = writeln!(
                        out,
                        "{n}_bucket{{le=\"{}\"}} {cumulative}",
                        prom_f64(*bound)
                    );
                }
                cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
                let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(
                    out,
                    "{n}_sum {}",
                    prom_f64(f64::from_bits(h.sum_bits.load(Ordering::Relaxed)))
                );
                let _ = writeln!(out, "{n}_count {count}");
            }
            Metric::Span(s) => {
                let n = prom_name(&format!("span_{name}"));
                let _ = writeln!(out, "# TYPE {n}_total counter");
                let _ = writeln!(out, "{n}_total {}", s.count.load(Ordering::Relaxed));
                if timings {
                    let secs = s.total_ns.load(Ordering::Relaxed) as f64 / 1e9;
                    let _ = writeln!(out, "# TYPE {n}_seconds_total counter");
                    let _ = writeln!(out, "{n}_seconds_total {}", prom_f64(secs));
                }
                let parents = s.parents.lock().unwrap();
                if !parents.is_empty() {
                    let _ = writeln!(out, "# TYPE {n}_parent_total counter");
                    for (p, cnt) in parents.iter() {
                        let _ = writeln!(out, "{n}_parent_total{{parent=\"{}\"}} {cnt}", esc(p));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use super::*;
    use crate::json::{parse, Value};
    use crate::registry;

    // The registry is process-global and unit tests share it, so these
    // tests assert containment / parseability with unique names rather than
    // whole-snapshot equality (the integration tests own a clean process
    // and check full determinism there).

    #[test]
    fn json_snapshot_parses_and_contains_metrics() {
        registry::counter("test.export.counter").add(7);
        registry::gauge("test.export.gauge").set(2.5);
        registry::histogram("test.export.hist", &[1.0]).observe(0.5);
        registry::duration_histogram("test.export.timing").observe(0.01);
        let snap = snapshot_json(false);
        let v = parse(&snap).expect("snapshot is valid JSON");
        let Value::Object(top) = &v else {
            panic!("object")
        };
        assert_eq!(top.get("version"), Some(&Value::Number(1.0)));
        assert_eq!(top.get("timings"), Some(&Value::Bool(false)));
        assert!(
            top.get("generated_unix_ms").is_none(),
            "no clock w/o timings"
        );
        let Some(Value::Object(counters)) = top.get("counters") else {
            panic!("counters object")
        };
        assert_eq!(
            counters.get("test.export.counter"),
            Some(&Value::Number(7.0))
        );
        let Some(Value::Object(hists)) = top.get("histograms") else {
            panic!("histograms object")
        };
        let Some(Value::Object(timing)) = hists.get("test.export.timing") else {
            panic!("timing histogram present")
        };
        assert!(timing.get("count").is_some());
        assert!(
            timing.get("sum").is_none() && timing.get("bucket_counts").is_none(),
            "wall-clock values must be hidden without timings: {timing:?}"
        );
        let Some(Value::Object(plain)) = hists.get("test.export.hist") else {
            panic!("plain histogram present")
        };
        assert!(plain.get("sum").is_some() && plain.get("bucket_counts").is_some());
    }

    #[test]
    fn json_snapshot_with_timings_has_clock_values() {
        registry::duration_histogram("test.export.timing2").observe(0.5);
        let snap = snapshot_json(true);
        let v = parse(&snap).expect("valid JSON");
        let Value::Object(top) = &v else {
            panic!("object")
        };
        assert!(top.get("generated_unix_ms").is_some());
        let Some(Value::Object(hists)) = top.get("histograms") else {
            panic!("histograms")
        };
        let Some(Value::Object(h)) = hists.get("test.export.timing2") else {
            panic!("timing hist")
        };
        assert!(h.get("sum").is_some() && h.get("bounds").is_some());
    }

    #[test]
    fn prometheus_labeled_series_share_one_family() {
        registry::counter_with("test.prom.labeled", &[("session", "a")]).add(2);
        registry::counter_with("test.prom.labeled", &[("session", "b")]).add(4);
        registry::gauge_with("test.prom.lgauge", &[("session", "a")]).set(0.5);
        let text = prometheus(false);
        assert_eq!(
            text.matches("# TYPE gola_test_prom_labeled_total counter")
                .count(),
            1,
            "one TYPE header per family: {text}"
        );
        assert!(text.contains("gola_test_prom_labeled_total{session=\"a\"} 2"));
        assert!(text.contains("gola_test_prom_labeled_total{session=\"b\"} 4"));
        assert!(text.contains("gola_test_prom_lgauge{session=\"a\"} 0.5"));
    }

    #[test]
    fn prometheus_format_shapes() {
        registry::counter("test.prom.counter").add(3);
        registry::gauge("test.prom.gauge").set(1.5);
        registry::histogram("test.prom.hist", &[1.0, 2.0]).observe(1.5);
        crate::registry::record_span("test.prom.span", Duration::from_millis(2), "(root)");
        let text = prometheus(false);
        assert!(text.contains("# TYPE gola_test_prom_counter_total counter"));
        assert!(text.contains("gola_test_prom_counter_total 3"));
        assert!(text.contains("gola_test_prom_gauge 1.5"));
        assert!(text.contains("gola_test_prom_hist_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("gola_span_test_prom_span_total 1"));
        assert!(
            !text.contains("gola_span_test_prom_span_seconds_total"),
            "span seconds are wall-clock and need --timings"
        );
        assert!(text.contains("gola_span_test_prom_span_parent_total{parent=\"(root)\"} 1"));
        let with_timings = prometheus(true);
        assert!(with_timings.contains("gola_span_test_prom_span_seconds_total"));
    }
}
