//! A minimal recursive-descent JSON parser.
//!
//! The container has no crates.io access, so the snapshot validator (and
//! the exporter's own tests) parse JSON with this ~150-line reader instead
//! of serde. It supports the full JSON grammar the exporter emits: objects,
//! arrays, strings with escapes, numbers, booleans, and null. Object keys
//! keep sorted order via `BTreeMap`, matching the exporter's determinism
//! contract.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number '{s}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e1}, "e": ""}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Number(1.0)));
        let Some(Value::Array(arr)) = v.get("b") else {
            panic!()
        };
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Value::Number(-25.0))
        );
        assert_eq!(v.get("e").and_then(Value::as_str), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        assert_eq!(parse("\"caf\u{e9}\"").unwrap().as_str(), Some("café"));
    }
}
