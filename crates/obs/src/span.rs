//! Lightweight spans: named start/stop pairs with parent links.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation and
//! drop and records it — together with a count and the name of the
//! enclosing span — into the registry. Nesting is tracked with a
//! thread-local stack of span names, which makes parent links free at
//! runtime but raises a determinism question for work-stealing executors:
//! a job may run on the submitting thread or on a pool worker, and a naive
//! thread-local stack would give the two cases different parents.
//!
//! The fix is explicit context propagation, the same shape distributed
//! tracing uses: the submitter captures [`current_path`] *at submission*
//! (deterministic — submission happens on the orchestrating thread) and the
//! pool re-establishes it around the job body with [`with_path`], wherever
//! the job physically lands. Parent links then depend only on program
//! structure, never on the schedule.

use std::cell::RefCell;

use gola_common::timing::Stopwatch;

use crate::registry;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Root label recorded as the parent of top-level spans.
pub const ROOT: &str = "(root)";

/// RAII span: times from construction to drop. Construct via the
/// [`span!`](crate::span!) macro. When the registry is disabled this is a
/// no-op that never reads the clock.
pub struct SpanGuard {
    active: Option<Active>,
}

struct Active {
    name: &'static str,
    sw: Stopwatch,
}

impl SpanGuard {
    pub fn enter(name: &'static str) -> SpanGuard {
        if !registry::enabled() {
            return SpanGuard { active: None };
        }
        STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            active: Some(Active {
                name,
                sw: Stopwatch::start(),
            }),
        }
    }

    /// Attach a named numeric field: sets the gauge `"<span>.<key>"`.
    pub fn field(&self, key: &str, value: f64) {
        if let Some(a) = &self.active {
            registry::gauge(&format!("{}.{key}", a.name)).set(value);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let elapsed = a.sw.elapsed();
        let parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own frame; the parent is whatever remains on top.
            // Guards drop in LIFO order within a thread, so the top frame is
            // ours unless `with_path` swapped the stack out mid-span (the
            // pool never does — jobs fully enclose their spans).
            stack.pop();
            stack.last().copied().unwrap_or(ROOT)
        });
        registry::record_span(a.name, elapsed, parent);
    }
}

/// Open a span. `span!("classify")` times until the guard drops;
/// `span!("classify", batch = 3)` additionally sets the gauge
/// `classify.batch = 3`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let guard = $crate::span::SpanGuard::enter($name);
        $( guard.field(stringify!($key), ($value) as f64); )+
        guard
    }};
}

/// The current thread's open-span path, outermost first. Capture this where
/// work is *submitted* and replay it with [`with_path`] where the work
/// *runs*, so parent links are schedule-independent.
pub fn current_path() -> Vec<&'static str> {
    if !registry::enabled() {
        return Vec::new();
    }
    STACK.with(|s| s.borrow().clone())
}

/// Run `f` with the span stack temporarily replaced by `path`, restoring
/// the previous stack afterwards (panic-safe: restoration happens in a drop
/// guard so a panicking job cannot poison the worker's stack).
pub fn with_path<R>(path: &[&'static str], f: impl FnOnce() -> R) -> R {
    struct Restore(Vec<&'static str>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STACK.with(|s| *s.borrow_mut() = std::mem::take(&mut self.0));
        }
    }
    let prev = STACK.with(|s| std::mem::replace(&mut *s.borrow_mut(), path.to_vec()));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_are_inert() {
        // Default-disabled registry: no stack frames, no metrics.
        let g = SpanGuard::enter("test.span.disabled");
        assert!(g.active.is_none());
        assert!(current_path().is_empty());
    }

    #[test]
    fn with_path_restores_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_path(&["outer"], || panic!("boom"));
        });
        assert!(result.is_err());
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }
}
