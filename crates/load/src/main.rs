//! # gola-load — load-test harness for the multi-tenant query service
//!
//! Drives N synthetic clients over **real sockets** against a `gola-server`
//! instance (self-hosted in-process by default, or an external `--addr`),
//! each streaming a query's NDJSON reports, and summarizes the two
//! latencies that define interactive online aggregation:
//!
//! * **time-to-first-estimate** — request write → first report frame; the
//!   paper's "answer within a mini-batch" promise under multi-tenancy;
//! * **time-to-±1%-CI** — request write → first frame whose worst
//!   relative CI half-width is ≤ 1% (per-client; clients whose query never
//!   tightens that far within its batch budget are reported separately).
//!
//! Output: a human table plus `results/BENCH_service.json` (see `--out`).
//! All timing goes through `gola_common::timing::Stopwatch` — this binary
//! measures the *service*, it never feeds time back into estimates.
//!
//! ```text
//! cargo run --release -p gola-load -- \
//!     [--clients 10] [--rows 20000] [--batches 20] [--max-active 4] \
//!     [--threads 1] [--addr host:port] [--out results/BENCH_service.json]
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gola_common::stats::percentile;
use gola_common::timing::Stopwatch;
use gola_core::sched::ServiceConfig;
use gola_core::OnlineConfig;
use gola_server::{Server, ServerConfig};
use gola_storage::Catalog;
use gola_workloads::{conviva, ConvivaGenerator};

struct Args {
    clients: usize,
    rows: usize,
    batches: usize,
    max_active: usize,
    threads: usize,
    max_connections: usize,
    addr: Option<SocketAddr>,
    out: String,
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                return v;
            }
        }
        if let Some(v) = a
            .strip_prefix(&format!("{name}="))
            .and_then(|v| v.parse().ok())
        {
            return v;
        }
    }
    default
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    Args {
        clients: flag(&args, "--clients", 10usize).max(1),
        rows: flag(&args, "--rows", 20_000usize).max(1000),
        batches: flag(&args, "--batches", 20usize).max(2),
        max_active: flag(&args, "--max-active", 4usize).max(1),
        threads: flag(&args, "--threads", 1usize).max(1),
        max_connections: flag(&args, "--max-connections", 64usize).max(1),
        addr: args
            .iter()
            .position(|a| a == "--addr")
            .and_then(|i| args.get(i + 1))
            .and_then(|a| a.parse().ok()),
        out: flag(&args, "--out", "results/BENCH_service.json".to_string()),
    }
}

/// One client's observations.
struct ClientResult {
    ttfe: Duration,
    /// First frame at ≤1% worst relative CI half-width, if reached.
    tt_ci1: Option<Duration>,
    batches: usize,
    total: Duration,
}

/// Worst (largest) relative CI half-width across a frame's estimates,
/// parsed from the NDJSON frame. `None` when any cell lacks a CI.
fn worst_rel_ci(frame: &str) -> Option<f64> {
    let value = gola_obs::json::parse(frame).ok()?;
    let estimates = match value.get("estimates") {
        Some(gola_obs::json::Value::Array(cells)) if !cells.is_empty() => cells,
        _ => return None,
    };
    let mut worst = 0.0f64;
    for cell in estimates {
        let point = cell.get("value")?.as_f64()?;
        let ci = cell.get("ci")?;
        let lo = ci.get("lo")?.as_f64()?;
        let hi = ci.get("hi")?.as_f64()?;
        let half = (hi - lo) / 2.0;
        let rel = if half == 0.0 {
            0.0
        } else if point == 0.0 {
            f64::INFINITY
        } else {
            half / point.abs()
        };
        if rel > worst {
            worst = rel;
        }
    }
    Some(worst)
}

/// What one client saw: a full stream, or the bounded acceptor's typed
/// refusal (503 + Retry-After). Rejection is an *expected* outcome when
/// `--clients` exceeds `--max-connections` — the server fails closed
/// instead of spawning a thread per socket — so it is counted, not fatal.
enum ClientOutcome {
    Completed(ClientResult),
    Rejected,
}

/// Stream one query and record latencies. Chunked transfer is decoded
/// inline so a frame counts the moment its bytes arrive.
fn run_client(addr: SocketAddr, sql: &str) -> Result<ClientOutcome, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let request = format!(
        "POST /query HTTP/1.1\r\nhost: gola-load\r\ncontent-length: {}\r\n\r\n{sql}",
        sql.len()
    );
    let clock = Stopwatch::start();
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);

    // Head: status line + headers up to the blank line.
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status: {e}"))?;
    if status_line.starts_with("HTTP/1.1 503") {
        return Ok(ClientOutcome::Rejected);
    }
    if !status_line.contains("200") {
        return Err(format!("non-200 response: {}", status_line.trim()));
    }
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("head: {e}"))?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }

    // Body: chunked NDJSON; split on newlines across chunk boundaries.
    let mut ttfe = None;
    let mut tt_ci1 = None;
    let mut batches = 0usize;
    let mut pending = String::new();
    loop {
        let mut size_line = String::new();
        reader
            .read_line(&mut size_line)
            .map_err(|e| format!("chunk size: {e}"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2]; // data + trailing CRLF
        reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("chunk body: {e}"))?;
        chunk.truncate(size);
        pending.push_str(&String::from_utf8_lossy(&chunk));
        while let Some(at) = pending.find('\n') {
            let frame: String = pending.drain(..=at).collect();
            let frame = frame.trim();
            if frame.is_empty() {
                continue;
            }
            if frame.starts_with("{\"error\"") {
                return Err(format!("server error frame: {frame}"));
            }
            batches += 1;
            if ttfe.is_none() {
                ttfe = Some(clock.elapsed());
            }
            if tt_ci1.is_none() && worst_rel_ci(frame).is_some_and(|rel| rel <= 0.01) {
                tt_ci1 = Some(clock.elapsed());
            }
        }
    }
    let total = clock.elapsed();
    let ttfe = ttfe.ok_or("stream ended with no frames")?;
    Ok(ClientOutcome::Completed(ClientResult {
        ttfe,
        tt_ci1,
        batches,
        total,
    }))
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

fn pctl(samples: &[f64], q: f64) -> f64 {
    percentile(samples, q).unwrap_or(f64::NAN)
}

fn main() {
    let args = parse_args();

    // Self-host unless pointed at an external server.
    let (_server, addr) = match args.addr {
        Some(addr) => (None, addr),
        None => {
            let mut catalog = Catalog::new();
            catalog
                .register(
                    "sessions",
                    std::sync::Arc::new(ConvivaGenerator::default().generate(args.rows)),
                )
                .expect("fresh catalog");
            let server = Server::start(
                catalog,
                ServerConfig {
                    service: ServiceConfig {
                        max_active: args.max_active,
                        // Admit every load client; saturation behavior has
                        // its own tests — here we measure latency.
                        queue_capacity: args.clients,
                        threads: args.threads,
                        base: OnlineConfig::default().with_batches(args.batches),
                    },
                    max_connections: args.max_connections,
                    ..ServerConfig::default()
                },
            )
            .expect("server binds");
            let addr = server.addr();
            (Some(server), addr)
        }
    };

    // The query mix: cycle the Conviva suite across clients.
    let suite = conviva::queries();
    let wall = Stopwatch::start();
    let workers: Vec<_> = (0..args.clients)
        .map(|i| {
            let (name, sql) = suite[i % suite.len()];
            let sql = sql.to_string();
            std::thread::spawn(move || (name, run_client(addr, &sql)))
        })
        .collect();
    let mut results = Vec::new();
    let mut rejected = 0usize;
    let mut failures = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok((name, Ok(ClientOutcome::Completed(r)))) => results.push((name, r)),
            Ok((_, Ok(ClientOutcome::Rejected))) => rejected += 1,
            Ok((name, Err(e))) => failures.push(format!("{name}: {e}")),
            Err(_) => failures.push("client thread panicked".to_string()),
        }
    }
    let wall = wall.elapsed();

    if results.is_empty() {
        eprintln!(
            "no client completed a stream ({rejected} rejected at the connection cap, {} failed)",
            failures.len()
        );
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!("FAILED clients ({}):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }

    let ttfe: Vec<f64> = results
        .iter()
        .map(|(_, r)| r.ttfe.as_secs_f64() * 1e3)
        .collect();
    let ci1: Vec<f64> = results
        .iter()
        .filter_map(|(_, r)| r.tt_ci1.map(|d| d.as_secs_f64() * 1e3))
        .collect();
    let totals: Vec<f64> = results
        .iter()
        .map(|(_, r)| r.total.as_secs_f64() * 1e3)
        .collect();
    let batches_total: usize = results.iter().map(|(_, r)| r.batches).sum();

    println!(
        "gola-load: {} clients, {} rows, {} batches, max_active {}, pool threads {}",
        args.clients, args.rows, args.batches, args.max_active, args.threads
    );
    println!(
        "  {} clients completed, {} rejected at the connection cap; {} total report frames in {:.3}s wall",
        results.len(),
        rejected,
        batches_total,
        wall.as_secs_f64()
    );
    println!(
        "  time-to-first-estimate  p50 {:9.3} ms   p99 {:9.3} ms",
        pctl(&ttfe, 0.50),
        pctl(&ttfe, 0.99)
    );
    if ci1.is_empty() {
        println!("  time-to-±1%-CI          (no client reached ±1% within its batch budget)");
    } else {
        println!(
            "  time-to-±1%-CI          p50 {:9.3} ms   p99 {:9.3} ms   ({}/{} clients reached)",
            pctl(&ci1, 0.50),
            pctl(&ci1, 0.99),
            ci1.len(),
            results.len()
        );
    }
    println!(
        "  stream completion       p50 {:9.3} ms   p99 {:9.3} ms",
        pctl(&totals, 0.50),
        pctl(&totals, 0.99)
    );

    // Machine-readable summary.
    let mut json = String::from("{\"experiment\":\"service_load\",\"workload\":\"conviva_suite\"");
    json.push_str(&format!(
        ",\"clients\":{},\"rows\":{},\"batches\":{},\"max_active\":{},\"pool_threads\":{}",
        args.clients, args.rows, args.batches, args.max_active, args.threads
    ));
    json.push_str(&format!(
        ",\"self_hosted\":{},\"wall_s\":{:.6},\"report_frames\":{batches_total}",
        args.addr.is_none(),
        wall.as_secs_f64()
    ));
    json.push_str(&format!(
        ",\"completed\":{},\"rejected_503\":{rejected}",
        results.len()
    ));
    json.push_str(&format!(
        ",\"ttfe_ms\":{{\"p50\":{},\"p99\":{}}}",
        fmt_ms(Duration::from_secs_f64(pctl(&ttfe, 0.50) / 1e3)),
        fmt_ms(Duration::from_secs_f64(pctl(&ttfe, 0.99) / 1e3))
    ));
    if ci1.is_empty() {
        json.push_str(",\"tt_ci1pct_ms\":null");
    } else {
        json.push_str(&format!(
            ",\"tt_ci1pct_ms\":{{\"p50\":{:.3},\"p99\":{:.3},\"reached\":{},\"of\":{}}}",
            pctl(&ci1, 0.50),
            pctl(&ci1, 0.99),
            ci1.len(),
            results.len()
        ));
    }
    json.push_str(&format!(
        ",\"completion_ms\":{{\"p50\":{:.3},\"p99\":{:.3}}}}}",
        pctl(&totals, 0.50),
        pctl(&totals, 0.99)
    ));

    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&args.out, format!("{json}\n")) {
        Ok(()) => println!("  wrote {}", args.out),
        Err(e) => {
            eprintln!("could not write {}: {e}", args.out);
            std::process::exit(1);
        }
    }
}
