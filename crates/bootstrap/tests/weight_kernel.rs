//! Property test: the batched Poisson-weight kernel is bit-identical to the
//! scalar `BootstrapSpec::weight` for arbitrary tuple ids, trial counts and
//! seeds. The executor's determinism contract (threads = 1 ≡ threads = N)
//! rests on this equivalence.

use gola_bootstrap::BootstrapSpec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn batch_kernel_matches_scalar(
        tuple_ids in prop::collection::vec(any::<u64>(), 0..200),
        trials in 0u32..40,
        seed in any::<u64>(),
    ) {
        let spec = BootstrapSpec::new(trials, seed);
        let mut out = Vec::new();
        spec.weights_batch(&tuple_ids, &mut out);
        prop_assert_eq!(out.len(), tuple_ids.len() * trials as usize);
        for (i, &t) in tuple_ids.iter().enumerate() {
            for b in 0..trials {
                prop_assert_eq!(
                    out[i * trials as usize + b as usize],
                    spec.weight(t, b),
                    "tuple {} trial {} seed {}", t, b, seed
                );
            }
        }
    }

    #[test]
    fn single_cell_matches(t in any::<u64>(), b in 0u32..1024, seed in any::<u64>()) {
        let spec = BootstrapSpec::new(b + 1, seed);
        let mut out = Vec::new();
        spec.weights_batch(&[t], &mut out);
        prop_assert_eq!(out[b as usize], spec.weight(t, b));
    }
}
