//! Bootstrap trial configuration and weight streams.

use std::sync::OnceLock;

use gola_common::rng::{mix, poisson_from_stream, poisson_weight};

/// Per-call timing of the batched weight kernel (chunk granularity — the
/// per-tuple [`BootstrapSpec::weights_into`] path is deliberately left
/// uninstrumented). Only touched when the obs registry is enabled.
fn weights_seconds() -> &'static gola_obs::Histogram {
    static H: OnceLock<gola_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| gola_obs::duration_histogram("bootstrap.weights_seconds"))
}

/// Replica-weight cells (`tuples × trials`) produced by the batched kernel.
fn weight_cells() -> &'static gola_obs::Counter {
    static C: OnceLock<gola_obs::Counter> = OnceLock::new();
    C.get_or_init(|| gola_obs::counter("bootstrap.weight_cells"))
}

/// `hash_combine`'s multiplier (the SplitMix64 increment), reproduced here
/// so the batched kernel can hoist the per-replica term out of the tuple
/// loop while staying bit-identical to [`poisson_weight`].
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of the poissonized bootstrap: how many replicas to
/// maintain and the seed of the weight streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapSpec {
    /// Number of bootstrap replicas `B`. Zero disables error estimation
    /// entirely (used by the overhead ablation).
    pub trials: u32,
    /// Seed of the hash-derived weight streams.
    pub seed: u64,
    /// Fault-injection offset added to every replica weight. Always `0` in
    /// production; the conformance harness sets `1` to plant a canonical
    /// "off-by-one bootstrap weight" estimator bug and prove its
    /// calibration oracle catches the resulting overconfident CIs.
    pub weight_bias: u32,
}

impl BootstrapSpec {
    pub fn new(trials: u32, seed: u64) -> Self {
        BootstrapSpec {
            trials,
            seed,
            weight_bias: 0,
        }
    }

    /// Fault-injection constructor: see [`BootstrapSpec::weight_bias`].
    pub fn with_weight_bias(mut self, bias: u32) -> Self {
        self.weight_bias = bias;
        self
    }

    /// The `Poisson(1)` weight of `tuple_id` in replica `trial`.
    /// Deterministic: the same `(tuple_id, trial)` always yields the same
    /// weight under a given seed.
    #[inline]
    pub fn weight(&self, tuple_id: u64, trial: u32) -> u32 {
        poisson_weight(tuple_id, trial, self.seed) + self.weight_bias
    }

    /// All replica weights of one tuple, reusing `buf` to avoid per-tuple
    /// allocation in the hot update loop.
    pub fn weights_into(&self, tuple_id: u64, buf: &mut Vec<u32>) {
        buf.clear();
        buf.reserve(self.trials as usize);
        for b in 0..self.trials {
            buf.push(self.weight(tuple_id, b));
        }
    }

    /// Batched weight kernel: the full `tuples × trials` weight matrix as a
    /// flat structure-of-arrays buffer, `out[i * trials + b]` = weight of
    /// `tuple_ids[i]` in replica `b`.
    ///
    /// Bit-identical to calling [`BootstrapSpec::weight`] per cell, but the
    /// per-replica and per-seed `hash_combine` terms are hoisted out of the
    /// inner loop: each cell costs two SplitMix64 finalizers plus the Knuth
    /// product loop, instead of re-deriving both hash_combine multiplies.
    pub fn weights_batch(&self, tuple_ids: &[u64], out: &mut Vec<u32>) {
        let sw = gola_obs::enabled().then(gola_common::timing::Stopwatch::start);
        let trials = self.trials as usize;
        out.clear();
        out.reserve(tuple_ids.len() * trials);
        // hash_combine(a, b) = mix(a ^ b * PHI); both inner multiplies are
        // invariant across tuples, so precompute them.
        let xb: Vec<u64> = (0..self.trials)
            .map(|b| (b as u64 ^ 0xB0_07).wrapping_mul(PHI))
            .collect();
        let seed_m = self.seed.wrapping_mul(PHI);
        for &t in tuple_ids {
            for &x in &xb {
                let stream = mix(mix(t ^ x) ^ seed_m);
                out.push(poisson_from_stream(stream) + self.weight_bias);
            }
        }
        if let Some(sw) = sw {
            weights_seconds().observe_duration(sw.elapsed());
            weight_cells().add((tuple_ids.len() * trials) as u64);
        }
    }
}

impl Default for BootstrapSpec {
    /// 100 trials — the BlinkDB/FluoDB default.
    fn default() -> Self {
        BootstrapSpec {
            trials: 100,
            seed: 0x60_1A,
            weight_bias: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_replayable() {
        let spec = BootstrapSpec::new(50, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(12345, &mut a);
        spec.weights_into(12345, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn different_tuples_get_different_streams() {
        let spec = BootstrapSpec::new(20, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(1, &mut a);
        spec.weights_into(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_allowed() {
        let spec = BootstrapSpec::new(0, 7);
        let mut buf = vec![99];
        spec.weights_into(1, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn batch_matches_scalar_kernel() {
        let spec = BootstrapSpec::new(33, 0x60_1A);
        let ids: Vec<u64> = (0..257).map(|i| i * 7919 + 13).collect();
        let mut batch = Vec::new();
        spec.weights_batch(&ids, &mut batch);
        assert_eq!(batch.len(), ids.len() * 33);
        for (i, &t) in ids.iter().enumerate() {
            for b in 0..33u32 {
                assert_eq!(batch[i * 33 + b as usize], spec.weight(t, b), "t={t} b={b}");
            }
        }
    }

    #[test]
    fn batch_with_zero_trials_is_empty() {
        let spec = BootstrapSpec::new(0, 7);
        let mut batch = vec![4u32];
        spec.weights_batch(&[1, 2, 3], &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn mean_weight_is_about_one_per_trial() {
        let spec = BootstrapSpec::default();
        let mut buf = Vec::new();
        let mut total = 0u64;
        for t in 0..2000u64 {
            spec.weights_into(t, &mut buf);
            total += buf.iter().map(|&w| w as u64).sum::<u64>();
        }
        let mean = total as f64 / (2000.0 * spec.trials as f64);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
