//! Bootstrap trial configuration and weight streams.

use gola_common::rng::poisson_weight;

/// Configuration of the poissonized bootstrap: how many replicas to
/// maintain and the seed of the weight streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapSpec {
    /// Number of bootstrap replicas `B`. Zero disables error estimation
    /// entirely (used by the overhead ablation).
    pub trials: u32,
    /// Seed of the hash-derived weight streams.
    pub seed: u64,
}

impl BootstrapSpec {
    pub fn new(trials: u32, seed: u64) -> Self {
        BootstrapSpec { trials, seed }
    }

    /// The `Poisson(1)` weight of `tuple_id` in replica `trial`.
    /// Deterministic: the same `(tuple_id, trial)` always yields the same
    /// weight under a given seed.
    #[inline]
    pub fn weight(&self, tuple_id: u64, trial: u32) -> u32 {
        poisson_weight(tuple_id, trial, self.seed)
    }

    /// All replica weights of one tuple, reusing `buf` to avoid per-tuple
    /// allocation in the hot update loop.
    pub fn weights_into(&self, tuple_id: u64, buf: &mut Vec<u32>) {
        buf.clear();
        buf.reserve(self.trials as usize);
        for b in 0..self.trials {
            buf.push(self.weight(tuple_id, b));
        }
    }
}

impl Default for BootstrapSpec {
    /// 100 trials — the BlinkDB/FluoDB default.
    fn default() -> Self {
        BootstrapSpec { trials: 100, seed: 0x60_1A }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_replayable() {
        let spec = BootstrapSpec::new(50, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(12345, &mut a);
        spec.weights_into(12345, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn different_tuples_get_different_streams() {
        let spec = BootstrapSpec::new(20, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(1, &mut a);
        spec.weights_into(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_allowed() {
        let spec = BootstrapSpec::new(0, 7);
        let mut buf = vec![99];
        spec.weights_into(1, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn mean_weight_is_about_one_per_trial() {
        let spec = BootstrapSpec::default();
        let mut buf = Vec::new();
        let mut total = 0u64;
        for t in 0..2000u64 {
            spec.weights_into(t, &mut buf);
            total += buf.iter().map(|&w| w as u64).sum::<u64>();
        }
        let mean = total as f64 / (2000.0 * spec.trials as f64);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
