//! Bootstrap trial configuration and weight streams.

use std::sync::OnceLock;

use gola_common::rng::{mix, poisson_weight};

/// Per-call timing of the batched weight kernel (chunk granularity — the
/// per-tuple [`BootstrapSpec::weights_into`] path is deliberately left
/// uninstrumented). Only touched when the obs registry is enabled.
fn weights_seconds() -> &'static gola_obs::Histogram {
    static H: OnceLock<gola_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| gola_obs::duration_histogram("bootstrap.weights_seconds"))
}

/// Replica-weight cells (`tuples × trials`) produced by the batched kernel.
fn weight_cells() -> &'static gola_obs::Counter {
    static C: OnceLock<gola_obs::Counter> = OnceLock::new();
    C.get_or_init(|| gola_obs::counter("bootstrap.weight_cells"))
}

/// `hash_combine`'s multiplier (the SplitMix64 increment), reproduced here
/// so the batched kernel can hoist the per-replica term out of the tuple
/// loop while staying bit-identical to [`poisson_weight`].
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of the poissonized bootstrap: how many replicas to
/// maintain and the seed of the weight streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapSpec {
    /// Number of bootstrap replicas `B`. Zero disables error estimation
    /// entirely (used by the overhead ablation).
    pub trials: u32,
    /// Seed of the hash-derived weight streams.
    pub seed: u64,
    /// Fault-injection offset added to every replica weight. Always `0` in
    /// production; the conformance harness sets `1` to plant a canonical
    /// "off-by-one bootstrap weight" estimator bug and prove its
    /// calibration oracle catches the resulting overconfident CIs.
    pub weight_bias: u32,
}

impl BootstrapSpec {
    pub fn new(trials: u32, seed: u64) -> Self {
        BootstrapSpec {
            trials,
            seed,
            weight_bias: 0,
        }
    }

    /// Fault-injection constructor: see [`BootstrapSpec::weight_bias`].
    pub fn with_weight_bias(mut self, bias: u32) -> Self {
        self.weight_bias = bias;
        self
    }

    /// The `Poisson(1)` weight of `tuple_id` in replica `trial`.
    /// Deterministic: the same `(tuple_id, trial)` always yields the same
    /// weight under a given seed.
    #[inline]
    pub fn weight(&self, tuple_id: u64, trial: u32) -> u32 {
        poisson_weight(tuple_id, trial, self.seed) + self.weight_bias
    }

    /// All replica weights of one tuple, reusing `buf` to avoid per-tuple
    /// allocation in the hot update loop.
    pub fn weights_into(&self, tuple_id: u64, buf: &mut Vec<u32>) {
        buf.clear();
        buf.reserve(self.trials as usize);
        for b in 0..self.trials {
            buf.push(self.weight(tuple_id, b));
        }
    }

    /// Batched weight kernel: the full `tuples × trials` weight matrix as a
    /// flat structure-of-arrays buffer, `out[i * trials + b]` = weight of
    /// `tuple_ids[i]` in replica `b`.
    ///
    /// Bit-identical to calling [`BootstrapSpec::weight`] per cell, but
    /// restructured for throughput: the per-replica and per-seed
    /// `hash_combine` terms are hoisted out of the inner loop, and the
    /// kernel runs in two passes per tuple. Pass 1 derives every replica's
    /// first two draw mantissas and resolves the draw count up to `k = 1`
    /// in a straight branch-free sweep (vectorizable: four 64-bit mixes
    /// plus two float multiplies per cell, no data-dependent control
    /// flow) — ~37% of draws terminate at `k = 0` by an exact integer
    /// threshold test and another ~37% at `k = 1`. Pass 2 emits the
    /// resolved weights; only the remaining ~26% run the Knuth
    /// float-product continuation — the same arithmetic
    /// [`poisson_from_stream`] performs, in the same order.
    pub fn weights_batch(&self, tuple_ids: &[u64], out: &mut Vec<u32>) {
        let sw = gola_obs::enabled().then(gola_common::timing::Stopwatch::start);
        let trials = self.trials as usize;
        out.clear();
        out.reserve(tuple_ids.len() * trials);
        // hash_combine(a, b) = mix(a ^ b * PHI); both inner multiplies are
        // invariant across tuples, so precompute them.
        let xb: Vec<u64> = (0..self.trials)
            .map(|b| (b as u64 ^ 0xB0_07).wrapping_mul(PHI))
            .collect();
        let seed_m = self.seed.wrapping_mul(PHI);
        // ⌊e⁻¹ · 2⁵³⌋, the exact integer form of the first-draw test: with
        // u₁ = m₁ · 2⁻⁵³ (an exact product), u₁ ≤ e⁻¹ ⟺ m₁ ≤ this.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        let limit = (-1.0f64).exp();
        let t0 = (limit * (1u64 << 53) as f64) as u64;
        let mut states: Vec<u64> = vec![0; trials];
        let mut w01s: Vec<u32> = vec![0; trials];
        let mut p2s: Vec<f64> = vec![0.0; trials];
        let bias = self.weight_bias;
        for &t in tuple_ids {
            // Pass 1: branch-free stream derivation AND draw resolution up
            // to k = 1. `w01s[b]` is the draw count when ≤ 1, or 2 when the
            // product chain must continue; `p2s[b]` is the running product
            // after two draws — `u₁ · (m₂ · 2⁻⁵³)`, with `m₂ · 2⁻⁵³` an
            // exact power-of-two scaling, so every bit matches the
            // reference loop in [`poisson_from_stream`] — and `states[b]`
            // the second Knuth state, so the rare continuation can resume
            // at draw 3. ~74% of cells resolve in this sweep with no
            // data-dependent control flow at all.
            for (b, &x) in xb.iter().enumerate() {
                let s1 = mix(mix(t ^ x) ^ seed_m).wrapping_add(PHI);
                let s2 = s1.wrapping_add(PHI);
                let m1 = (mix(s1) >> 11) + 1;
                let m2 = (mix(s2) >> 11) + 1;
                let p2 = (m1 as f64 * SCALE) * ((m2 as f64) * SCALE);
                let nonzero = (m1 > t0) as u32;
                states[b] = s2;
                p2s[b] = p2;
                w01s[b] = nonzero + (nonzero & (p2 > limit) as u32);
            }
            // Pass 2: emit resolved draws; only chain cells (~26%) branch.
            // The zip keeps the sweep free of bounds checks and the
            // `extend` free of per-cell capacity checks.
            out.extend(
                w01s.iter()
                    .zip(&p2s)
                    .zip(&states)
                    .map(|((&w01, &p2), &s2)| {
                        if w01 < 2 {
                            return w01 + bias;
                        }
                        let mut p = p2;
                        let mut state = s2;
                        let mut k = 2u32;
                        loop {
                            state = state.wrapping_add(PHI);
                            p *= (((mix(state) >> 11) + 1) as f64) * SCALE;
                            if p <= limit {
                                break;
                            }
                            k += 1;
                            // Poisson(1) mass above 16 is ~1e-14 — cap keeps the
                            // worst case tiny (same cap as `poisson_from_stream`).
                            if k >= 16 {
                                break;
                            }
                        }
                        k + bias
                    }),
            );
        }
        if let Some(sw) = sw {
            weights_seconds().observe_duration(sw.elapsed());
            weight_cells().add((tuple_ids.len() * trials) as u64);
        }
    }
}

impl Default for BootstrapSpec {
    /// 100 trials — the BlinkDB/FluoDB default.
    fn default() -> Self {
        BootstrapSpec {
            trials: 100,
            seed: 0x60_1A,
            weight_bias: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_replayable() {
        let spec = BootstrapSpec::new(50, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(12345, &mut a);
        spec.weights_into(12345, &mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn different_tuples_get_different_streams() {
        let spec = BootstrapSpec::new(20, 7);
        let mut a = Vec::new();
        let mut b = Vec::new();
        spec.weights_into(1, &mut a);
        spec.weights_into(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_trials_is_allowed() {
        let spec = BootstrapSpec::new(0, 7);
        let mut buf = vec![99];
        spec.weights_into(1, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn batch_matches_scalar_kernel() {
        let spec = BootstrapSpec::new(33, 0x60_1A);
        let ids: Vec<u64> = (0..257).map(|i| i * 7919 + 13).collect();
        let mut batch = Vec::new();
        spec.weights_batch(&ids, &mut batch);
        assert_eq!(batch.len(), ids.len() * 33);
        for (i, &t) in ids.iter().enumerate() {
            for b in 0..33u32 {
                assert_eq!(batch[i * 33 + b as usize], spec.weight(t, b), "t={t} b={b}");
            }
        }
    }

    #[test]
    fn batch_with_zero_trials_is_empty() {
        let spec = BootstrapSpec::new(0, 7);
        let mut batch = vec![4u32];
        spec.weights_batch(&[1, 2, 3], &mut batch);
        assert!(batch.is_empty());
    }

    #[test]
    fn mean_weight_is_about_one_per_trial() {
        let spec = BootstrapSpec::default();
        let mut buf = Vec::new();
        let mut total = 0u64;
        for t in 0..2000u64 {
            spec.weights_into(t, &mut buf);
            total += buf.iter().map(|&w| w as u64).sum::<u64>();
        }
        let mean = total as f64 / (2000.0 * spec.trials as f64);
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
