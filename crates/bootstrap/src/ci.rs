//! Estimates with bootstrap-derived error bars.
//!
//! # Finite-population correction
//!
//! Online aggregation samples *without replacement* from a population of
//! known, finite size: after seeing `n` of `N` rows, only `N - n` rows of
//! uncertainty remain, and at `n = N` the answer is exact. The plain
//! bootstrap doesn't know this — its replica spread models sampling *with*
//! replacement from an infinite population, which inflates CI width by
//! ≈ `1 / √(1 − n/N)` as a run approaches full data (and leaves a non-zero
//! interval even at `n = N`). The classic-OLA closed-form baselines apply
//! the standard correction `fpc = √(1 − n/N)` to their standard errors
//! (`crates/baselines/src/ola.rs`); [`Estimate`] carries the same factor,
//! set by the executor via [`Estimate::with_fpc`] from the batch schedule's
//! sampling fraction. [`Estimate::std_error`] scales by it directly, and
//! [`Estimate::ci_percentile`] contracts the replica interval around the
//! point estimate by it — so widths shrink by exactly `fpc` and collapse to
//! zero at the final batch, matching the baselines.
//!
//! The correction applies only to *reported* uncertainty. Variation ranges
//! (`range_policy`) deliberately keep the uncorrected replica spread: they
//! drive tuple classification, where a conservative envelope is the safe
//! direction, and correcting them would change executor decisions rather
//! than just tightening the error bars.

use std::fmt;

use gola_common::stats::{mean, percentile, stddev_pop};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy)]
pub struct ConfidenceInterval {
    pub lo: f64,
    pub hi: f64,
    /// Nominal coverage level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Half-width (the "±" a UI would display).
    pub fn half_width(&self) -> f64 {
        self.width() / 2.0
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.4}, {:.4}] @{:.0}%",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// A running estimate together with its bootstrap replica values.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The point estimate (computed with the true multiplicity weights).
    pub value: f64,
    /// One value per bootstrap replica. Empty when error estimation is
    /// disabled (`trials = 0`) or the value is non-numeric.
    pub replicas: Vec<f64>,
    /// Finite-population correction factor `√(1 − n/N)` (see the module
    /// docs). `1.0` — no correction — when the sampling fraction is
    /// unknown; `0.0` once the full population has been seen.
    pub fpc: f64,
}

impl Estimate {
    pub fn new(value: f64, replicas: Vec<f64>) -> Self {
        Estimate {
            value,
            replicas,
            fpc: 1.0,
        }
    }

    /// An estimate with no error information.
    pub fn exact(value: f64) -> Self {
        Estimate {
            value,
            replicas: Vec::new(),
            fpc: 1.0,
        }
    }

    /// Attach the finite-population correction factor (clamped to
    /// `[0, 1]`): `√(1 − n/N)` for `n` of `N` rows seen.
    pub fn with_fpc(mut self, fpc: f64) -> Self {
        self.fpc = fpc.clamp(0.0, 1.0);
        self
    }

    /// Bootstrap standard error: the standard deviation of the replica
    /// distribution, scaled by the finite-population correction. `None`
    /// without replicas.
    pub fn std_error(&self) -> Option<f64> {
        stddev_pop(&self.replicas).map(|s| s * self.fpc)
    }

    /// Relative standard deviation `σ̂ / |estimate|` — the y-axis of the
    /// paper's Figure 3(a). `None` without replicas or for a zero estimate.
    pub fn rel_stddev(&self) -> Option<f64> {
        let se = self.std_error()?;
        if self.value == 0.0 {
            return None;
        }
        Some(se / self.value.abs())
    }

    /// Percentile-method bootstrap CI at `level` (e.g. 0.95), contracted
    /// around the point estimate by the finite-population correction so the
    /// width scales by exactly `fpc` (zero once the full population has
    /// been seen). `None` without replicas.
    pub fn ci_percentile(&self, level: f64) -> Option<ConfidenceInterval> {
        if self.replicas.is_empty() {
            return None;
        }
        let alpha = (1.0 - level) / 2.0;
        let lo = percentile(&self.replicas, alpha)?;
        let hi = percentile(&self.replicas, 1.0 - alpha)?;
        // `fpc = 1` must be a bit-exact no-op (uncorrected bootstrap), not
        // a round trip through `value - (value - lo)`.
        if self.fpc >= 1.0 {
            return Some(ConfidenceInterval { lo, hi, level });
        }
        Some(ConfidenceInterval {
            lo: self.value - (self.value - lo) * self.fpc,
            hi: self.value + (hi - self.value) * self.fpc,
            level,
        })
    }

    /// Normal-approximation CI centered on the point estimate. `None`
    /// without replicas.
    pub fn ci_normal(&self, level: f64) -> Option<ConfidenceInterval> {
        let se = self.std_error()?;
        let z = z_for_level(level);
        Some(ConfidenceInterval {
            lo: self.value - z * se,
            hi: self.value + z * se,
            level,
        })
    }

    /// Mean of the replica distribution (bootstrap bias diagnostic).
    pub fn replica_mean(&self) -> Option<f64> {
        mean(&self.replicas)
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.ci_percentile(0.95) {
            Some(ci) => write!(f, "{:.4} ± {:.4}", self.value, ci.half_width()),
            None => write!(f, "{:.4}", self.value),
        }
    }
}

/// Two-sided standard-normal quantile for common levels, with a rational
/// approximation (Acklam) for everything else.
pub fn z_for_level(level: f64) -> f64 {
    // Fast paths for the levels UIs actually use.
    match (level * 1000.0).round() as i64 {
        900 => return 1.6449,
        950 => return 1.9600,
        990 => return 2.5758,
        _ => {}
    }
    let p = 1.0 - (1.0 - level) / 2.0;
    inverse_normal_cdf(p)
}

/// Acklam's inverse-normal-CDF approximation (relative error < 1.15e-9).
#[allow(clippy::excessive_precision)] // published constants, kept verbatim
fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> Estimate {
        Estimate::new(10.0, (0..101).map(|i| 9.0 + i as f64 * 0.02).collect())
    }

    #[test]
    fn std_error_and_rel_stddev() {
        let e = est();
        let se = e.std_error().unwrap();
        assert!(se > 0.5 && se < 0.65, "se {se}");
        assert!((e.rel_stddev().unwrap() - se / 10.0).abs() < 1e-12);
        assert_eq!(Estimate::exact(5.0).std_error(), None);
        assert_eq!(Estimate::new(0.0, vec![1.0, 2.0]).rel_stddev(), None);
    }

    #[test]
    fn percentile_ci_covers_bulk() {
        let e = est();
        let ci = e.ci_percentile(0.95).unwrap();
        assert!(ci.lo > 9.0 && ci.lo < 9.1, "lo {}", ci.lo);
        assert!(ci.hi > 10.9 && ci.hi < 11.0, "hi {}", ci.hi);
        assert!(ci.contains(10.0));
        assert!(!ci.contains(20.0));
    }

    #[test]
    fn normal_ci_symmetry() {
        let e = est();
        let ci = e.ci_normal(0.95).unwrap();
        assert!((10.0 - ci.lo - (ci.hi - 10.0)).abs() < 1e-12);
        assert!((ci.half_width() - 1.96 * e.std_error().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn z_values() {
        assert!((z_for_level(0.95) - 1.96).abs() < 1e-3);
        assert!((z_for_level(0.99) - 2.5758).abs() < 1e-3);
        assert!((z_for_level(0.80) - 1.2816).abs() < 1e-3);
        // Acklam approximation sanity at the median.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.001) + 3.090232).abs() < 1e-4);
    }

    #[test]
    fn fpc_scales_widths_and_collapses() {
        let plain = est().ci_percentile(0.95).unwrap();
        let half = est().with_fpc(0.5);
        let ci = half.ci_percentile(0.95).unwrap();
        assert!(
            (ci.width() - plain.width() * 0.5).abs() < 1e-12,
            "width {} vs uncorrected {}",
            ci.width(),
            plain.width()
        );
        assert!(ci.contains(10.0), "correction keeps the point estimate");
        assert!((half.std_error().unwrap() - est().std_error().unwrap() * 0.5).abs() < 1e-12);
        // Full population seen: the interval collapses onto the point
        // estimate, exactly like the closed-form baselines.
        let done = est().with_fpc(0.0);
        let ci0 = done.ci_percentile(0.95).unwrap();
        assert_eq!((ci0.lo, ci0.hi), (10.0, 10.0));
        assert_eq!(ci0.width(), 0.0);
        assert_eq!(done.std_error(), Some(0.0));
        // The factor is clamped to [0, 1].
        assert_eq!(est().with_fpc(1.5).fpc, 1.0);
        assert_eq!(est().with_fpc(-0.1).fpc, 0.0);
    }

    #[test]
    fn fpc_one_is_bit_exact_noop() {
        let a = est().ci_percentile(0.95).unwrap();
        let b = est().with_fpc(1.0).ci_percentile(0.95).unwrap();
        assert_eq!(a.lo.to_bits(), b.lo.to_bits());
        assert_eq!(a.hi.to_bits(), b.hi.to_bits());
    }

    #[test]
    fn ci_at_replica_count_boundaries() {
        // n = 1: every percentile is the single replica (interpolation has
        // nothing to interpolate between).
        let one = Estimate::new(5.0, vec![4.0]);
        let ci = one.ci_percentile(0.95).unwrap();
        assert_eq!((ci.lo, ci.hi), (4.0, 4.0));
        // n = 2, alpha = 0.025: linear interpolation between the two order
        // statistics at positions 0.025 and 0.975 of [4, 6].
        let two = Estimate::new(5.0, vec![6.0, 4.0]);
        let ci = two.ci_percentile(0.95).unwrap();
        assert!((ci.lo - 4.05).abs() < 1e-12, "lo {}", ci.lo);
        assert!((ci.hi - 5.95).abs() < 1e-12, "hi {}", ci.hi);
    }

    #[test]
    fn display_shows_error_bar() {
        let s = est().to_string();
        assert!(s.starts_with("10.0000 ±"), "{s}");
        assert_eq!(Estimate::exact(1.5).to_string(), "1.5000");
    }
}
