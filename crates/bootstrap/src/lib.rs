//! Poissonized bootstrap error estimation for online aggregation.
//!
//! G-OLA uses the bootstrap (paper §2.2) to attach confidence intervals to
//! every running result and — crucially — to approximate the **variation
//! range** `R(u)` of every inner aggregate `u` (paper §3.2), which drives
//! the uncertain/deterministic partitioning.
//!
//! Following BlinkDB (which FluoDB extends), resampling is *poissonized*:
//! instead of drawing `n` tuples with replacement per trial, every tuple
//! receives an independent `Poisson(1)` weight per trial. This makes the
//! bootstrap **incremental** — each mini-batch updates all `B` replica
//! states in one pass — and, because the weights are derived from
//! `hash(tuple_id, trial, seed)` ([`gola_common::rng::poisson_weight`]),
//! **replayable**: re-touching a tuple during uncertain-set re-evaluation or
//! failure-triggered recomputation reproduces the same weight.

pub mod ci;
pub mod range_policy;
pub mod weights;

pub use ci::{ConfidenceInterval, Estimate};
pub use range_policy::{EpsilonPolicy, VariationRange};
pub use weights::BootstrapSpec;
