//! Variation-range approximation (paper §3.2).
//!
//! The true variation range `R(u)` — all values an inner aggregate `u` may
//! take during online execution — is unknowable until the query finishes.
//! G-OLA approximates it from the bootstrap outputs `û` as
//! `R̂(u) = [min(û) − ε, max(û) + ε]` with a slack `ε` the user controls.
//! Small `ε` shrinks the uncertain sets but raises the probability that a
//! future running value escapes the range (a *failure*, detected by the
//! query controller and repaired by recomputation). The paper reports that
//! `ε = stddev(û)` balances the two; that is [`EpsilonPolicy::default`].

use gola_common::stats::stddev_pop;

/// How to derive the slack `ε` from the bootstrap replica values.
#[derive(Debug, Clone, Copy)]
pub enum EpsilonPolicy {
    /// `ε = scale × stddev(replicas)`. The paper's recommendation is
    /// `scale = 1`.
    StdDevScaled(f64),
    /// A fixed absolute slack.
    Fixed(f64),
    /// `ε = scale × |current estimate|` (relative slack).
    Relative(f64),
}

impl Default for EpsilonPolicy {
    fn default() -> Self {
        EpsilonPolicy::StdDevScaled(1.0)
    }
}

impl EpsilonPolicy {
    /// Compute `ε` given the replica values and the current estimate.
    pub fn epsilon(&self, replicas: &[f64], current: f64) -> f64 {
        match *self {
            EpsilonPolicy::StdDevScaled(scale) => scale * stddev_pop(replicas).unwrap_or(0.0),
            EpsilonPolicy::Fixed(eps) => eps,
            EpsilonPolicy::Relative(scale) => scale * current.abs(),
        }
    }
}

/// A concrete approximated variation range `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct VariationRange {
    pub lo: f64,
    pub hi: f64,
}

impl VariationRange {
    /// Build `R̂(u)` from the current estimate and its bootstrap replicas.
    /// The current value is always included so the range is non-empty even
    /// with zero replicas (then it degenerates to a point ± ε).
    pub fn from_replicas(current: f64, replicas: &[f64], policy: EpsilonPolicy) -> Self {
        let eps = policy.epsilon(replicas, current);
        let mut lo = current;
        let mut hi = current;
        for &r in replicas {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        VariationRange {
            lo: lo - eps,
            hi: hi + eps,
        }
    }

    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Intersection (used for the committed envelope, which only narrows).
    pub fn intersect(&self, other: &VariationRange) -> Option<VariationRange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(VariationRange { lo, hi })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stddev_policy_matches_paper_default() {
        let replicas = [36.0, 37.0, 38.0, 36.5, 37.5];
        let r = VariationRange::from_replicas(37.0, &replicas, EpsilonPolicy::default());
        let sd = stddev_pop(&replicas).unwrap();
        assert!((r.lo - (36.0 - sd)).abs() < 1e-12);
        assert!((r.hi - (38.0 + sd)).abs() < 1e-12);
        assert!(r.contains(37.0));
    }

    #[test]
    fn fixed_policy() {
        let r = VariationRange::from_replicas(10.0, &[9.0, 11.0], EpsilonPolicy::Fixed(0.5));
        assert_eq!(r.lo, 8.5);
        assert_eq!(r.hi, 11.5);
    }

    #[test]
    fn relative_policy() {
        let r = VariationRange::from_replicas(-20.0, &[], EpsilonPolicy::Relative(0.1));
        assert_eq!(r.lo, -22.0);
        assert_eq!(r.hi, -18.0);
    }

    #[test]
    fn current_value_always_inside() {
        // Even if every replica sits above the current value.
        let r = VariationRange::from_replicas(5.0, &[8.0, 9.0], EpsilonPolicy::Fixed(0.0));
        assert!(r.contains(5.0));
        assert!(r.contains(9.0));
    }

    #[test]
    fn zero_replicas_degenerate_range() {
        let r = VariationRange::from_replicas(3.0, &[], EpsilonPolicy::StdDevScaled(1.0));
        assert_eq!(r.lo, 3.0);
        assert_eq!(r.hi, 3.0);
        assert!(r.contains(3.0));
        assert!(!r.contains(3.1));
    }

    #[test]
    fn larger_epsilon_widens_range() {
        let replicas = [1.0, 2.0, 3.0];
        let small = VariationRange::from_replicas(2.0, &replicas, EpsilonPolicy::StdDevScaled(0.5));
        let big = VariationRange::from_replicas(2.0, &replicas, EpsilonPolicy::StdDevScaled(2.0));
        assert!(big.width() > small.width());
    }

    #[test]
    fn intersect() {
        let a = VariationRange { lo: 0.0, hi: 10.0 };
        let b = VariationRange { lo: 5.0, hi: 15.0 };
        let i = a.intersect(&b).expect("overlapping ranges intersect");
        assert_eq!((i.lo, i.hi), (5.0, 10.0));
        let c = VariationRange { lo: 20.0, hi: 25.0 };
        assert!(a.intersect(&c).is_none());
    }
}
