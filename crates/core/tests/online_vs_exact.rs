//! Differential tests: after the final mini-batch, the G-OLA online
//! executor must produce exactly the batch engine's answer — for every
//! supported query family. Intermediate behaviour (error decay, uncertain
//! sets, failure recovery) is checked along the way.

use std::sync::Arc;

use gola_bootstrap::EpsilonPolicy;
use gola_common::rng::SplitMix64;
use gola_common::{DataType, Row, Schema, Value};
use gola_core::{OnlineConfig, OnlineSession};
use gola_storage::{Catalog, Table};

/// Seeded synthetic Sessions log: session_id, ad_id, buffer_time,
/// play_time, join_failed.
fn sessions_table(n: usize, seed: u64) -> Table {
    let schema = Arc::new(Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("ad_id", DataType::Int),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
        ("join_failed", DataType::Int),
    ]));
    let mut rng = SplitMix64::new(seed);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            let ad = (rng.next_below(8) + 1) as i64;
            // Skewed positive buffer times, ad-dependent play times.
            let buffer = 5.0 + 40.0 * rng.next_f64() * rng.next_f64();
            let play = 30.0 + 400.0 * rng.next_f64() + ad as f64 * 10.0;
            let failed = (rng.next_f64() < 0.05) as i64;
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int(ad),
                Value::Float(buffer),
                Value::Float(play),
                Value::Int(failed),
            ])
        })
        .collect();
    Table::new_unchecked(schema, rows)
}

fn ads_table() -> Table {
    let schema = Arc::new(Schema::from_pairs(&[
        ("ad_id", DataType::Int),
        ("ad_name", DataType::Str),
        ("cpm", DataType::Float),
    ]));
    let rows: Vec<Row> = (1..=8)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::str(format!("ad-{i}")),
                Value::Float(1.0 + i as f64 * 0.5),
            ])
        })
        .collect();
    Table::new_unchecked(schema, rows)
}

fn session(n: usize, config: OnlineConfig) -> OnlineSession {
    let mut catalog = Catalog::new();
    catalog
        .register("sessions", Arc::new(sessions_table(n, 42)))
        .unwrap();
    catalog.register("ads", Arc::new(ads_table())).unwrap();
    OnlineSession::new(catalog, config)
}

fn assert_tables_match(online: &Table, exact: &Table, tol: f64) {
    assert_eq!(online.num_rows(), exact.num_rows(), "row count mismatch");
    assert_eq!(online.schema().len(), exact.schema().len());
    let sort = |t: &Table| {
        let mut rows = t.rows().to_vec();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    };
    for (a, b) in sort(online).iter().zip(sort(exact).iter()) {
        for (x, y) in a.iter().zip(b.iter()) {
            match (x.as_f64(), y.as_f64()) {
                (Some(fx), Some(fy)) => {
                    let scale = fy.abs().max(1.0);
                    assert!(
                        (fx - fy).abs() / scale < tol,
                        "value mismatch: {fx} vs {fy} (row {a} vs {b})"
                    );
                }
                _ => assert_eq!(x, y, "non-numeric mismatch in {a} vs {b}"),
            }
        }
    }
}

/// Run a query online to completion and compare with the exact engine.
fn check_final_matches(sql: &str, n: usize, batches: usize) -> gola_core::BatchReport {
    let s = session(n, OnlineConfig::for_tests(batches));
    let exact = s.execute_exact(sql).unwrap();
    let exec = s.execute_online(sql).unwrap();
    let last = exec.run_to_completion().unwrap();
    assert!(last.is_final());
    assert_tables_match(&last.table, &exact, 1e-6);
    last
}

#[test]
fn simple_avg_matches_exact() {
    let r = check_final_matches("SELECT AVG(play_time) FROM sessions", 2000, 10);
    assert_eq!(r.rows_seen, 2000);
    assert!((r.multiplicity - 1.0).abs() < 1e-12);
}

#[test]
fn multi_aggregate_matches_exact() {
    check_final_matches(
        "SELECT COUNT(*), SUM(play_time), AVG(buffer_time), MIN(play_time), \
         MAX(play_time), STDDEV(play_time) FROM sessions",
        2000,
        8,
    );
}

#[test]
fn sbi_nested_aggregate_matches_exact() {
    // The paper's Example 1 (Slow Buffering Impact).
    check_final_matches(
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        3000,
        12,
    );
}

#[test]
fn correlated_subquery_matches_exact() {
    // TPC-H Q17-shaped: per-group inner average.
    check_final_matches(
        "SELECT SUM(play_time) FROM sessions s \
         WHERE buffer_time > 1.1 * (SELECT AVG(buffer_time) FROM sessions t \
                                    WHERE t.ad_id = s.ad_id)",
        3000,
        12,
    );
}

#[test]
fn group_by_having_scalar_subquery_matches_exact() {
    // TPC-H Q11-shaped: group rows filtered against a global fraction.
    check_final_matches(
        "SELECT ad_id, SUM(play_time) AS total FROM sessions GROUP BY ad_id \
         HAVING SUM(play_time) > 0.12 * (SELECT SUM(play_time) FROM sessions) \
         ORDER BY total DESC",
        2500,
        10,
    );
}

#[test]
fn membership_subquery_matches_exact() {
    // TPC-H Q18-shaped: semi-join against a HAVING-filtered group set.
    check_final_matches(
        "SELECT COUNT(*), AVG(play_time) FROM sessions WHERE ad_id IN \
         (SELECT ad_id FROM sessions GROUP BY ad_id HAVING AVG(buffer_time) > \
          (SELECT AVG(buffer_time) FROM sessions))",
        2500,
        10,
    );
}

#[test]
fn two_level_nesting_matches_exact() {
    check_final_matches(
        "SELECT AVG(play_time) FROM sessions WHERE buffer_time > \
         (SELECT AVG(buffer_time) FROM sessions WHERE play_time > \
          (SELECT AVG(play_time) FROM sessions))",
        2500,
        10,
    );
}

#[test]
fn dimension_join_matches_exact() {
    check_final_matches(
        "SELECT a.ad_name, SUM(s.play_time * a.cpm) AS revenue FROM sessions s \
         JOIN ads a ON s.ad_id = a.ad_id GROUP BY a.ad_name ORDER BY revenue DESC LIMIT 5",
        2000,
        8,
    );
}

#[test]
fn join_plus_nested_aggregate_matches_exact() {
    check_final_matches(
        "SELECT a.ad_name, COUNT(*) FROM sessions s JOIN ads a ON s.ad_id = a.ad_id \
         WHERE s.buffer_time > (SELECT AVG(buffer_time) FROM sessions) \
         GROUP BY a.ad_name ORDER BY a.ad_name",
        2000,
        8,
    );
}

#[test]
fn quantile_close_to_exact() {
    // P² is approximate: compare against the exact engine's own P² result
    // loosely (both stream, different orders).
    let sql = "SELECT QUANTILE(play_time, 0.9) FROM sessions";
    let s = session(5000, OnlineConfig::for_tests(10));
    let exact = s.execute_exact(sql).unwrap();
    let last = s.execute_online(sql).unwrap().run_to_completion().unwrap();
    let a = last.table.rows()[0].get(0).as_f64().unwrap();
    let b = exact.rows()[0].get(0).as_f64().unwrap();
    assert!((a - b).abs() / b < 0.05, "online {a} vs exact {b}");
}

#[test]
fn udaf_matches_exact() {
    check_final_matches("SELECT GEO_MEAN(play_time) FROM sessions", 1500, 6);
}

#[test]
fn case_expression_aggregates_match_exact() {
    check_final_matches(
        "SELECT AVG(CASE WHEN join_failed = 1 THEN 0 ELSE play_time END), \
                SUM(CASE WHEN buffer_time > 20 THEN 1 ELSE 0 END) FROM sessions",
        2000,
        8,
    );
}

#[test]
fn error_decreases_over_batches() {
    let s = session(8000, OnlineConfig::for_tests(16).with_trials(64));
    let exec = s
        .execute_online("SELECT AVG(play_time) FROM sessions")
        .unwrap();
    let reports: Vec<_> = exec.map(|r| r.unwrap()).collect();
    assert_eq!(reports.len(), 16);
    let early = reports[0].primary_rel_stddev().unwrap();
    let late = reports[14].primary_rel_stddev().unwrap();
    assert!(
        late < early,
        "rel stddev should shrink: early {early} late {late}"
    );
    // Every intermediate estimate should be in the right ballpark.
    let truth = reports.last().unwrap().primary().unwrap().value;
    for r in &reports {
        let v = r.primary().unwrap().value;
        assert!(
            (v - truth).abs() / truth < 0.2,
            "estimate {v} vs truth {truth}"
        );
    }
}

#[test]
fn ci_covers_truth_most_of_the_time() {
    // At batch 3 of 10, the 95% CI should usually contain the final value.
    let mut covered = 0;
    let total = 20;
    for seed in 0..total {
        let mut catalog = Catalog::new();
        catalog
            .register("sessions", Arc::new(sessions_table(2000, 1000 + seed)))
            .unwrap();
        let s = OnlineSession::new(
            catalog,
            OnlineConfig::for_tests(10).with_trials(80).with_seed(seed),
        );
        let sql = "SELECT AVG(play_time) FROM sessions";
        let truth = s.execute_exact(sql).unwrap().rows()[0]
            .get(0)
            .as_f64()
            .unwrap();
        let mut exec = s.execute_online(sql).unwrap();
        let mut report = None;
        for _ in 0..3 {
            report = Some(exec.next().unwrap().unwrap());
        }
        let ci = report.unwrap().ci().unwrap();
        if ci.contains(truth) {
            covered += 1;
        }
    }
    assert!(
        covered >= 16,
        "95% CI covered truth only {covered}/{total} times"
    );
}

#[test]
fn uncertain_set_shrinks_for_sbi() {
    let s = session(6000, OnlineConfig::for_tests(12));
    let exec = s
        .execute_online(
            "SELECT AVG(play_time) FROM sessions \
             WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        )
        .unwrap();
    let mut sizes = Vec::new();
    for r in exec {
        let r = r.unwrap();
        sizes.push(r.uncertain_tuples);
    }
    // The uncertain set must stay far below the data seen so far, and late
    // batches should carry fewer uncertain tuples than the max.
    let max = *sizes.iter().max().unwrap();
    assert!(max < 6000 / 2, "uncertain set too large: {sizes:?}");
    assert!(
        sizes[10] <= max,
        "uncertain set should not keep growing: {sizes:?}"
    );
}

#[test]
fn forced_failures_recompute_and_stay_correct() {
    // ε = 0 makes variation ranges hug the bootstrap spread; failures and
    // recomputations become likely, but answers must stay correct.
    let sql = "SELECT AVG(play_time) FROM sessions \
               WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";
    let s = session(
        2000,
        OnlineConfig::for_tests(10)
            .with_trials(8)
            .with_epsilon(EpsilonPolicy::Fixed(0.0)),
    );
    let exact = s.execute_exact(sql).unwrap();
    let last = s.execute_online(sql).unwrap().run_to_completion().unwrap();
    assert_tables_match(&last.table, &exact, 1e-6);
}

#[test]
fn deterministic_under_seed() {
    let run = || {
        let s = session(1500, OnlineConfig::for_tests(6));
        let exec = s
            .execute_online(
                "SELECT AVG(play_time) FROM sessions \
                 WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
            )
            .unwrap();
        exec.map(|r| {
            let r = r.unwrap();
            (
                r.primary().unwrap().value,
                r.primary().unwrap().replicas.clone(),
                r.uncertain_tuples,
            )
        })
        .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn early_stop_by_target_accuracy() {
    let s = session(8000, OnlineConfig::for_tests(40).with_trials(64));
    let report = s
        .execute_online("SELECT AVG(play_time) FROM sessions")
        .unwrap()
        .run_until_rel_stddev(0.01)
        .unwrap();
    assert!(!report.is_final(), "should stop before the last batch");
    assert!(report.primary_rel_stddev().unwrap() <= 0.01);
}

#[test]
fn row_certainty_flags_converge() {
    let sql = "SELECT ad_id, SUM(play_time) AS total FROM sessions GROUP BY ad_id \
               HAVING SUM(play_time) > 0.12 * (SELECT SUM(play_time) FROM sessions)";
    let s = session(3000, OnlineConfig::for_tests(10));
    let reports: Vec<_> = s.execute_online(sql).unwrap().map(|r| r.unwrap()).collect();
    // Final batch: every surviving row is certain.
    let last = reports.last().unwrap();
    assert!(last.row_certain.iter().all(|&c| c));
}

#[test]
fn stream_table_selection_auto_and_explicit() {
    let s = session(2000, OnlineConfig::for_tests(5));
    let p = s.prepare("SELECT COUNT(*) FROM sessions").unwrap();
    assert_eq!(p.stream_table, "sessions");
    let s = session(
        2000,
        OnlineConfig::for_tests(5).with_stream_table("sessions"),
    );
    assert!(s.prepare("SELECT COUNT(*) FROM sessions").is_ok());
    let s = session(2000, OnlineConfig::for_tests(5).with_stream_table("nope"));
    assert!(s.prepare("SELECT COUNT(*) FROM sessions").is_err());
}

#[test]
fn more_batches_than_rows_is_clamped() {
    let s = session(50, OnlineConfig::for_tests(500));
    let reports: Vec<_> = s
        .execute_online("SELECT AVG(play_time) FROM sessions")
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(reports.len(), 50);
    assert!(reports.last().unwrap().is_final());
}

#[test]
fn zero_trials_still_correct() {
    let sql = "SELECT AVG(play_time) FROM sessions \
               WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";
    let s = session(1500, OnlineConfig::for_tests(6).with_trials(0));
    let exact = s.execute_exact(sql).unwrap();
    let last = s.execute_online(sql).unwrap().run_to_completion().unwrap();
    assert_tables_match(&last.table, &exact, 1e-6);
    assert!(last.primary().is_none() || last.primary().unwrap().replicas.is_empty());
}

#[test]
fn empty_filter_result_matches_exact() {
    check_final_matches(
        "SELECT AVG(play_time), COUNT(*) FROM sessions WHERE play_time > 1e12",
        500,
        5,
    );
}

#[test]
fn threaded_execution_matches_sequential() {
    // Sharded parallel ingest must produce the same answers as the
    // sequential path (identical bootstrap weights; only float summation
    // order differs, within tolerance).
    for sql in [
        "SELECT AVG(play_time), SUM(buffer_time), COUNT(*) FROM sessions",
        "SELECT AVG(play_time) FROM sessions \
         WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)",
        "SELECT ad_id, SUM(play_time) FROM sessions GROUP BY ad_id ORDER BY ad_id",
        "SELECT COUNT(*) FROM sessions WHERE ad_id IN \
         (SELECT ad_id FROM sessions GROUP BY ad_id HAVING AVG(buffer_time) > 14)",
    ] {
        let run = |threads: usize| {
            let s = session(6000, OnlineConfig::for_tests(4).with_threads(threads));
            s.execute_online(sql).unwrap().run_to_completion().unwrap()
        };
        let seq = run(1);
        let par = run(4);
        assert_tables_match(&par.table, &seq.table, 1e-9);
        // Replica values must agree too (weights are per-tuple-id).
        for (a, b) in seq.estimates.iter().zip(&par.estimates) {
            assert_eq!(a.estimate.replicas.len(), b.estimate.replicas.len());
            for (x, y) in a.estimate.replicas.iter().zip(&b.estimate.replicas) {
                assert!(
                    (x - y).abs() <= 1e-6 * (1.0 + y.abs()),
                    "{x} vs {y} ({sql})"
                );
            }
        }
    }
}

#[test]
fn threaded_quantile_falls_back_to_sequential() {
    // Quantile states are not mergeable; the executor must still produce
    // correct answers with threads requested.
    let sql = "SELECT MEDIAN(play_time) FROM sessions";
    let s = session(3000, OnlineConfig::for_tests(4).with_threads(8));
    let exact = s.execute_exact(sql).unwrap();
    let last = s.execute_online(sql).unwrap().run_to_completion().unwrap();
    let a = last.table.rows()[0].get(0).as_f64().unwrap();
    let b = exact.rows()[0].get(0).as_f64().unwrap();
    assert!((a - b).abs() / b < 0.05, "{a} vs {b}");
}
