//! Scheduler properties, proven on the deterministic simulator.
//!
//! `SchedulerSim` drives the *same* `Scheduler::round` code the live
//! `QueryService` runs — no threads, no clocks, scripted arrivals under a
//! virtual round clock — so every property here is exact, not
//! statistical: seeds × session counts are swept and each trace is
//! asserted deterministically.
//!
//! Properties:
//! 1. **No starvation** — while a session is runnable its inter-run gap is
//!    bounded (stride scheduling freezes a waiter's pass).
//! 2. **Proportional share** — quanta track `weight × boost`.
//! 3. **Contract priority** — an urgent session finishes ahead of an
//!    otherwise-identical normal one, without starving anyone.
//! 4. **Admission** — typed rejection exactly at saturation; every
//!    *admitted* session runs to completion (never dropped).
//! 5. **Determinism** — identical scripts produce identical traces.

use gola_common::rng::SplitMix64;
use gola_core::sched::{
    AdmissionError, Arrival, PolicyConfig, SchedulerSim, ScriptedTask, SessionId, SimEvent,
    MAX_WEIGHT, URGENT_BOOST,
};

fn cfg(max_active: usize, queue: usize) -> PolicyConfig {
    PolicyConfig {
        max_active,
        queue_capacity: queue,
    }
}

/// A seeded random script: `n` sessions, arrival rounds in `0..spread`,
/// lengths in `1..=max_len`, weights in `1..=4`.
fn random_script(seed: u64, n: usize, spread: u64, max_len: u64) -> Vec<Arrival<ScriptedTask>> {
    let mut rng = SplitMix64::new(seed);
    let mut arrivals: Vec<Arrival<ScriptedTask>> = (0..n)
        .map(|_| {
            let total = 1 + rng.next_below(max_len);
            let mut task = ScriptedTask::new(total);
            if rng.next_below(3) == 0 {
                task = task.urgent_after(1 + rng.next_below(total));
            }
            Arrival {
                at_round: rng.next_below(spread),
                weight: 1 + rng.next_below(4),
                task,
            }
        })
        .collect();
    arrivals.sort_by_key(|a| a.at_round);
    arrivals
}

#[test]
fn every_admitted_session_completes_across_seeds_and_sizes() {
    for &n in &[2usize, 4, 8] {
        for seed in 0..12u64 {
            let script = random_script(seed ^ (n as u64) << 32, n, 6, 12);
            let lengths: Vec<u64> = script.iter().map(|a| a.task.total()).collect();
            let out = SchedulerSim::run(cfg(n.min(4), n), script, 10_000);
            assert!(out.drained, "seed {seed} n {n}: sim hit round bound");
            assert_eq!(out.rejected, 0, "seed {seed} n {n}: capacity fits all");
            // Never dropped, never truncated, outputs in order.
            assert_eq!(out.outputs.len(), n, "seed {seed} n {n}: all admitted");
            for (id, outputs) in &out.outputs {
                let expect = lengths[usize::try_from(id.0).expect("small id")];
                let want: Vec<u64> = (0..expect).collect();
                assert_eq!(outputs, &want, "seed {seed} n {n}: session {id} outputs");
            }
        }
    }
}

#[test]
fn no_starvation_within_bounded_rounds() {
    // Weights ≤ 4 and boost ≤ URGENT_BOOST give a worst-case stride ratio
    // of 8: between two consecutive runs of any runnable session, each
    // competitor fits at most ceil(ratio) + 1 quanta. Session churn
    // (arrivals entering at virtual time) can add slack, so the sweep
    // asserts a generous multiple of that structural bound.
    for &n in &[2usize, 4, 8] {
        let per_competitor = 4 * URGENT_BOOST + 1;
        let bound = 2 * (n as u64 - 1) * per_competitor + 1;
        for seed in 0..12u64 {
            let out = SchedulerSim::run(
                cfg(n, 0),
                random_script(seed.wrapping_mul(0x9E37) ^ n as u64, n, 4, 20),
                10_000,
            );
            assert!(out.drained);
            for id in out.outputs.keys() {
                let rounds = out.run_rounds(*id);
                for pair in rounds.windows(2) {
                    let gap = pair[1] - pair[0];
                    assert!(
                        gap <= bound,
                        "seed {seed} n {n}: session {id} waited {gap} rounds (bound {bound})"
                    );
                }
            }
        }
    }
}

#[test]
fn share_is_proportional_to_weight() {
    // Two long sessions, weights 3:1, same arrival. Count quanta over the
    // window where both are running: stride scheduling must hand out
    // 3:1 ± 1 quantum per window prefix.
    let script = vec![
        Arrival {
            at_round: 0,
            weight: 3,
            task: ScriptedTask::new(300),
        },
        Arrival {
            at_round: 0,
            weight: 1,
            task: ScriptedTask::new(300),
        },
    ];
    let out = SchedulerSim::run(cfg(2, 0), script, 10_000);
    let heavy = out.run_rounds(SessionId(0));
    // In the first 400 rounds both sessions are alive (lengths 300 + 300);
    // the weight-3 session must own ~300 of them.
    let in_window = heavy.iter().filter(|r| **r < 400).count();
    assert!(
        (295..=305).contains(&in_window),
        "weight-3 session ran {in_window}/400"
    );
}

#[test]
fn urgent_session_finishes_first_without_starving_peers() {
    // Three identical-length sessions; only one is urgent from the start.
    // Urgency doubles its share, so it must finish strictly first — while
    // the others still complete (no starvation).
    let task = |urgent: bool| {
        let t = ScriptedTask::new(40);
        if urgent {
            t.urgent_after(1)
        } else {
            t
        }
    };
    let script = vec![
        Arrival {
            at_round: 0,
            weight: 1,
            task: task(false),
        },
        Arrival {
            at_round: 0,
            weight: 1,
            task: task(true),
        },
        Arrival {
            at_round: 0,
            weight: 1,
            task: task(false),
        },
    ];
    let out = SchedulerSim::run(cfg(3, 0), script, 10_000);
    assert!(out.drained);
    let finish = |id: u64| {
        out.events
            .iter()
            .find_map(|ev| match ev {
                SimEvent::Ran {
                    round,
                    id: r,
                    finished: true,
                } if r.0 == id => Some(*round),
                _ => None,
            })
            .expect("session finishes")
    };
    let urgent_done = finish(1);
    assert!(
        urgent_done < finish(0) && urgent_done < finish(2),
        "urgent session must drain first: {} vs {} / {}",
        urgent_done,
        finish(0),
        finish(2)
    );
    // Peers still completed all 40 quanta each.
    for id in [0u64, 2] {
        assert_eq!(out.outputs[&SessionId(id)].len(), 40);
    }
}

#[test]
fn admission_rejects_exactly_at_saturation_with_typed_error() {
    // Capacity 2 active + 1 queued; 5 simultaneous arrivals → arrivals 3
    // and 4 are refused with the exact saturation numbers, the rest all
    // complete.
    let script: Vec<Arrival<ScriptedTask>> = (0..5)
        .map(|_| Arrival {
            at_round: 0,
            weight: 1,
            task: ScriptedTask::new(5),
        })
        .collect();
    let out = SchedulerSim::run(cfg(2, 1), script, 10_000);
    assert_eq!(out.rejected, 2);
    let rejections: Vec<&AdmissionError> = out
        .events
        .iter()
        .filter_map(|ev| match ev {
            SimEvent::Rejected { error, .. } => Some(error),
            _ => None,
        })
        .collect();
    assert_eq!(
        rejections,
        vec![
            &AdmissionError::Saturated {
                active: 2,
                queued: 1,
                max_active: 2,
                queue_capacity: 1,
            };
            2
        ]
    );
    // The three admitted sessions were never dropped.
    assert_eq!(out.outputs.len(), 3);
    for outputs in out.outputs.values() {
        assert_eq!(outputs.len(), 5);
    }
    // The queued session starts only after a slot frees: its first run
    // comes after some session's finishing run.
    let first_queued_run = out.run_rounds(SessionId(2))[0];
    let first_finish = out
        .events
        .iter()
        .find_map(|ev| match ev {
            SimEvent::Ran {
                round,
                finished: true,
                ..
            } => Some(*round),
            _ => None,
        })
        .expect("something finishes");
    assert!(first_queued_run > first_finish);
}

#[test]
fn weights_are_clamped_to_max_weight() {
    // An absurd weight must not buy more than MAX_WEIGHT shares.
    let script = vec![
        Arrival {
            at_round: 0,
            weight: u64::MAX,
            task: ScriptedTask::new(200),
        },
        Arrival {
            at_round: 0,
            weight: 1,
            task: ScriptedTask::new(200),
        },
    ];
    let out = SchedulerSim::run(cfg(2, 0), script, 100_000);
    assert!(out.drained);
    // In the first MAX_WEIGHT+1 rounds the weight-1 session runs at least
    // once: the heavy session's stride is STRIDE_ONE/MAX_WEIGHT > 0.
    let light = out.run_rounds(SessionId(1));
    assert!(
        light[0] <= MAX_WEIGHT + 1,
        "light first ran at {}",
        light[0]
    );
}

#[test]
fn identical_scripts_produce_identical_traces() {
    for seed in 0..8u64 {
        let a = SchedulerSim::run(cfg(3, 4), random_script(seed, 6, 5, 10), 10_000);
        let b = SchedulerSim::run(cfg(3, 4), random_script(seed, 6, 5, 10), 10_000);
        assert_eq!(a.events, b.events, "seed {seed}: trace determinism");
        assert_eq!(a.outputs, b.outputs, "seed {seed}: output determinism");
    }
}
