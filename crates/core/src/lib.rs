//! The G-OLA mini-batch online execution engine (the paper's contribution).
//!
//! # Execution model (paper §2)
//!
//! The streamed fact table is randomly partitioned into `k` mini-batches.
//! After batch `i` the engine reports `Q(Dᵢ, k/i)` — the query evaluated
//! over the data seen so far under multiset semantics with multiplicity
//! `m = k/i` — together with a poissonized-bootstrap confidence interval.
//! The user stops whenever the accuracy suffices.
//!
//! # Delta maintenance (paper §3)
//!
//! Each lineage block maintains, per group, bootstrap-replicated aggregate
//! states. At every predicate that references another block's (uncertain)
//! output, incoming tuples are classified by **variation-range overlap**:
//!
//! * deterministic-true → folded into the aggregate states forever,
//! * deterministic-false → dropped forever,
//! * uncertain → cached in the block's **uncertain set** `Uᵢ` with its
//!   lineage projection, and re-examined every batch.
//!
//! Per-batch work is `|ΔDᵢ| + |Uᵢ₋₁|` instead of `|Dᵢ|` — the paper's
//! near-constant per-batch cost.
//!
//! Classification uses **committed envelopes**: the intersection of every
//! variation range a decision was made against. The [`executor`] monitors
//! published values (and each bootstrap replica) against the envelopes that
//! consumers actually relied on; a violation triggers a counted,
//! failure-driven recomputation of the affected downstream blocks (paper
//! §3.2's recovery mechanism, scheduled by the Query Controller of §4).

pub mod compiled;
pub mod config;
pub(crate) mod contract;
pub mod executor;
pub(crate) mod metrics;
pub mod pool;
pub mod report;
pub mod runtime;
pub mod sched;
pub mod session;

pub use config::OnlineConfig;
pub use executor::OnlineExecutor;
pub use gola_plan::QueryContract;
pub use pool::WorkerPool;
pub use report::{BatchReport, BatchTiming, CellEstimate, ContractProgress, ContractStop};
pub use session::{OnlineExecution, OnlineSession, PreparedQuery};
