//! A persistent, session-lifetime worker pool.
//!
//! The executor previously spawned OS threads with `crossbeam::thread::scope`
//! on every mini-batch ingest — thread creation cost on the critical path of
//! every batch, for every block. [`WorkerPool`] instead spawns `threads - 1`
//! workers once per session and keeps them parked on a condvar between
//! batches; [`WorkerPool::run`] then executes a batch of borrowed closures
//! across the workers *and* the calling thread.
//!
//! Design points:
//!
//! * **The caller participates.** `run` executes jobs on the calling thread
//!   while workers drain the same queue. With `threads = 1` there are no
//!   workers at all and `run` degenerates to a sequential loop — the
//!   determinism baseline. Caller participation also makes *nested* `run`
//!   calls safe: an inner `run` simply executes on whichever thread entered
//!   it (jobs are tagged with a run id, so an inner run never steals the
//!   outer run's jobs), which the executor relies on when a parallel
//!   wavefront ingest reaches a per-block parallel chunk fold.
//! * **Borrowed jobs.** Jobs capture `&'a` state from the caller's stack.
//!   They are transmuted to `'static` to cross the thread boundary; this is
//!   sound because `run` does not return (normally or by panic) until every
//!   job of that run has finished executing, so no borrow outlives the call.
//! * **Panic propagation.** Worker-side panics are caught, carried back as
//!   results, and re-raised on the calling thread after the whole run
//!   completes — identical observable behaviour to the scoped-thread code it
//!   replaces.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use gola_common::rng::{hash_combine, SplitMix64};
use gola_common::timing::Stopwatch;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A panic payload tagged with its job's submission index.
type IndexedPanic = (usize, Box<dyn std::any::Any + Send>);

struct QueueState {
    jobs: VecDeque<(u64, Job)>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Wakes workers when jobs arrive or shutdown is flagged.
    work_ready: Condvar,
}

impl Shared {
    /// Worker loop: pop any job (regardless of run id — workers are
    /// stateless) or park until one arrives.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some((_, job)) = q.jobs.pop_front() {
                        break job;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.work_ready.wait(q).unwrap();
                }
            };
            job();
        }
    }

    /// Pop a job belonging to run `run_id`, if any remain queued. Used by
    /// the submitting thread, which must not steal jobs of an *outer* run
    /// while a nested run drains (that would deadlock: the outer job could
    /// in turn wait on the inner run's latch it is already inside).
    fn try_pop(&self, run_id: u64) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        let idx = q.jobs.iter().position(|(id, _)| *id == run_id)?;
        q.jobs.remove(idx).map(|(_, job)| job)
    }
}

/// Completion latch for one `run` call.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(n: usize) -> Arc<Latch> {
        Arc::new(Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
        })
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().unwrap();
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().unwrap();
        while *r > 0 {
            r = self.done.wait(r).unwrap();
        }
    }
}

/// A persistent pool of `threads - 1` workers plus the calling thread.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    next_run: Mutex<u64>,
    /// Schedule-perturbation seed: when set, each run's queue is shuffled
    /// (seeded per run) before dispatch to stress schedule independence.
    perturb: Option<u64>,
}

impl WorkerPool {
    /// Build a pool that executes runs on `threads` threads total (the
    /// caller counts as one; `threads <= 1` spawns nothing).
    pub fn new(threads: usize) -> WorkerPool {
        WorkerPool::build(threads, None)
    }

    /// As [`WorkerPool::new`], but every `run`'s job queue is shuffled with
    /// a per-run RNG derived from `seed` before workers see it. Completion
    /// order becomes adversarial while results must stay bit-identical —
    /// the dynamic complement to the static `schedule-leak` lint.
    pub fn with_perturbation(threads: usize, seed: u64) -> WorkerPool {
        WorkerPool::build(threads, Some(seed))
    }

    fn build(threads: usize, perturb: Option<u64>) -> WorkerPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gola-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    // golint: allow(panic-surface) -- session setup: failing to
                    // spawn a worker leaves no meaningful way to continue
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
            next_run: Mutex::new(0),
            perturb,
        }
    }

    /// Total threads a run executes on (workers + caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every closure in `jobs`, distributing across the pool's
    /// workers and the calling thread. Blocks until all have finished; if
    /// any panicked, re-raises the first panic (by job order) on the caller.
    pub fn run<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        if self.threads == 1 || n == 1 {
            // Sequential fast path — same code the workers would run.
            for job in jobs {
                job();
            }
            return;
        }
        let run_id = {
            let mut id = self.next_run.lock().unwrap();
            *id += 1;
            *id
        };
        // Observability (inert): queue-wait and run-time histograms per job,
        // plus the submitting thread's span path captured *here* — at
        // submission, deterministically — and re-established around the job
        // body wherever it lands, so span parent links are independent of
        // which thread executes the job.
        let obs = gola_obs::enabled();
        if obs {
            crate::metrics::pool_runs().inc();
            crate::metrics::pool_jobs().add(n as u64);
        }
        let span_path = if obs {
            gola_obs::span::current_path()
        } else {
            Vec::new()
        };
        let latch = Latch::new(n);
        let panics: Arc<Mutex<Vec<IndexedPanic>>> = Arc::new(Mutex::new(Vec::new()));
        let mut wrapped_jobs: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let latch = Arc::clone(&latch);
                let panics = Arc::clone(&panics);
                let submitted = obs.then(Stopwatch::start);
                let span_path = span_path.clone();
                let wrapped: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
                    let run_sw = submitted.map(|sw| {
                        crate::metrics::pool_queue_wait().observe_duration(sw.elapsed());
                        Stopwatch::start()
                    });
                    let body = || {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                            panics.lock().unwrap().push((i, payload));
                        }
                    };
                    if span_path.is_empty() {
                        body();
                    } else {
                        gola_obs::span::with_path(&span_path, body);
                    }
                    if let Some(sw) = run_sw {
                        crate::metrics::pool_job_run().observe_duration(sw.elapsed());
                    }
                    latch.count_down();
                });
                // SAFETY: `run` blocks on the latch until every wrapped job
                // has executed (panics included — the latch counts down in
                // all cases), so the `'a` borrows inside `job` are live for
                // as long as any thread can touch them.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Job>(wrapped) }
            })
            .collect();
        // Schedule-perturbation stress: shuffle the dispatch order with a
        // per-run RNG. Panic indices were captured above, at submission
        // order, so observable behaviour (which panic propagates first) is
        // shuffle-invariant; only the physical completion order moves.
        if let Some(seed) = self.perturb {
            let mut rng = SplitMix64::new(hash_combine(seed, run_id));
            for i in (1..wrapped_jobs.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                wrapped_jobs.swap(i, j);
            }
        }
        {
            let mut q = self.shared.queue.lock().unwrap();
            for wrapped in wrapped_jobs {
                q.jobs.push_back((run_id, wrapped));
            }
            self.shared.work_ready.notify_all();
        }
        // The caller drains its own run's jobs, then waits for stragglers
        // still executing on workers.
        while let Some(job) = self.shared.try_pop(run_id) {
            job();
        }
        latch.wait();
        let mut panics = panics.lock().unwrap();
        if !panics.is_empty() {
            panics.sort_by_key(|(i, _)| *i);
            let (_, payload) = panics.remove(0);
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn jobs_touching(counter: &AtomicUsize, n: usize) -> Vec<Box<dyn FnOnce() + Send + '_>> {
        (0..n)
            .map(|_| {
                let c = counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect()
    }

    #[test]
    fn runs_all_jobs_single_threaded() {
        let pool = WorkerPool::new(1);
        let counter = AtomicUsize::new(0);
        pool.run(jobs_touching(&counter, 17));
        assert_eq!(counter.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn runs_all_jobs_multi_threaded() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(jobs_touching(&counter, 23));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50 * 23);
    }

    #[test]
    fn jobs_borrow_caller_state() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let sums: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks(250)
            .zip(&sums)
            .map(|(chunk, slot)| {
                Box::new(move || {
                    *slot.lock().unwrap() = chunk.iter().sum();
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        let total: u64 = sums.iter().map(|s| *s.lock().unwrap()).sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            let counter = Arc::clone(&counter);
                            Box::new(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(outer);
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_propagates_after_all_jobs_finish() {
        let pool = WorkerPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
            .map(|i| {
                let c = &counter;
                Box::new(move || {
                    if i == 3 {
                        panic!("job 3 exploded");
                    }
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(jobs))).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "job 3 exploded");
        // Every non-panicking job still ran before the panic re-raised.
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn pool_survives_panicking_run() {
        let pool = WorkerPool::new(2);
        let bad: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
            .map(|_| Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run(bad))).is_err());
        let counter = AtomicUsize::new(0);
        pool.run(jobs_touching(&counter, 5));
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }
}
