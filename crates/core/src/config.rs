//! Online execution configuration.

use gola_bootstrap::{BootstrapSpec, EpsilonPolicy};
use gola_common::{Error, Result};
use gola_plan::QueryContract;

/// Tuning knobs of the online executor.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Number of mini-batches `k`. The paper sets this from how often the
    /// user wants updates (§2.1).
    pub num_batches: usize,
    /// Bootstrap replica count and weight seed. `trials = 0` disables error
    /// estimation (and variation ranges degenerate to points, so every
    /// uncertain predicate stays uncertain — only useful for overhead
    /// ablations).
    pub bootstrap: BootstrapSpec,
    /// Slack policy for variation ranges; the paper recommends
    /// `ε = stddev(bootstrap outputs)`.
    pub epsilon: EpsilonPolicy,
    /// Seed of the random mini-batch partitioner.
    pub partition_seed: u64,
    /// Confidence level for reported intervals.
    pub ci_level: f64,
    /// Stream this table; `None` picks the largest scanned table.
    pub stream_table: Option<String>,
    /// Worker threads for per-batch processing (1 = sequential).
    pub threads: usize,
    /// Small-sample guard: while a group's aggregate has fewer than this
    /// many observations, its bootstrap variation range is not trusted for
    /// deterministic classification (only monotone bounds apply). Bootstrap
    /// ranges over a handful of observations are spuriously tight and would
    /// cause failure/recompute churn on sparse groups.
    pub min_group_obs: f64,
    /// Committed envelopes must cover the value's *entire remaining
    /// trajectory*, not just its current bootstrap spread — under
    /// mini-batch streaming a running aggregate legitimately drifts, and an
    /// envelope sized for one batch gets crossed eventually (one violation
    /// per few hundred group-batches adds up over thousands of groups).
    /// Classification ranges therefore use `ε × envelope_inflation`.
    /// Reported confidence intervals are unaffected.
    pub envelope_inflation: f64,
    /// Stress knob: when set, the worker pool shuffles each run's job queue
    /// with this seed before dispatch, forcing adversarial completion
    /// orders. Reports must stay bit-identical — a failure under
    /// perturbation is a schedule-dependence bug. Test-only; leave `None`
    /// in production.
    pub schedule_perturbation: Option<u64>,
    /// Accuracy/deadline contract applied when the query itself carries
    /// none (a SQL-level `ERROR`/`WITHIN` clause wins over this).
    pub contract: Option<QueryContract>,
    /// Stratify mini-batches on this stream-table column instead of
    /// sampling uniformly. Estimates use per-stratum multiplicities and
    /// FPC when the query groups by this column (see DESIGN.md §3.10).
    pub stratify_column: Option<String>,
    /// Planted-bug knob for the contract-conformance oracle: check the
    /// CI half-width against the target *absolutely* instead of relative
    /// to the estimate. Deliberately wrong; the oracle must catch it.
    pub stopping_rule_absolute: bool,
    /// Session dimension for the observability registry. When set, the
    /// executor's per-report metrics (`report.batches`, `report.ci_width`,
    /// ...) are registered with a `session="<label>"` label so concurrent
    /// sessions in one process never write through the same gauge cell.
    /// `None` (the default, and the single-session CLI path) keeps the
    /// historical unlabeled names.
    pub session_label: Option<String>,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            num_batches: 100,
            bootstrap: BootstrapSpec::default(),
            epsilon: EpsilonPolicy::default(),
            partition_seed: 0xF1_00_DB,
            ci_level: 0.95,
            stream_table: None,
            threads: 1,
            min_group_obs: 5.0,
            envelope_inflation: 3.0,
            schedule_perturbation: None,
            contract: None,
            stratify_column: None,
            stopping_rule_absolute: false,
            session_label: None,
        }
    }
}

impl OnlineConfig {
    /// A small configuration for tests: few batches, few trials.
    pub fn for_tests(num_batches: usize) -> Self {
        OnlineConfig {
            num_batches,
            bootstrap: BootstrapSpec::new(32, 7),
            ..OnlineConfig::default()
        }
    }

    pub fn with_batches(mut self, k: usize) -> Self {
        self.num_batches = k;
        self
    }

    pub fn with_trials(mut self, b: u32) -> Self {
        self.bootstrap.trials = b;
        self
    }

    pub fn with_epsilon(mut self, policy: EpsilonPolicy) -> Self {
        self.epsilon = policy;
        self
    }

    pub fn with_stream_table(mut self, table: impl Into<String>) -> Self {
        self.stream_table = Some(table.into());
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.partition_seed = seed;
        self
    }

    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    pub fn with_perturbation(mut self, seed: u64) -> Self {
        self.schedule_perturbation = Some(seed);
        self
    }

    pub fn with_min_group_obs(mut self, obs: f64) -> Self {
        self.min_group_obs = obs;
        self
    }

    pub fn with_envelope_inflation(mut self, factor: f64) -> Self {
        self.envelope_inflation = factor;
        self
    }

    pub fn with_contract(mut self, contract: QueryContract) -> Self {
        self.contract = Some(contract);
        self
    }

    pub fn with_stratify_column(mut self, column: impl Into<String>) -> Self {
        self.stratify_column = Some(column.into());
        self
    }

    pub fn with_session_label(mut self, label: impl Into<String>) -> Self {
        self.session_label = Some(label.into());
        self
    }

    /// The epsilon policy used for *classification* envelopes: the
    /// configured policy scaled by [`OnlineConfig::envelope_inflation`].
    pub fn envelope_epsilon(&self) -> gola_bootstrap::EpsilonPolicy {
        use gola_bootstrap::EpsilonPolicy::*;
        match self.epsilon {
            StdDevScaled(s) => StdDevScaled(s * self.envelope_inflation),
            Fixed(e) => Fixed(e * self.envelope_inflation),
            Relative(r) => Relative(r * self.envelope_inflation),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_batches == 0 {
            return Err(Error::config("num_batches must be >= 1"));
        }
        if !(0.0..1.0).contains(&self.ci_level) {
            return Err(Error::config(format!(
                "ci_level {} outside (0, 1)",
                self.ci_level
            )));
        }
        if self.threads == 0 {
            return Err(Error::config("threads must be >= 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(OnlineConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = OnlineConfig::default()
            .with_batches(10)
            .with_trials(5)
            .with_stream_table("sessions")
            .with_seed(9)
            .with_threads(4)
            .with_epsilon(EpsilonPolicy::Fixed(0.5));
        assert_eq!(c.num_batches, 10);
        assert_eq!(c.bootstrap.trials, 5);
        assert_eq!(c.stream_table.as_deref(), Some("sessions"));
        assert_eq!(c.partition_seed, 9);
        assert_eq!(c.threads, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(OnlineConfig::default().with_batches(0).validate().is_err());
        let mut c = OnlineConfig {
            ci_level: 1.0,
            ..OnlineConfig::default()
        };
        assert!(c.validate().is_err());
        c.ci_level = 0.95;
        c.threads = 0;
        assert!(c.validate().is_err());
    }
}
