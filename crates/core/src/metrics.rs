//! Cached metric handles for gola-core's instrumentation sites.
//!
//! Registry lookups take a mutex; the hot path must not. Each site resolves
//! its handle once through a `OnceLock` (an atomic load afterwards) and the
//! handle itself is a plain atomic cell. Every caller gates on
//! [`gola_obs::enabled`] *before* touching these, so a disabled registry
//! never registers anything and never reads a clock.
//!
//! The no-perturbation contract (see `gola-obs`): these handles are
//! write-only from the executor's point of view — no metric value ever
//! flows back into computation. `tests/obs_inert.rs` holds this to
//! bit-identical `BatchReport`s.

use std::sync::OnceLock;

use gola_obs::{Counter, Gauge, Histogram};

macro_rules! handle {
    ($vis:vis $fn_name:ident: $ty:ty = $ctor:expr) => {
        $vis fn $fn_name() -> &'static $ty {
            static H: OnceLock<$ty> = OnceLock::new();
            H.get_or_init(|| $ctor)
        }
    };
}

// Per-batch report instrumentation (set once per `step`).
handle!(pub(crate) report_batches: Counter = gola_obs::counter("report.batches"));
handle!(pub(crate) report_ci_width: Gauge = gola_obs::gauge("report.ci_width"));
handle!(pub(crate) report_fpc: Gauge = gola_obs::gauge("report.fpc"));
handle!(pub(crate) report_uncertain: Gauge = gola_obs::gauge("report.uncertain"));
handle!(pub(crate) report_recomputations: Gauge = gola_obs::gauge("report.recomputations"));

// Worker-pool queue instrumentation (parallel dispatch path only; the
// sequential fast path has no queue to wait in).
handle!(pub(crate) pool_runs: Counter = gola_obs::counter("pool.runs"));
handle!(pub(crate) pool_jobs: Counter = gola_obs::counter("pool.jobs"));
handle!(pub(crate) pool_queue_wait: Histogram =
    gola_obs::duration_histogram("pool.queue_wait_seconds"));
handle!(pub(crate) pool_job_run: Histogram =
    gola_obs::duration_histogram("pool.job_run_seconds"));
