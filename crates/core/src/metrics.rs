//! Cached metric handles for gola-core's instrumentation sites.
//!
//! Registry lookups take a mutex; the hot path must not. Each site resolves
//! its handle once through a `OnceLock` (an atomic load afterwards) and the
//! handle itself is a plain atomic cell. Every caller gates on
//! [`gola_obs::enabled`] *before* touching these, so a disabled registry
//! never registers anything and never reads a clock.
//!
//! The no-perturbation contract (see `gola-obs`): these handles are
//! write-only from the executor's point of view — no metric value ever
//! flows back into computation. `tests/obs_inert.rs` holds this to
//! bit-identical `BatchReport`s.

use std::sync::OnceLock;

use gola_obs::{Counter, Gauge, Histogram};

macro_rules! handle {
    ($vis:vis $fn_name:ident: $ty:ty = $ctor:expr) => {
        $vis fn $fn_name() -> &'static $ty {
            static H: OnceLock<$ty> = OnceLock::new();
            H.get_or_init(|| $ctor)
        }
    };
}

/// Per-report instrumentation handles for one executor. A single-process
/// session (`session_label = None`) resolves the historical unlabeled
/// names; an executor running under the multi-tenant scheduler resolves a
/// `session="<label>"` series per instrument, so concurrent sessions never
/// write through the same gauge cell (`tests/obs_sessions.rs` pins this).
/// Resolved lazily on the first enabled batch and cached on the executor,
/// so a disabled registry never registers anything.
#[derive(Clone, Debug)]
pub(crate) struct SessionMetrics {
    pub(crate) batches: Counter,
    pub(crate) ci_width: Gauge,
    pub(crate) fpc: Gauge,
    pub(crate) uncertain: Gauge,
    pub(crate) recomputations: Gauge,
}

impl SessionMetrics {
    pub(crate) fn resolve(session: Option<&str>) -> SessionMetrics {
        let labels: Vec<(&str, &str)> = match session {
            Some(s) => vec![("session", s)],
            None => Vec::new(),
        };
        SessionMetrics {
            batches: gola_obs::counter_with("report.batches", &labels),
            ci_width: gola_obs::gauge_with("report.ci_width", &labels),
            fpc: gola_obs::gauge_with("report.fpc", &labels),
            uncertain: gola_obs::gauge_with("report.uncertain", &labels),
            recomputations: gola_obs::gauge_with("report.recomputations", &labels),
        }
    }
}

// Worker-pool queue instrumentation (parallel dispatch path only; the
// sequential fast path has no queue to wait in).
handle!(pub(crate) pool_runs: Counter = gola_obs::counter("pool.runs"));
handle!(pub(crate) pool_jobs: Counter = gola_obs::counter("pool.jobs"));
handle!(pub(crate) pool_queue_wait: Histogram =
    gola_obs::duration_histogram("pool.queue_wait_seconds"));
handle!(pub(crate) pool_job_run: Histogram =
    gola_obs::duration_histogram("pool.job_run_seconds"));
