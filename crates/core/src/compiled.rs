//! Per-block compilation for online execution.
//!
//! [`CompiledBlock`] augments a [`Block`] with everything the executor
//! precomputes once per query:
//!
//! * the split of WHERE conjuncts into *certain* (no subquery references —
//!   evaluated once per tuple, decisions never flip) and *uncertain* ones;
//! * the **lineage projection**: the minimal set of source columns that
//!   uncertain tuples must cache (paper §3.3), and every downstream
//!   expression rewritten into lineage-row coordinates.

use gola_agg::AggKind;
use gola_expr::Expr;
use gola_plan::Block;

/// A lineage block plus its precomputed online-execution artifacts.
#[derive(Debug, Clone)]
pub struct CompiledBlock {
    pub block: Block,
    /// WHERE conjuncts with no subquery references, over the source schema.
    pub certain_filters: Vec<Expr>,
    /// WHERE conjuncts referencing other blocks, over the source schema.
    pub uncertain_filters: Vec<Expr>,
    /// Source-schema columns cached for uncertain tuples (sorted).
    pub lineage_cols: Vec<usize>,
    /// `uncertain_filters` rewritten into lineage-row coordinates.
    pub lin_filters: Vec<Expr>,
    /// Group-by expressions in lineage-row coordinates.
    pub lin_group_by: Vec<Expr>,
    /// Aggregate argument expressions in lineage-row coordinates.
    pub lin_agg_args: Vec<Expr>,
    /// Aggregate kinds (for state construction).
    pub agg_kinds: Vec<AggKind>,
    /// Semi-join aggregation strategy (paper §3.2 applied at the *group*
    /// level): when the only uncertain predicate is a single membership
    /// test and every aggregate is mergeable, tuples are folded
    /// unconditionally into partial aggregates keyed by the membership key;
    /// the answer selects the partitions whose keys are (per trial)
    /// members. No tuples are cached and membership flips are absorbed by
    /// re-selection instead of recomputation. `(subquery, lineage-remapped
    /// key exprs, negated)`.
    pub semi_join: Option<(gola_expr::SubqueryId, Vec<Expr>, bool)>,
    /// Fast HAVING evaluation: when every HAVING conjunct is
    /// `agg-row-column θ constant`, the per-(group × trial) membership test
    /// reduces to direct comparisons. `(column, op, constant)` triples.
    pub fast_having: Option<Vec<(usize, gola_expr::BinOp, gola_common::Value)>>,
    /// Fast scalar-comparison filter: the single uncertain predicate has
    /// the shape `row-expr θ f(scalar-ref)` where `f`'s only row
    /// dependence is the correlation key. Per-trial re-evaluation of the
    /// uncertain set then caches `f` per (correlation key, trial) instead
    /// of evaluating the full expression per (tuple, trial).
    pub fast_scalar_cmp: Option<FastScalarCmp>,
}

/// Precompiled `lhs θ rhs(scalar-ref)` uncertain filter (lineage coords).
#[derive(Debug, Clone)]
pub struct FastScalarCmp {
    pub op: gola_expr::BinOp,
    /// Row-only side (no subquery references).
    pub lhs: Expr,
    /// Side containing exactly one scalar reference; row columns appear
    /// only inside that reference's key expressions.
    pub rhs: Expr,
    /// The scalar reference's key expressions (lineage coords).
    pub key: Vec<Expr>,
}

/// `e` qualifies as a cacheable RHS: exactly one `ScalarRef`, no membership
/// references, and every row column sits inside that ref's keys.
fn cacheable_rhs(e: &Expr) -> Option<Vec<Expr>> {
    fn walk(e: &Expr, refs: &mut Vec<Vec<Expr>>, outside_cols: &mut bool) {
        match e {
            Expr::ScalarRef { key, .. } => refs.push(key.clone()),
            Expr::InSubquery { .. } => {
                // Membership inside the RHS disables the fast path.
                *outside_cols = true;
            }
            Expr::Column(_) => *outside_cols = true,
            _ => {
                for c in e.children() {
                    walk(c, refs, outside_cols);
                }
            }
        }
    }
    let mut refs = Vec::new();
    let mut outside = false;
    walk(e, &mut refs, &mut outside);
    if refs.len() == 1 && !outside {
        Some(refs.pop().unwrap())
    } else {
        None
    }
}

fn compile_fast_scalar_cmp(lin_filters: &[Expr]) -> Option<FastScalarCmp> {
    let [Expr::Binary { op, left, right }] = lin_filters else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    if !left.has_subquery_ref() {
        let key = cacheable_rhs(right)?;
        return Some(FastScalarCmp {
            op: *op,
            lhs: (**left).clone(),
            rhs: (**right).clone(),
            key,
        });
    }
    if !right.has_subquery_ref() {
        let flipped = match op {
            gola_expr::BinOp::Lt => gola_expr::BinOp::Gt,
            gola_expr::BinOp::LtEq => gola_expr::BinOp::GtEq,
            gola_expr::BinOp::Gt => gola_expr::BinOp::Lt,
            gola_expr::BinOp::GtEq => gola_expr::BinOp::LtEq,
            other => *other,
        };
        let key = cacheable_rhs(left)?;
        return Some(FastScalarCmp {
            op: flipped,
            lhs: (**right).clone(),
            rhs: (**left).clone(),
            key,
        });
    }
    None
}

impl CompiledBlock {
    pub fn new(block: Block) -> CompiledBlock {
        let mut certain_filters = Vec::new();
        let mut uncertain_filters = Vec::new();
        for f in &block.filters {
            if f.has_subquery_ref() {
                uncertain_filters.push(f.clone());
            } else {
                certain_filters.push(f.clone());
            }
        }
        // Lineage: only what uncertain re-evaluation and aggregation need.
        let mut lineage_cols = Vec::new();
        for e in uncertain_filters
            .iter()
            .chain(block.group_by.iter())
            .chain(block.aggs.iter().map(|a| &a.arg))
        {
            e.collect_columns(&mut lineage_cols);
        }
        lineage_cols.sort_unstable();
        let remap = |src: usize| -> usize {
            lineage_cols
                .binary_search(&src)
                .expect("lineage projection covers all referenced columns")
        };
        let lin_filters: Vec<Expr> = uncertain_filters
            .iter()
            .map(|e| e.remap_columns(&remap))
            .collect();
        let lin_group_by: Vec<Expr> = block
            .group_by
            .iter()
            .map(|e| e.remap_columns(&remap))
            .collect();
        let lin_agg_args: Vec<Expr> = block
            .aggs
            .iter()
            .map(|a| a.arg.remap_columns(&remap))
            .collect();
        let agg_kinds: Vec<AggKind> = block.aggs.iter().map(|a| a.kind.clone()).collect();
        let semi_join = match &lin_filters[..] {
            [Expr::InSubquery { id, key, negated }]
                if agg_kinds.iter().all(AggKind::is_mergeable) =>
            {
                Some((*id, key.clone(), *negated))
            }
            _ => None,
        };
        let fast_having = compile_fast_having(&block.having);
        let fast_scalar_cmp = compile_fast_scalar_cmp(&lin_filters);
        CompiledBlock {
            block,
            certain_filters,
            uncertain_filters,
            lineage_cols,
            lin_filters,
            lin_group_by,
            lin_agg_args,
            agg_kinds,
            semi_join,
            fast_having,
            fast_scalar_cmp,
        }
    }

    /// Number of group-key columns.
    pub fn num_keys(&self) -> usize {
        self.block.group_by.len()
    }

    /// `true` when tuples can need caching at all.
    pub fn has_uncertainty(&self) -> bool {
        !self.uncertain_filters.is_empty()
    }
}

/// Recognize `Column θ constant` / `constant θ Column` HAVING conjuncts and
/// pre-evaluate the constant side. Any non-matching conjunct disables the
/// fast path.
fn compile_fast_having(
    having: &[Expr],
) -> Option<Vec<(usize, gola_expr::BinOp, gola_common::Value)>> {
    use gola_expr::eval::{eval, ExactContext};
    if having.is_empty() {
        return None;
    }
    let empty_row = gola_common::Row::new(vec![]);
    let mut out = Vec::with_capacity(having.len());
    for h in having {
        let Expr::Binary { op, left, right } = h else {
            return None;
        };
        if !op.is_comparison() {
            return None;
        }
        let constant = |e: &Expr| -> Option<gola_common::Value> {
            let mut cols = Vec::new();
            e.collect_columns(&mut cols);
            if !cols.is_empty() || e.has_subquery_ref() {
                return None;
            }
            eval(e, &ExactContext::new(&empty_row)).ok()
        };
        match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), rhs) => {
                out.push((*c, *op, constant(rhs)?));
            }
            (lhs, Expr::Column(c)) => {
                // Flip `const θ col` into `col θ' const`.
                let flipped = match op {
                    gola_expr::BinOp::Lt => gola_expr::BinOp::Gt,
                    gola_expr::BinOp::LtEq => gola_expr::BinOp::GtEq,
                    gola_expr::BinOp::Gt => gola_expr::BinOp::Lt,
                    gola_expr::BinOp::GtEq => gola_expr::BinOp::LtEq,
                    other => *other,
                };
                out.push((*c, flipped, constant(lhs)?));
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{DataType, Schema};
    use gola_expr::{BinOp, SubqueryId};
    use gola_plan::{AggCall, BlockRole};
    use std::sync::Arc;

    fn block() -> Block {
        let schema = Arc::new(Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Float),
            ("c", DataType::Float),
            ("d", DataType::Float),
        ]));
        Block {
            id: 1,
            role: BlockRole::Root,
            source_table: "t".into(),
            is_streaming: true,
            dims: vec![],
            source_schema: Arc::clone(&schema),
            filters: vec![
                // certain: a > 0 (source col 0, not in lineage need? it is
                // referenced only here → excluded from lineage)
                Expr::gt(Expr::col(0), Expr::lit(0i64)),
                // uncertain: c > $sq0
                Expr::gt(
                    Expr::col(2),
                    Expr::ScalarRef {
                        id: SubqueryId(0),
                        key: vec![],
                    },
                ),
            ],
            group_by: vec![Expr::col(3)],
            aggs: vec![AggCall {
                kind: AggKind::Avg,
                arg: Expr::binary(BinOp::Add, Expr::col(1), Expr::col(3)),
                name: "x".into(),
            }],
            agg_row_schema: Arc::new(Schema::from_pairs(&[
                ("d", DataType::Float),
                ("x", DataType::Float),
            ])),
            having: vec![],
            post_project: None,
            output_schema: Arc::new(Schema::from_pairs(&[
                ("d", DataType::Float),
                ("x", DataType::Float),
            ])),
            order_by: vec![],
            limit: None,
            deps: vec![SubqueryId(0)],
            lineage_cols: vec![],
        }
    }

    #[test]
    fn filters_split_by_uncertainty() {
        let c = CompiledBlock::new(block());
        assert_eq!(c.certain_filters.len(), 1);
        assert_eq!(c.uncertain_filters.len(), 1);
        assert!(c.has_uncertainty());
    }

    #[test]
    fn lineage_excludes_certain_only_columns() {
        let c = CompiledBlock::new(block());
        // Columns needed downstream: 1 (agg), 2 (uncertain filter), 3
        // (group + agg). Column 0 is only in a certain filter.
        assert_eq!(c.lineage_cols, vec![1, 2, 3]);
    }

    #[test]
    fn expressions_remapped_to_lineage_coordinates() {
        let c = CompiledBlock::new(block());
        // Source col 2 → lineage idx 1.
        assert_eq!(c.lin_filters[0].to_string(), "(#1 > $sq0)");
        // group col 3 → lineage idx 2.
        assert_eq!(c.lin_group_by[0].to_string(), "#2");
        // agg arg (#1 + #3) → (#0 + #2).
        assert_eq!(c.lin_agg_args[0].to_string(), "(#0 + #2)");
        assert_eq!(c.num_keys(), 1);
        assert_eq!(c.agg_kinds.len(), 1);
    }
}

#[cfg(test)]
mod fast_path_tests {
    use super::*;
    use gola_common::{DataType, Schema, Value};
    use gola_expr::{BinOp, SubqueryId};
    use gola_plan::{AggCall, BlockRole};
    use std::sync::Arc;

    fn base_block(filters: Vec<Expr>, having: Vec<Expr>, kinds: Vec<AggKind>) -> Block {
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("x", DataType::Float),
        ]));
        let aggs: Vec<AggCall> = kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| AggCall {
                kind,
                arg: Expr::col(1),
                name: format!("a{i}"),
            })
            .collect();
        Block {
            id: 0,
            role: BlockRole::Root,
            source_table: "t".into(),
            is_streaming: true,
            dims: vec![],
            source_schema: Arc::clone(&schema),
            filters,
            group_by: vec![Expr::col(0)],
            aggs,
            agg_row_schema: Arc::new(Schema::from_pairs(&[
                ("k", DataType::Int),
                ("a0", DataType::Float),
            ])),
            having,
            post_project: None,
            output_schema: Arc::new(Schema::from_pairs(&[
                ("k", DataType::Int),
                ("a0", DataType::Float),
            ])),
            order_by: vec![],
            limit: None,
            deps: vec![],
            lineage_cols: vec![],
        }
    }

    fn member_filter() -> Expr {
        Expr::InSubquery {
            id: SubqueryId(0),
            key: vec![Expr::col(0)],
            negated: false,
        }
    }

    #[test]
    fn semi_join_detected_for_single_membership_with_mergeable_aggs() {
        let cb = CompiledBlock::new(base_block(
            vec![member_filter()],
            vec![],
            vec![AggKind::Sum, AggKind::Avg],
        ));
        assert!(cb.semi_join.is_some());
        // A quantile aggregate disables it (states are unmergeable).
        let cb = CompiledBlock::new(base_block(
            vec![member_filter()],
            vec![],
            vec![AggKind::Quantile(0.5)],
        ));
        assert!(cb.semi_join.is_none());
        // A second uncertain filter disables it too.
        let scalar = Expr::gt(
            Expr::col(1),
            Expr::ScalarRef {
                id: SubqueryId(1),
                key: vec![],
            },
        );
        let cb = CompiledBlock::new(base_block(
            vec![member_filter(), scalar],
            vec![],
            vec![AggKind::Sum],
        ));
        assert!(cb.semi_join.is_none());
    }

    #[test]
    fn fast_having_detected_for_constant_thresholds() {
        // agg column > constant (also flipped), constant side pre-evaluated.
        let h1 = Expr::gt(
            Expr::col(1),
            Expr::binary(BinOp::Mul, Expr::lit(3.0), Expr::lit(100.0)),
        );
        let cb = CompiledBlock::new(base_block(vec![], vec![h1], vec![AggKind::Sum]));
        let fh = cb.fast_having.as_ref().unwrap();
        assert_eq!(fh.len(), 1);
        assert_eq!(fh[0].0, 1);
        assert_eq!(fh[0].1, BinOp::Gt);
        assert_eq!(fh[0].2, Value::Float(300.0));
        // Flipped: const < column normalizes to column > const.
        let h2 = Expr::lt(Expr::lit(300.0), Expr::col(1));
        let cb = CompiledBlock::new(base_block(vec![], vec![h2], vec![AggKind::Sum]));
        assert_eq!(cb.fast_having.as_ref().unwrap()[0].1, BinOp::Gt);
        // A scalar-ref threshold disables the fast path.
        let h3 = Expr::gt(
            Expr::col(1),
            Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![],
            },
        );
        let cb = CompiledBlock::new(base_block(vec![], vec![h3], vec![AggKind::Sum]));
        assert!(cb.fast_having.is_none());
    }

    #[test]
    fn fast_scalar_cmp_detected_and_flipped() {
        // x < 0.5 * $sq0[k] — cacheable by the correlation key.
        let pred = Expr::lt(
            Expr::col(1),
            Expr::binary(
                BinOp::Mul,
                Expr::lit(0.5),
                Expr::ScalarRef {
                    id: SubqueryId(0),
                    key: vec![Expr::col(0)],
                },
            ),
        );
        let cb = CompiledBlock::new(base_block(vec![pred], vec![], vec![AggKind::Sum]));
        let fsc = cb.fast_scalar_cmp.as_ref().unwrap();
        assert_eq!(fsc.op, BinOp::Lt);
        assert_eq!(fsc.key.len(), 1);
        // Flipped orientation normalizes the operator.
        let pred = Expr::gt(
            Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![],
            },
            Expr::col(1),
        );
        let cb = CompiledBlock::new(base_block(vec![pred], vec![], vec![AggKind::Sum]));
        assert_eq!(cb.fast_scalar_cmp.as_ref().unwrap().op, BinOp::Lt);
        // A row column outside the ref's key kills cacheability.
        let pred = Expr::lt(
            Expr::col(1),
            Expr::binary(
                BinOp::Add,
                Expr::col(1),
                Expr::ScalarRef {
                    id: SubqueryId(0),
                    key: vec![],
                },
            ),
        );
        let cb = CompiledBlock::new(base_block(vec![pred], vec![], vec![AggKind::Sum]));
        assert!(cb.fast_scalar_cmp.is_none());
        // Two scalar refs: not cacheable by a single key.
        let pred = Expr::lt(
            Expr::col(1),
            Expr::binary(
                BinOp::Add,
                Expr::ScalarRef {
                    id: SubqueryId(0),
                    key: vec![],
                },
                Expr::ScalarRef {
                    id: SubqueryId(1),
                    key: vec![],
                },
            ),
        );
        let cb = CompiledBlock::new(base_block(vec![pred], vec![], vec![AggKind::Sum]));
        assert!(cb.fast_scalar_cmp.is_none());
    }
}
