//! Per-block runtime state and the online evaluation contexts.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

use gola_agg::ReplicatedStates;
use gola_common::{cmp_values, Error, FxHashMap, Result, Value};
use gola_expr::{EvalContext, RangeVal, SubqueryId, Tri};
use gola_storage::ColumnChunk;

/// Borrow a hash map's entries in canonical key order ([`cmp_values`]).
///
/// The runtime keeps grouped state in `FxHashMap`s (lookup-heavy hot path),
/// but hash iteration order must never be observable downstream — any walk
/// whose effects can reach a `BatchReport` (float merge order, row order,
/// chunk boundaries) goes through this helper instead. This is the single
/// blessed crossing from hash-ordered storage to published order.
pub fn sorted_entries<V>(map: &FxHashMap<Vec<Value>, V>) -> Vec<(&Vec<Value>, &V)> {
    // golint: allow(hash-order-leak) -- entries are sorted by total key
    // order before they can be observed
    let mut entries: Vec<(&Vec<Value>, &V)> = map.iter().collect();
    entries.sort_by(|a, b| cmp_values(a.0, b.0));
    entries
}

/// Consuming variant of [`sorted_entries`].
pub fn sorted_into_entries<V>(map: FxHashMap<Vec<Value>, V>) -> Vec<(Vec<Value>, V)> {
    // golint: allow(hash-order-leak) -- entries are sorted by total key
    // order before they can be observed
    let mut entries: Vec<(Vec<Value>, V)> = map.into_iter().collect();
    entries.sort_by(|a, b| cmp_values(&a.0, &b.0));
    entries
}

/// The uncertain set `Uᵢ` of one block, stored struct-of-arrays: stable
/// tuple ids, the tuples' bootstrap weights, and their lineage projections
/// as a columnar chunk.
///
/// Weights are a pure function of `(tuple_id, trial, seed)`, so they are
/// computed exactly once — when a tuple first stays uncertain — and carried
/// here for every later re-evaluation (`effective_states`) and re-classify,
/// instead of re-deriving `|Uᵢ| × trials` hash streams per batch.
#[derive(Debug)]
pub struct UncertainSet {
    /// Stable per-tuple ids (row index in the source table).
    pub tuple_ids: Vec<u64>,
    /// Bootstrap weights, row-major `len × trials`.
    pub weights: Vec<u32>,
    /// Lineage projections, column-major (one column per lineage column).
    pub chunk: ColumnChunk,
}

impl Default for UncertainSet {
    fn default() -> UncertainSet {
        UncertainSet {
            tuple_ids: Vec::new(),
            weights: Vec::new(),
            chunk: ColumnChunk::empty(0),
        }
    }
}

impl UncertainSet {
    pub fn len(&self) -> usize {
        self.tuple_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuple_ids.is_empty()
    }

    pub fn clear(&mut self) {
        self.tuple_ids.clear();
        self.weights.clear();
        self.chunk = ColumnChunk::empty(0);
    }
}

/// The published output of a **scalar** block for one group.
#[derive(Debug)]
pub struct PublishedScalar {
    /// Current point estimate of the subquery value.
    pub value: Value,
    /// Per-bootstrap-trial values (used for consistent replica propagation
    /// into consumer aggregates).
    pub trials: Vec<Value>,
    /// The committed envelope: the intersection of every variation range a
    /// consumer decision was made against. Only narrows while `used`.
    pub env: RangeVal,
    /// Set once any consumer makes a deterministic decision against `env`.
    pub used: AtomicBool,
}

impl PublishedScalar {
    pub fn is_used(&self) -> bool {
        self.used.load(Ordering::Relaxed)
    }
}

/// The published output of a **membership** block for one group.
#[derive(Debug)]
pub struct PublishedMember {
    /// Current point membership (does the group pass HAVING now?).
    pub point: bool,
    /// Per-trial membership.
    pub trials: Vec<bool>,
    /// Range-classified membership: deterministic or may-flip.
    pub tri: Tri,
    /// 0 = no consumer relied; 1 = relied on `false`; 2 = relied on `true`.
    pub relied: AtomicU8,
}

impl PublishedMember {
    pub fn relied_on(&self) -> Option<bool> {
        match self.relied.load(Ordering::Relaxed) {
            1 => Some(false),
            2 => Some(true),
            _ => None,
        }
    }

    pub fn mark_relied(&self, value: bool) {
        let _ = self.relied.compare_exchange(
            0,
            if value { 2 } else { 1 },
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }
}

/// Everything a block exposes to its consumers.
///
/// Keys are interned as `Arc<[Value]>`: the publisher reuses the previous
/// batch's key allocations (group keys are stable across batches), and
/// lookups hash the slice directly via `Borrow<[Value]>`.
#[derive(Debug, Default)]
pub struct Published {
    pub scalars: FxHashMap<Arc<[Value]>, PublishedScalar>,
    pub members: FxHashMap<Arc<[Value]>, PublishedMember>,
    /// `true` while the producer may still add groups or move values
    /// (streaming and not yet finished).
    pub live: bool,
}

/// Runtime state of one lineage block.
#[derive(Debug, Default)]
pub struct BlockRuntime {
    /// Deterministic aggregate states per group (main + bootstrap replicas).
    pub groups: FxHashMap<Vec<Value>, ReplicatedStates>,
    /// The uncertain set `Uᵢ`.
    pub uncertain: UncertainSet,
    /// Semi-join partial aggregates: membership key → (group key → states).
    /// Used instead of `groups`/`uncertain` when the block compiles to the
    /// semi-join aggregation strategy.
    pub semi_groups: FxHashMap<Vec<Value>, FxHashMap<Vec<Value>, ReplicatedStates>>,
    /// `true` once a static (non-streaming) block has been computed.
    pub static_done: bool,
}

impl BlockRuntime {
    /// Drop all accumulated state (failure-triggered recomputation).
    pub fn reset(&mut self) {
        self.groups.clear();
        self.uncertain.clear();
        self.semi_groups.clear();
        self.static_done = false;
    }
}

/// Evaluation mode of the online contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtxMode {
    /// Range-based classification (uses envelopes / membership tri).
    Classify,
    /// Current point estimates.
    Point,
    /// Values of one bootstrap trial.
    Trial(u32),
}

fn scalar_at<'a>(
    pubs: &'a [Published],
    id: SubqueryId,
    key: &[Value],
) -> Result<(&'a Published, Option<&'a PublishedScalar>)> {
    let p = pubs
        .get(id.0)
        .ok_or_else(|| Error::exec(format!("no published output for {id}")))?;
    Ok((p, p.scalars.get(key)))
}

fn member_at<'a>(
    pubs: &'a [Published],
    id: SubqueryId,
    key: &[Value],
) -> Result<(&'a Published, Option<&'a PublishedMember>)> {
    let p = pubs
        .get(id.0)
        .ok_or_else(|| Error::exec(format!("no published output for {id}")))?;
    Ok((p, p.members.get(key)))
}

fn scalar_current_impl(
    pubs: &[Published],
    id: SubqueryId,
    key: &[Value],
    mode: CtxMode,
) -> Result<Value> {
    let (_, entry) = scalar_at(pubs, id, key)?;
    Ok(match entry {
        Some(s) => match mode {
            CtxMode::Trial(b) => s
                .trials
                .get(b as usize)
                .cloned()
                .unwrap_or_else(|| s.value.clone()),
            _ => s.value.clone(),
        },
        // Missing group: behaves like an empty subquery (NULL) for now.
        None => Value::Null,
    })
}

fn scalar_range_impl(
    pubs: &[Published],
    id: SubqueryId,
    key: &[Value],
    mode: CtxMode,
) -> Result<RangeVal> {
    let (p, entry) = scalar_at(pubs, id, key)?;
    Ok(match (entry, mode) {
        (Some(s), CtxMode::Classify) => s.env.clone(),
        (Some(s), CtxMode::Point) => RangeVal::Exact(s.value.clone()),
        (Some(s), CtxMode::Trial(b)) => RangeVal::Exact(
            s.trials
                .get(b as usize)
                .cloned()
                .unwrap_or_else(|| s.value.clone()),
        ),
        (None, _) => {
            if p.live && mode == CtxMode::Classify {
                // The group may still appear — nothing can be bounded.
                RangeVal::Unknown
            } else {
                RangeVal::Exact(Value::Null)
            }
        }
    })
}

fn member_current_impl(
    pubs: &[Published],
    id: SubqueryId,
    key: &[Value],
    mode: CtxMode,
) -> Result<bool> {
    let (_, entry) = member_at(pubs, id, key)?;
    Ok(match entry {
        Some(m) => match mode {
            CtxMode::Trial(b) => m.trials.get(b as usize).copied().unwrap_or(m.point),
            _ => m.point,
        },
        None => false,
    })
}

fn member_tri_impl(
    pubs: &[Published],
    id: SubqueryId,
    key: &[Value],
    mode: CtxMode,
) -> Result<Tri> {
    let (p, entry) = member_at(pubs, id, key)?;
    Ok(match entry {
        Some(m) => match mode {
            CtxMode::Classify => m.tri,
            CtxMode::Point => Tri::from(m.point),
            CtxMode::Trial(b) => Tri::from(m.trials.get(b as usize).copied().unwrap_or(m.point)),
        },
        None => {
            if p.live && mode == CtxMode::Classify {
                Tri::Maybe
            } else {
                Tri::False
            }
        }
    })
}

/// Context for evaluating block-source expressions over one tuple. The row
/// is a plain value slice so both materialized [`gola_common::Row`]s
/// (`row.values()`) and reused per-chunk row buffers work without copies.
pub struct TupleCtx<'a> {
    pub row: &'a [Value],
    pub pubs: &'a [Published],
    pub mode: CtxMode,
}

impl EvalContext for TupleCtx<'_> {
    fn column(&self, idx: usize) -> &Value {
        &self.row[idx]
    }

    fn scalar_current(&self, id: SubqueryId, key: &[Value]) -> Result<Value> {
        scalar_current_impl(self.pubs, id, key, self.mode)
    }

    fn scalar_range(&self, id: SubqueryId, key: &[Value]) -> Result<RangeVal> {
        scalar_range_impl(self.pubs, id, key, self.mode)
    }

    fn member_current(&self, id: SubqueryId, key: &[Value]) -> Result<bool> {
        member_current_impl(self.pubs, id, key, self.mode)
    }

    fn member_tri(&self, id: SubqueryId, key: &[Value]) -> Result<Tri> {
        member_tri_impl(self.pubs, id, key, self.mode)
    }
}

/// Context for evaluating HAVING / post-projection expressions over one
/// group row (`keys ++ aggs`), optionally with per-aggregate variation
/// ranges for classification.
pub struct GroupCtx<'a> {
    pub keys: &'a [Value],
    pub aggs: &'a [Value],
    /// Variation range per aggregate column (classification mode).
    pub agg_ranges: Option<&'a [RangeVal]>,
    pub pubs: &'a [Published],
    pub mode: CtxMode,
}

impl EvalContext for GroupCtx<'_> {
    fn column(&self, idx: usize) -> &Value {
        if idx < self.keys.len() {
            &self.keys[idx]
        } else {
            &self.aggs[idx - self.keys.len()]
        }
    }

    fn column_range(&self, idx: usize) -> RangeVal {
        if idx >= self.keys.len() {
            if let Some(ranges) = self.agg_ranges {
                return ranges[idx - self.keys.len()].clone();
            }
        }
        RangeVal::Exact(self.column(idx).clone())
    }

    fn scalar_current(&self, id: SubqueryId, key: &[Value]) -> Result<Value> {
        scalar_current_impl(self.pubs, id, key, self.mode)
    }

    fn scalar_range(&self, id: SubqueryId, key: &[Value]) -> Result<RangeVal> {
        scalar_range_impl(self.pubs, id, key, self.mode)
    }

    fn member_current(&self, id: SubqueryId, key: &[Value]) -> Result<bool> {
        member_current_impl(self.pubs, id, key, self.mode)
    }

    fn member_tri(&self, id: SubqueryId, key: &[Value]) -> Result<Tri> {
        member_tri_impl(self.pubs, id, key, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::row;
    use gola_expr::{eval, eval_tri, Expr};

    fn pubs_with_scalar(live: bool) -> Vec<Published> {
        let mut p = Published {
            live,
            ..Default::default()
        };
        p.scalars.insert(
            Arc::from(Vec::new()),
            PublishedScalar {
                value: Value::Float(37.0),
                trials: vec![Value::Float(36.0), Value::Float(38.0)],
                env: RangeVal::num(28.9, 45.1),
                used: AtomicBool::new(false),
            },
        );
        vec![p]
    }

    fn sref() -> Expr {
        Expr::ScalarRef {
            id: SubqueryId(0),
            key: vec![],
        }
    }

    #[test]
    fn tuple_ctx_modes() {
        let pubs = pubs_with_scalar(true);
        let row = row![35.0f64];
        let pred = Expr::gt(Expr::col(0), sref());
        // Point: 35 > 37 → false.
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Point,
        };
        assert_eq!(eval(&pred, &ctx).unwrap(), Value::Bool(false));
        // Trial 0: 35 > 36 → false; trial 1: 35 > 38 → false.
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Trial(0),
        };
        assert_eq!(eval(&pred, &ctx).unwrap(), Value::Bool(false));
        // Classify: 35 ∈ [28.9, 45.1] → Maybe.
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::Maybe);
    }

    #[test]
    fn missing_group_semantics() {
        let pubs = pubs_with_scalar(true);
        let row = row![35.0f64];
        let pred = Expr::gt(
            Expr::col(0),
            Expr::ScalarRef {
                id: SubqueryId(0),
                key: vec![Expr::lit(99i64)],
            },
        );
        // Unknown group while live: uncertain.
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::Maybe);
        // Point: NULL comparison → filtered.
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Point,
        };
        assert_eq!(eval(&pred, &ctx).unwrap(), Value::Null);
        // Once the producer is finished, missing = deterministic NULL.
        let pubs = pubs_with_scalar(false);
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&pred, &ctx).unwrap(), Tri::False);
    }

    #[test]
    fn membership_semantics() {
        let mut p = Published {
            live: true,
            ..Default::default()
        };
        p.members.insert(
            Arc::from(vec![Value::Int(7)]),
            PublishedMember {
                point: true,
                trials: vec![true, false],
                tri: Tri::Maybe,
                relied: AtomicU8::new(0),
            },
        );
        let pubs = vec![p];
        let row = row![7i64];
        let e = Expr::InSubquery {
            id: SubqueryId(0),
            key: vec![Expr::col(0)],
            negated: false,
        };
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::Maybe);
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Point,
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(true));
        let ctx = TupleCtx {
            row: row.values(),
            pubs: &pubs,
            mode: CtxMode::Trial(1),
        };
        assert_eq!(eval(&e, &ctx).unwrap(), Value::Bool(false));
        // Missing key while live → Maybe; not live → False.
        let row2 = row![8i64];
        let ctx = TupleCtx {
            row: row2.values(),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&e, &ctx).unwrap(), Tri::Maybe);
    }

    #[test]
    fn group_ctx_ranges() {
        let pubs: Vec<Published> = vec![];
        let keys = [Value::Int(1)];
        let aggs = [Value::Float(310.0)];
        let ranges = [RangeVal::num(280.0, 340.0)];
        // HAVING sum > 300 with range overlapping → Maybe.
        let having = Expr::gt(Expr::col(1), Expr::lit(300.0));
        let ctx = GroupCtx {
            keys: &keys,
            aggs: &aggs,
            agg_ranges: Some(&ranges),
            pubs: &pubs,
            mode: CtxMode::Classify,
        };
        assert_eq!(eval_tri(&having, &ctx).unwrap(), Tri::Maybe);
        // Point evaluation passes.
        let ctx = GroupCtx {
            keys: &keys,
            aggs: &aggs,
            agg_ranges: None,
            pubs: &pubs,
            mode: CtxMode::Point,
        };
        assert_eq!(eval(&having, &ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn relied_transitions() {
        let m = PublishedMember {
            point: true,
            trials: vec![],
            tri: Tri::True,
            relied: AtomicU8::new(0),
        };
        assert_eq!(m.relied_on(), None);
        m.mark_relied(true);
        assert_eq!(m.relied_on(), Some(true));
        // First reliance wins.
        m.mark_relied(false);
        assert_eq!(m.relied_on(), Some(true));
    }

    #[test]
    fn runtime_reset() {
        let mut rt = BlockRuntime::default();
        rt.uncertain.tuple_ids.push(1);
        rt.static_done = true;
        rt.reset();
        assert!(rt.uncertain.is_empty());
        assert!(!rt.static_done);
    }
}
