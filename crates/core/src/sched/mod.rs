//! Multi-tenant scheduling: many concurrent online sessions time-slicing
//! one shared [`crate::WorkerPool`] with **batch-granularity preemption**.
//!
//! The scheduler only ever yields *between* mini-batch report rounds —
//! never inside one. One quantum = one `OnlineExecution::next()` call, run
//! to completion on the shared pool while every other session waits. Since
//! the engine's threads=1/N contract makes each report bit-identical
//! regardless of pool size or dispatch order, serializing quanta this way
//! makes every session's report stream bit-identical to a solo run *by
//! construction* — interleaving affects only latency, never answers
//! (pinned end-to-end by `tests/sched_equivalence.rs` and the
//! `gola-service` conformance leg).
//!
//! Layering, simulator-first:
//!
//! * [`policy`] — pure stride-scheduling arithmetic + bounded admission.
//! * [`Scheduler`] — the policy paired with generic [`SchedTask`]s; no
//!   threads, no clocks, fully deterministic.
//! * [`sim`] — `SchedulerSim`: scripted arrivals driving a [`Scheduler`]
//!   under a virtual round clock; the property tests run here.
//! * [`task`] — `QueryTask`: a real `OnlineExecution` as a [`SchedTask`],
//!   with contract-aware urgency.
//! * [`service`] — `QueryService`: the threaded runtime (one scheduler
//!   thread, per-session report channels) that `gola-server` exposes.
//!
//! The sim, the conformance leg, and the live service all drive the *same*
//! `Scheduler::round` code path, so what the simulator proves is what the
//! service runs.

pub mod policy;
pub mod service;
pub mod sim;
pub mod task;

use std::collections::BTreeMap;
use std::fmt;

pub use policy::{
    Admission, AdmissionError, PolicyConfig, SchedPolicy, Urgency, MAX_WEIGHT, STRIDE_ONE,
    URGENT_BOOST,
};
pub use service::{QueryHandle, QueryService, ServiceConfig, SubmitError};
pub use sim::{Arrival, SchedulerSim, ScriptedTask, SimEvent, SimOutcome};
pub use task::QueryTask;

/// Identifies one admitted session within a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What one quantum produced.
#[derive(Debug)]
pub struct Quantum<O> {
    /// The quantum's output (a `BatchReport` round), if it produced one.
    pub output: Option<O>,
    /// `true` when the task will produce nothing further; the scheduler
    /// retires it and activates the next queued session.
    pub finished: bool,
    /// Contract pressure for the *next* quantum's priority.
    pub urgency: Urgency,
}

/// A schedulable unit of work. One `run_quantum` call must be one
/// *preemption-safe* step: for query tasks that is exactly one report
/// round — the task must never hold partial-batch state that another
/// session's quantum could perturb.
pub trait SchedTask {
    type Output;

    fn run_quantum(&mut self) -> Quantum<Self::Output>;
}

/// Where a submission landed (admission never silently drops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// Scheduled immediately.
    Active(SessionId),
    /// Admitted into the FIFO wait queue.
    Queued(SessionId),
}

impl Admitted {
    pub fn id(&self) -> SessionId {
        match *self {
            Admitted::Active(id) | Admitted::Queued(id) => id,
        }
    }
}

/// The outcome of one scheduling round.
#[derive(Debug)]
pub struct Round<O> {
    pub id: SessionId,
    pub output: Option<O>,
    pub finished: bool,
}

/// A fair scheduler over a set of tasks: repeatedly pick the most
/// deserving session (stride scheduling, see [`policy`]), run exactly one
/// quantum of it, charge it. Single-threaded and deterministic — the
/// [`service`] wraps it in a thread; the [`sim`] drives it on a virtual
/// clock.
pub struct Scheduler<T: SchedTask> {
    policy: SchedPolicy,
    tasks: BTreeMap<u64, T>,
    next_id: u64,
}

impl<T: SchedTask> Scheduler<T> {
    pub fn new(cfg: PolicyConfig) -> Scheduler<T> {
        Scheduler {
            policy: SchedPolicy::new(cfg),
            tasks: BTreeMap::new(),
            next_id: 0,
        }
    }

    pub fn num_active(&self) -> usize {
        self.policy.num_active()
    }

    pub fn num_queued(&self) -> usize {
        self.policy.num_queued()
    }

    /// `true` when no admitted session remains.
    pub fn is_idle(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Submit a task with the next free session id.
    pub fn submit(&mut self, task: T, weight: u64) -> Result<Admitted, AdmissionError> {
        let id = SessionId(self.next_id);
        self.submit_with_id(id, task, weight)
    }

    /// Submit a task under a caller-chosen id (the service pre-assigns ids
    /// so the obs session label exists before admission).
    pub fn submit_with_id(
        &mut self,
        id: SessionId,
        task: T,
        weight: u64,
    ) -> Result<Admitted, AdmissionError> {
        let admission = self.policy.admit(id.0, weight)?;
        self.tasks.insert(id.0, task);
        self.next_id = self.next_id.max(id.0 + 1);
        Ok(match admission {
            Admission::Active => Admitted::Active(id),
            Admission::Queued => Admitted::Queued(id),
        })
    }

    /// Cancel a session, active or queued. Returns `false` for unknown
    /// ids (already finished, never admitted).
    pub fn cancel(&mut self, id: SessionId) -> bool {
        let known = self.tasks.remove(&id.0).is_some();
        self.policy.remove(id.0);
        self.policy.activate_next();
        known
    }

    /// Run one quantum of the most deserving session. `None` when no
    /// session is active (idle, or everything still queued — impossible by
    /// construction, queued implies active is full).
    pub fn round(&mut self) -> Option<Round<T::Output>> {
        let id = self.policy.pick()?;
        let task = self.tasks.get_mut(&id)?;
        let quantum = task.run_quantum();
        if quantum.finished {
            self.tasks.remove(&id);
            self.policy.remove(id);
            self.policy.activate_next();
        } else {
            self.policy.charge(id);
            self.policy.set_urgency(id, quantum.urgency);
        }
        Some(Round {
            id: SessionId(id),
            output: quantum.output,
            finished: quantum.finished,
        })
    }
}
