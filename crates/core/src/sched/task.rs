//! A real online query as a schedulable task.

use gola_common::Result;
use gola_plan::QueryContract;

use crate::report::BatchReport;
use crate::sched::{Quantum, SchedTask, Urgency};
use crate::session::OnlineExecution;

/// An `ERROR` contract turns urgent when its achieved relative error is
/// within this factor of the target — the query is in its endgame, so
/// boosting it drains the contract (and frees its slot) sooner.
pub const URGENT_ERROR_FACTOR: f64 = 4.0;

/// A `WITHIN <n> SECONDS` contract turns urgent past this fraction of its
/// deadline budget.
pub const URGENT_DEADLINE_FRACTION: f64 = 0.5;

/// One online query under the scheduler. A quantum is exactly one
/// `OnlineExecution::next()` report round — the engine's preemption-safe
/// unit: between rounds the execution holds only its own accumulators, so
/// interleaving sessions cannot perturb answers.
pub struct QueryTask {
    exec: OnlineExecution,
}

impl QueryTask {
    pub fn new(exec: OnlineExecution) -> QueryTask {
        QueryTask { exec }
    }

    pub fn execution(&self) -> &OnlineExecution {
        &self.exec
    }
}

impl SchedTask for QueryTask {
    type Output = Result<BatchReport>;

    fn run_quantum(&mut self) -> Quantum<Self::Output> {
        match self.exec.next() {
            None => Quantum {
                output: None,
                finished: true,
                urgency: Urgency::Normal,
            },
            Some(Err(e)) => Quantum {
                // An execution error ends the stream; surface it as the
                // final output.
                output: Some(Err(e)),
                finished: true,
                urgency: Urgency::Normal,
            },
            Some(Ok(report)) => {
                let urgency = urgency_from(&report);
                let finished = self.exec.is_complete();
                Quantum {
                    output: Some(Ok(report)),
                    finished,
                    urgency,
                }
            }
        }
    }
}

/// Contract pressure from the latest report.
///
/// `ERROR` urgency depends only on report-derived quantities (achieved
/// relative CI width vs. target), so it is deterministic across runs.
/// `WITHIN` urgency reads the report's cumulative wall-clock — inherently
/// nondeterministic, exactly like the deadline stop itself; it can shift
/// *when* a deadline query runs, never what any query answers.
pub(crate) fn urgency_from(report: &BatchReport) -> Urgency {
    let Some(progress) = &report.contract else {
        return Urgency::Normal;
    };
    match progress.contract {
        QueryContract::Error { target, .. } => {
            let near = progress
                .achieved_rel_error
                .is_some_and(|a| a <= target * URGENT_ERROR_FACTOR);
            if near {
                Urgency::Urgent
            } else {
                Urgency::Normal
            }
        }
        QueryContract::Within { seconds } => {
            if report.cumulative_time.as_secs_f64() >= seconds * URGENT_DEADLINE_FRACTION {
                Urgency::Urgent
            } else {
                Urgency::Normal
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ContractProgress;
    use gola_storage::Table;
    use std::sync::Arc;
    use std::time::Duration;

    fn report(progress: Option<ContractProgress>, secs: f64) -> BatchReport {
        BatchReport {
            batch_index: 0,
            num_batches: 1,
            rows_seen: 0,
            total_rows: 0,
            multiplicity: 1.0,
            table: Table::empty(Arc::new(gola_common::Schema::new(Vec::new()))),
            estimates: Vec::new(),
            row_certain: Vec::new(),
            ci_level: 0.95,
            uncertain_tuples: 0,
            recomputations: 0,
            batch_time: Duration::ZERO,
            cumulative_time: Duration::from_secs_f64(secs),
            timing: Default::default(),
            contract: progress,
        }
    }

    #[test]
    fn uncontracted_reports_are_normal() {
        assert_eq!(urgency_from(&report(None, 100.0)), Urgency::Normal);
    }

    #[test]
    fn error_contract_turns_urgent_near_target() {
        let progress = |achieved| {
            Some(ContractProgress {
                contract: QueryContract::Error {
                    target: 0.01,
                    confidence: 0.95,
                },
                achieved_rel_error: achieved,
                stop: None,
            })
        };
        assert_eq!(urgency_from(&report(progress(None), 0.0)), Urgency::Normal);
        assert_eq!(
            urgency_from(&report(progress(Some(0.2)), 0.0)),
            Urgency::Normal
        );
        assert_eq!(
            urgency_from(&report(progress(Some(0.03)), 0.0)),
            Urgency::Urgent
        );
    }

    #[test]
    fn deadline_contract_turns_urgent_past_half_budget() {
        let progress = Some(ContractProgress {
            contract: QueryContract::Within { seconds: 10.0 },
            achieved_rel_error: None,
            stop: None,
        });
        assert_eq!(
            urgency_from(&report(progress.clone(), 1.0)),
            Urgency::Normal
        );
        assert_eq!(urgency_from(&report(progress, 6.0)), Urgency::Urgent);
    }
}
