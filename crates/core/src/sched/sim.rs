//! A deterministic scheduler simulator: scripted session arrivals driving
//! the real [`Scheduler`] under a virtual clock.
//!
//! The virtual clock is the *round counter* — each scheduling quantum is
//! one tick, matching the live system where a quantum is one mini-batch
//! round on the shared pool. There are no threads, no sockets and no wall
//! clocks anywhere in here: the same script always produces the same
//! event trace byte for byte, which is what lets the property tests in
//! `crates/core/tests/sched_sim.rs` sweep seeds × session counts and
//! assert fairness, starvation bounds and admission behavior exactly.

use std::collections::BTreeMap;

use crate::sched::{AdmissionError, PolicyConfig, SchedTask, Scheduler, SessionId, Urgency};

/// A scripted session arrival. Arrivals are submitted in declaration order
/// once the virtual clock reaches `at_round`.
#[derive(Debug)]
pub struct Arrival<T> {
    pub at_round: u64,
    pub weight: u64,
    pub task: T,
}

/// One entry of the simulator's event trace. Fully ordered and
/// deterministic; tests assert on it directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    Admitted {
        round: u64,
        id: SessionId,
        queued: bool,
    },
    Rejected {
        round: u64,
        error: AdmissionError,
    },
    Ran {
        round: u64,
        id: SessionId,
        finished: bool,
    },
}

/// Everything a simulation produced.
#[derive(Debug)]
pub struct SimOutcome<O> {
    /// The full ordered event trace.
    pub events: Vec<SimEvent>,
    /// Per session: every quantum output, in order.
    pub outputs: BTreeMap<SessionId, Vec<O>>,
    /// Rounds the virtual clock advanced through.
    pub rounds: u64,
    /// Arrivals refused with a typed [`AdmissionError`].
    pub rejected: usize,
    /// `true` if every admitted session ran to completion before
    /// `max_rounds` (tests assert this; `false` means the bound was hit).
    pub drained: bool,
}

impl<O> SimOutcome<O> {
    /// Quanta executed per session, from the trace.
    pub fn quanta(&self) -> BTreeMap<SessionId, u64> {
        let mut counts = BTreeMap::new();
        for ev in &self.events {
            if let SimEvent::Ran { id, .. } = ev {
                *counts.entry(*id).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Rounds at which each session ran (for starvation-gap assertions).
    pub fn run_rounds(&self, id: SessionId) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                SimEvent::Ran { round, id: r, .. } if *r == id => Some(*round),
                _ => None,
            })
            .collect()
    }
}

/// Drives a [`Scheduler`] from a script of arrivals until every admitted
/// session finishes (or `max_rounds` elapses, a runaway guard).
pub struct SchedulerSim;

impl SchedulerSim {
    pub fn run<T: SchedTask>(
        cfg: PolicyConfig,
        arrivals: Vec<Arrival<T>>,
        max_rounds: u64,
    ) -> SimOutcome<T::Output> {
        let mut sched: Scheduler<T> = Scheduler::new(cfg);
        let mut events = Vec::new();
        let mut outputs: BTreeMap<SessionId, Vec<T::Output>> = BTreeMap::new();
        let mut rejected = 0usize;
        let mut pending = arrivals.into_iter().peekable();
        let mut round = 0u64;
        let mut drained = true;

        loop {
            while pending.peek().is_some_and(|a| a.at_round <= round) {
                let Some(arrival) = pending.next() else { break };
                match sched.submit(arrival.task, arrival.weight) {
                    Ok(admitted) => {
                        let id = admitted.id();
                        outputs.entry(id).or_default();
                        events.push(SimEvent::Admitted {
                            round,
                            id,
                            queued: matches!(admitted, crate::sched::Admitted::Queued(_)),
                        });
                    }
                    Err(error) => {
                        rejected += 1;
                        events.push(SimEvent::Rejected { round, error });
                    }
                }
            }

            if sched.is_idle() && pending.peek().is_none() {
                break;
            }
            if round >= max_rounds {
                drained = false;
                break;
            }

            if let Some(done) = sched.round() {
                events.push(SimEvent::Ran {
                    round,
                    id: done.id,
                    finished: done.finished,
                });
                if let Some(out) = done.output {
                    outputs.entry(done.id).or_default().push(out);
                }
            }
            round += 1;
        }

        SimOutcome {
            events,
            outputs,
            rounds: round,
            rejected,
            drained,
        }
    }
}

/// A synthetic task for simulation: yields `total` quanta of output
/// (`0..total`), optionally turning urgent once `urgent_after` quanta have
/// run — a stand-in for a contracted query entering its endgame.
#[derive(Debug, Clone)]
pub struct ScriptedTask {
    total: u64,
    urgent_after: Option<u64>,
    done: u64,
}

impl ScriptedTask {
    pub fn new(total: u64) -> ScriptedTask {
        ScriptedTask {
            total: total.max(1),
            urgent_after: None,
            done: 0,
        }
    }

    /// Report [`Urgency::Urgent`] from the `after`-th quantum on.
    pub fn urgent_after(mut self, after: u64) -> ScriptedTask {
        self.urgent_after = Some(after);
        self
    }

    /// Total quanta this task will run.
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl SchedTask for ScriptedTask {
    type Output = u64;

    fn run_quantum(&mut self) -> crate::sched::Quantum<u64> {
        let index = self.done;
        self.done += 1;
        let urgency = if self.urgent_after.is_some_and(|after| self.done >= after) {
            Urgency::Urgent
        } else {
            Urgency::Normal
        };
        crate::sched::Quantum {
            output: Some(index),
            finished: self.done >= self.total,
            urgency,
        }
    }
}
