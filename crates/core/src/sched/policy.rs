//! The fair-share scheduling policy: stride scheduling with contract-aware
//! priority and bounded admission.
//!
//! # Model
//!
//! Every *active* session holds a `pass` value (a virtual timestamp). Each
//! scheduling round picks the runnable session with the smallest
//! `(pass, id)` pair and, after its quantum, advances its pass by
//! `STRIDE_ONE / (weight × boost)` — classic stride scheduling
//! (Waldspurger & Weihl, OSDI '94). Consequences, all deterministic:
//!
//! * **Proportional share.** Over any long window a session receives
//!   quanta in proportion to `weight × boost`.
//! * **No starvation.** A runnable session's pass is frozen while it
//!   waits; every other session's pass strictly grows when it runs, so the
//!   waiter becomes the minimum within a bounded number of rounds (at most
//!   `Σ_j ceil(stride_i / stride_j)` ≈ `Σ_j (w_i·b_i)/(w_j·b_j)` rounds,
//!   property-tested in `crates/core/tests/sched_sim.rs`).
//! * **Contract preference.** A session whose `ERROR`/`WITHIN` contract is
//!   close to its target reports [`Urgency::Urgent`] and its boost doubles:
//!   nearly-done contracted queries drain first, freeing their slot
//!   (BlinkDB-style accuracy contracts meet PF-OLA-style shared scheduling).
//!
//! # Admission
//!
//! At most `max_active` sessions are scheduled; up to `queue_capacity`
//! more wait in FIFO order. Beyond that, submission fails with the typed
//! [`AdmissionError`] — the caller (HTTP surface) maps it to `429`. An
//! *admitted* session (active or queued) is never dropped by the policy;
//! it leaves only by finishing or by explicit cancellation.
//!
//! New sessions (and sessions activated from the wait queue) start at the
//! global virtual time — the pass of the most recently scheduled session —
//! so an arrival can neither monopolize the scheduler with a stale small
//! pass nor be penalized for history it did not witness.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// One quantum's worth of virtual time for a weight-1, normal-urgency
/// session. Strides divide this; with `weight × boost ≤ 32` the integer
/// division loses at most 1/32768 of precision per charge.
pub const STRIDE_ONE: u64 = 1 << 20;

/// Weights are clamped to `1..=MAX_WEIGHT` so the starvation bound stays
/// small and `STRIDE_ONE / (weight × boost)` stays far from zero.
pub const MAX_WEIGHT: u64 = 16;

/// How much a session's share is boosted by contract urgency.
pub const URGENT_BOOST: u64 = 2;

/// Scheduling pressure reported by a task after each quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Urgency {
    /// No contract, or the contract target is still far away.
    #[default]
    Normal,
    /// An `ERROR`/`WITHIN` contract is near its target: finishing this
    /// session soon both honors the contract and frees its slot.
    Urgent,
}

impl Urgency {
    pub(crate) fn boost(self) -> u64 {
        match self {
            Urgency::Normal => 1,
            Urgency::Urgent => URGENT_BOOST,
        }
    }
}

/// Typed admission rejection (HTTP maps this to `429 Too Many Requests`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Both the active set and the wait queue are full.
    Saturated {
        active: usize,
        queued: usize,
        max_active: usize,
        queue_capacity: usize,
    },
    /// A session with this id is already admitted (internal misuse guard;
    /// the service's id counter makes it unreachable in practice).
    DuplicateSession { id: u64 },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Saturated {
                active,
                queued,
                max_active,
                queue_capacity,
            } => write!(
                f,
                "scheduler saturated: {active}/{max_active} active sessions and \
                 {queued}/{queue_capacity} queued"
            ),
            AdmissionError::DuplicateSession { id } => {
                write!(f, "session id {id} is already admitted")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Capacity knobs of the policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Sessions scheduled concurrently (time-sliced, one quantum at a time).
    pub max_active: usize,
    /// Admitted-but-waiting sessions beyond the active set.
    pub queue_capacity: usize,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            max_active: 4,
            queue_capacity: 16,
        }
    }
}

/// Where an admitted session landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Scheduled immediately.
    Active,
    /// Admitted; will activate in FIFO order as slots free up.
    Queued,
}

#[derive(Debug)]
struct Entry {
    weight: u64,
    urgency: Urgency,
    pass: u64,
}

impl Entry {
    fn stride(&self) -> u64 {
        STRIDE_ONE / (self.weight * self.urgency.boost())
    }
}

/// Pure scheduling bookkeeping: no tasks, no threads, no clocks. The
/// generic [`crate::sched::Scheduler`] pairs it with tasks; the simulator
/// and the live service both drive that same code.
#[derive(Debug)]
pub struct SchedPolicy {
    cfg: PolicyConfig,
    active: BTreeMap<u64, Entry>,
    /// FIFO of admitted sessions waiting for an active slot: `(id, weight)`.
    queued: VecDeque<(u64, u64)>,
    /// Global virtual time: the pass of the most recently scheduled
    /// session at the moment it was picked. Monotone non-decreasing.
    vtime: u64,
}

impl SchedPolicy {
    pub fn new(cfg: PolicyConfig) -> SchedPolicy {
        SchedPolicy {
            cfg: PolicyConfig {
                max_active: cfg.max_active.max(1),
                queue_capacity: cfg.queue_capacity,
            },
            active: BTreeMap::new(),
            queued: VecDeque::new(),
            vtime: 0,
        }
    }

    pub fn config(&self) -> PolicyConfig {
        self.cfg
    }

    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    pub fn num_queued(&self) -> usize {
        self.queued.len()
    }

    /// Admit session `id`, either into the active set or the wait queue.
    /// `weight` is clamped to `1..=MAX_WEIGHT`.
    pub fn admit(&mut self, id: u64, weight: u64) -> Result<Admission, AdmissionError> {
        let weight = weight.clamp(1, MAX_WEIGHT);
        // golint: allow(float-total-order) -- `q` and `id` are u64 session
        // ids; the closure hides the integer type from the lint's local
        // inference.
        if self.active.contains_key(&id) || self.queued.iter().any(|(q, _)| *q == id) {
            return Err(AdmissionError::DuplicateSession { id });
        }
        if self.active.len() < self.cfg.max_active {
            self.activate(id, weight);
            return Ok(Admission::Active);
        }
        if self.queued.len() < self.cfg.queue_capacity {
            self.queued.push_back((id, weight));
            return Ok(Admission::Queued);
        }
        Err(AdmissionError::Saturated {
            active: self.active.len(),
            queued: self.queued.len(),
            max_active: self.cfg.max_active,
            queue_capacity: self.cfg.queue_capacity,
        })
    }

    fn activate(&mut self, id: u64, weight: u64) {
        self.active.insert(
            id,
            Entry {
                weight,
                urgency: Urgency::Normal,
                pass: self.vtime,
            },
        );
    }

    /// The next session to run: smallest `(pass, id)` among the active
    /// set. Pure (no state change); `charge` records the decision.
    pub fn pick(&self) -> Option<u64> {
        self.active
            .iter()
            .min_by_key(|(id, e)| (e.pass, **id))
            .map(|(id, _)| *id)
    }

    /// Charge one executed quantum to session `id`: global virtual time
    /// catches up to its pass, then its pass advances by its stride.
    pub fn charge(&mut self, id: u64) {
        if let Some(e) = self.active.get_mut(&id) {
            self.vtime = self.vtime.max(e.pass);
            e.pass += e.stride();
        }
    }

    /// Update a session's contract urgency (affects its stride from the
    /// next charge on).
    pub fn set_urgency(&mut self, id: u64, urgency: Urgency) {
        if let Some(e) = self.active.get_mut(&id) {
            e.urgency = urgency;
        }
    }

    /// Remove a session (finished or cancelled), wherever it is. Returns
    /// `false` if the id is unknown.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.active.remove(&id).is_some() {
            return true;
        }
        // golint: allow(float-total-order) -- u64 session ids, as in `admit`.
        if let Some(at) = self.queued.iter().position(|(q, _)| *q == id) {
            self.queued.remove(at);
            return true;
        }
        false
    }

    /// Promote the longest-waiting queued session into a free active slot.
    /// Call after `remove`; returns the activated id, if any.
    pub fn activate_next(&mut self) -> Option<u64> {
        if self.active.len() >= self.cfg.max_active {
            return None;
        }
        let (id, weight) = self.queued.pop_front()?;
        self.activate(id, weight);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_active: usize, queue: usize) -> SchedPolicy {
        SchedPolicy::new(PolicyConfig {
            max_active,
            queue_capacity: queue,
        })
    }

    #[test]
    fn admission_fills_active_then_queue_then_rejects() {
        let mut p = policy(2, 1);
        assert_eq!(p.admit(0, 1), Ok(Admission::Active));
        assert_eq!(p.admit(1, 1), Ok(Admission::Active));
        assert_eq!(p.admit(2, 1), Ok(Admission::Queued));
        assert_eq!(
            p.admit(3, 1),
            Err(AdmissionError::Saturated {
                active: 2,
                queued: 1,
                max_active: 2,
                queue_capacity: 1,
            })
        );
        assert_eq!(
            p.admit(1, 1),
            Err(AdmissionError::DuplicateSession { id: 1 })
        );
        // A finishing session frees a slot for the queued one.
        assert!(p.remove(0));
        assert_eq!(p.activate_next(), Some(2));
        assert_eq!(p.num_active(), 2);
        assert_eq!(p.num_queued(), 0);
    }

    #[test]
    fn equal_weights_round_robin() {
        let mut p = policy(3, 0);
        for id in 0..3 {
            p.admit(id, 1).expect("admits");
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            let id = p.pick().expect("picks");
            order.push(id);
            p.charge(id);
        }
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weights_give_proportional_share() {
        let mut p = policy(2, 0);
        p.admit(0, 3).expect("admits");
        p.admit(1, 1).expect("admits");
        let mut counts = [0u32; 2];
        for _ in 0..400 {
            let id = p.pick().expect("picks");
            counts[usize::try_from(id).expect("small id")] += 1;
            p.charge(id);
        }
        // 3:1 share within rounding slack.
        assert!(counts[0] >= 295 && counts[0] <= 305, "{counts:?}");
    }

    #[test]
    fn urgency_doubles_share() {
        let mut p = policy(2, 0);
        p.admit(0, 1).expect("admits");
        p.admit(1, 1).expect("admits");
        p.set_urgency(0, Urgency::Urgent);
        let mut counts = [0u32; 2];
        for _ in 0..300 {
            let id = p.pick().expect("picks");
            counts[usize::try_from(id).expect("small id")] += 1;
            p.charge(id);
        }
        assert!(counts[0] >= 195 && counts[0] <= 205, "{counts:?}");
    }

    #[test]
    fn late_arrival_starts_at_virtual_time() {
        let mut p = policy(2, 0);
        p.admit(0, 1).expect("admits");
        for _ in 0..100 {
            let id = p.pick().expect("picks");
            p.charge(id);
        }
        p.admit(1, 1).expect("admits");
        // The newcomer must not monopolize: within a few rounds both run.
        let mut counts = [0u32; 2];
        for _ in 0..10 {
            let id = p.pick().expect("picks");
            counts[usize::try_from(id).expect("small id")] += 1;
            p.charge(id);
        }
        assert!(counts[0] >= 4, "{counts:?}");
        assert!(counts[1] >= 4, "{counts:?}");
    }
}
