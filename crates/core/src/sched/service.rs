//! The threaded multi-tenant query service: one scheduler thread
//! time-slicing every admitted session over one shared [`WorkerPool`].
//!
//! Clients call [`QueryService::submit`] from any thread; admission is
//! answered synchronously (typed [`SubmitError`] on refusal, so the HTTP
//! layer can emit a 429 with the exact saturation numbers). Each admitted
//! session gets its own report channel — the [`QueryHandle`] iterates it
//! exactly like a solo [`crate::session::OnlineExecution`], and because the
//! scheduler runs one batch round at a time on the shared pool, the stream
//! it sees is bit-identical to that solo run (`tests/sched_equivalence.rs`).
//!
//! Observability: every session's executor metrics carry a
//! `session="s<id>"` label (see `OnlineConfig::session_label`), and the
//! service itself maintains `service.submitted` / `service.rejected` /
//! `service.completed` / `service.canceled` counters plus
//! `service.active` / `service.queued` gauges — all behind
//! [`gola_obs::enabled`], preserving the obs-inert contract.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use gola_common::Result;
use gola_storage::Catalog;

use crate::config::OnlineConfig;
use crate::pool::WorkerPool;
use crate::report::BatchReport;
use crate::sched::task::QueryTask;
use crate::sched::{AdmissionError, Admitted, PolicyConfig, Scheduler, SessionId};
use crate::session::OnlineSession;

/// Capacity and sizing of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Sessions time-slicing concurrently; more wait in the queue.
    pub max_active: usize,
    /// Admitted-but-waiting sessions beyond the active set.
    pub queue_capacity: usize,
    /// Threads of the one shared worker pool (1 = sequential batches).
    pub threads: usize,
    /// Per-session execution defaults; `session_label`, `threads` and the
    /// worker pool itself are overridden per session by the service.
    pub base: OnlineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_active: 4,
            queue_capacity: 16,
            threads: 1,
            base: OnlineConfig::default(),
        }
    }
}

/// Why a submission failed.
#[derive(Debug)]
pub enum SubmitError {
    /// The SQL did not compile / plan; carries the engine diagnostic.
    Compile(gola_common::Error),
    /// Admission control refused the session (HTTP: 429).
    Admission(AdmissionError),
    /// The service is shutting down.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Compile(e) => write!(f, "{e}"),
            SubmitError::Admission(e) => write!(f, "{e}"),
            SubmitError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

enum Command {
    Submit {
        id: SessionId,
        task: Box<QueryTask>,
        weight: u64,
        reports: Sender<Result<BatchReport>>,
        reply: SyncSender<std::result::Result<Admitted, AdmissionError>>,
    },
    Cancel(SessionId),
    Shutdown,
}

/// A client's view of one admitted session: iterate it for the report
/// stream (ends after the final report; an execution error is the last
/// item). Dropping the handle lazily cancels the session — the scheduler
/// notices the closed channel at its next report and reclaims the slot.
pub struct QueryHandle {
    id: SessionId,
    reports: Receiver<Result<BatchReport>>,
    cmds: Sender<Command>,
}

impl QueryHandle {
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Block for the next report; `None` once the stream has ended.
    pub fn recv(&self) -> Option<Result<BatchReport>> {
        self.reports.recv().ok()
    }

    /// Non-blocking pull of one ready report (job-poll surface).
    pub fn try_recv(
        &self,
    ) -> std::result::Result<Result<BatchReport>, std::sync::mpsc::TryRecvError> {
        self.reports.try_recv()
    }

    /// Cancel the session now (idempotent; finishing first is fine).
    pub fn cancel(&self) {
        let _ = self.cmds.send(Command::Cancel(self.id));
    }
}

impl Iterator for QueryHandle {
    type Item = Result<BatchReport>;

    fn next(&mut self) -> Option<Self::Item> {
        self.recv()
    }
}

struct ServiceMetrics {
    submitted: gola_obs::Counter,
    rejected: gola_obs::Counter,
    completed: gola_obs::Counter,
    canceled: gola_obs::Counter,
    active: gola_obs::Gauge,
    queued: gola_obs::Gauge,
}

impl ServiceMetrics {
    fn resolve() -> ServiceMetrics {
        ServiceMetrics {
            submitted: gola_obs::counter("service.submitted"),
            rejected: gola_obs::counter("service.rejected"),
            completed: gola_obs::counter("service.completed"),
            canceled: gola_obs::counter("service.canceled"),
            active: gola_obs::gauge("service.active"),
            queued: gola_obs::gauge("service.queued"),
        }
    }
}

/// The multi-tenant service. Owns the scheduler thread and the shared
/// pool; dropping it shuts the scheduler down (in-flight sessions see
/// their streams end early).
pub struct QueryService {
    session: Arc<OnlineSession>,
    pool: Arc<WorkerPool>,
    cmds: Sender<Command>,
    next_id: AtomicU64,
    worker: Option<JoinHandle<()>>,
}

impl QueryService {
    pub fn new(catalog: Catalog, cfg: ServiceConfig) -> QueryService {
        let pool = Arc::new(WorkerPool::new(cfg.threads.max(1)));
        let policy = PolicyConfig {
            max_active: cfg.max_active,
            queue_capacity: cfg.queue_capacity,
        };
        let session = Arc::new(OnlineSession::new(catalog, cfg.base));
        let (cmds, rx) = std::sync::mpsc::channel();
        let worker = std::thread::Builder::new()
            .name("gola-sched".into())
            .spawn(move || scheduler_loop(policy, rx))
            .ok();
        QueryService {
            session,
            pool,
            cmds,
            next_id: AtomicU64::new(0),
            worker,
        }
    }

    /// The shared pool size (for diagnostics / the server's health page).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Compile `sql` and submit it as a weight-1 session.
    pub fn submit(&self, sql: &str) -> std::result::Result<QueryHandle, SubmitError> {
        self.submit_weighted(sql, 1)
    }

    /// Compile `sql` on the calling thread (so diagnostics return before
    /// admission), then hand the execution to the scheduler.
    pub fn submit_weighted(
        &self,
        sql: &str,
        weight: u64,
    ) -> std::result::Result<QueryHandle, SubmitError> {
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // Per-session config: labeled metrics, threads pinned to the
        // shared pool's size (informational only — the pool is shared).
        let config = self
            .session
            .config()
            .clone()
            .with_session_label(id.to_string())
            .with_threads(self.pool.threads());
        let tenant = OnlineSession::new(self.session.catalog().clone(), config);
        let prepared = tenant.prepare(sql).map_err(SubmitError::Compile)?;
        let exec = tenant
            .execute_prepared_with_pool(&prepared, Arc::clone(&self.pool))
            .map_err(SubmitError::Compile)?;

        let (report_tx, report_rx) = std::sync::mpsc::channel();
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        self.cmds
            .send(Command::Submit {
                id,
                task: Box::new(QueryTask::new(exec)),
                weight,
                reports: report_tx,
                reply: reply_tx,
            })
            .map_err(|_| SubmitError::Shutdown)?;
        match reply_rx.recv() {
            Ok(Ok(_admitted)) => Ok(QueryHandle {
                id,
                reports: report_rx,
                cmds: self.cmds.clone(),
            }),
            Ok(Err(e)) => Err(SubmitError::Admission(e)),
            Err(_) => Err(SubmitError::Shutdown),
        }
    }

    /// Cancel a session by id (idempotent).
    pub fn cancel(&self, id: SessionId) {
        let _ = self.cmds.send(Command::Cancel(id));
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        let _ = self.cmds.send(Command::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The scheduler thread: drain commands (blocking while idle), then run
/// one quantum, forever. Exactly one session's batch round executes at any
/// moment — that serialization is what carries bit-identity.
fn scheduler_loop(policy: PolicyConfig, cmds: Receiver<Command>) {
    let mut sched: Scheduler<QueryTask> = Scheduler::new(policy);
    let mut streams: BTreeMap<SessionId, Sender<Result<BatchReport>>> = BTreeMap::new();
    let metrics = gola_obs::enabled().then(ServiceMetrics::resolve);

    loop {
        // Idle: block for the next command. Busy: drain without blocking.
        loop {
            let cmd = if sched.is_idle() {
                match cmds.recv() {
                    Ok(c) => c,
                    Err(_) => return,
                }
            } else {
                match cmds.try_recv() {
                    Ok(c) => c,
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            };
            match cmd {
                Command::Submit {
                    id,
                    task,
                    weight,
                    reports,
                    reply,
                } => {
                    let outcome = sched.submit_with_id(id, *task, weight);
                    if outcome.is_ok() {
                        streams.insert(id, reports);
                    }
                    if let Some(m) = &metrics {
                        match &outcome {
                            Ok(_) => m.submitted.inc(),
                            Err(_) => m.rejected.inc(),
                        }
                    }
                    let _ = reply.send(outcome);
                }
                Command::Cancel(id) => {
                    if sched.cancel(id) {
                        streams.remove(&id);
                        if let Some(m) = &metrics {
                            m.canceled.inc();
                        }
                    }
                }
                Command::Shutdown => return,
            }
        }

        if let Some(round) = sched.round() {
            let mut gone = round.finished;
            if let Some(output) = round.output {
                let delivered = streams
                    .get(&round.id)
                    .is_some_and(|tx| tx.send(output).is_ok());
                if !delivered && !round.finished {
                    // Client dropped its handle: reclaim the slot.
                    sched.cancel(round.id);
                    gone = true;
                    if let Some(m) = &metrics {
                        m.canceled.inc();
                    }
                }
            }
            if gone {
                streams.remove(&round.id);
                if round.finished {
                    if let Some(m) = &metrics {
                        m.completed.inc();
                    }
                }
            }
        }

        if let Some(m) = &metrics {
            m.active.set(sched.num_active() as f64);
            m.queued.set(sched.num_queued() as f64);
        }
    }
}
