//! Per-batch progress reports — the OLA user interface.

use std::fmt;
use std::time::Duration;

use gola_bootstrap::{ConfidenceInterval, Estimate};
use gola_storage::Table;

/// The error model of one output cell.
#[derive(Debug, Clone)]
pub struct CellEstimate {
    /// Row index in [`BatchReport::table`].
    pub row: usize,
    /// Column index.
    pub col: usize,
    pub estimate: Estimate,
}

/// Why a contracted query stopped at this report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractStop {
    /// Every estimated cell's CI half-width met the relative-error target.
    ErrorTargetMet,
    /// The wall-clock deadline would be crossed by another batch.
    /// Nondeterministic by nature: the stopping batch index depends on
    /// observed throughput.
    DeadlineReached,
    /// All mini-batches were processed; the answer is exact.
    Exhausted,
}

/// Progress of an `ERROR`/`WITHIN` contract, attached to every report of a
/// contracted run.
#[derive(Debug, Clone)]
pub struct ContractProgress {
    /// The contract being honored.
    pub contract: gola_plan::QueryContract,
    /// Worst (largest) achieved relative CI half-width across the
    /// estimated cells at this report, `half_width / |value|`. `None`
    /// while no cell has a usable interval (or for pure deadline runs
    /// before the first interval exists).
    pub achieved_rel_error: Option<f64>,
    /// Set on the report the run stops at; `None` while running.
    pub stop: Option<ContractStop>,
}

/// Wall-clock breakdown of one mini-batch, by executor stage. Stages are
/// summed across all lineage blocks of the batch; `recover` covers the full
/// failure-triggered replay (whose internal join/classify/fold work is *not*
/// double-counted into the other buckets).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchTiming {
    /// Dimension joins + lineage projection of new tuples.
    pub join: Duration,
    /// Uncertain/deterministic classification of candidates.
    pub classify: Duration,
    /// Folding deterministic-true tuples into replicated aggregate states.
    pub fold: Duration,
    /// Publishing block outputs: effective states, bootstrap CIs,
    /// envelope checks.
    pub publish: Duration,
    /// Failure-triggered recomputation (replay of affected blocks).
    pub recover: Duration,
    /// Tuples of the streamed table ingested this batch.
    pub batch_rows: usize,
}

impl BatchTiming {
    /// Streamed-tuple throughput of this batch, from the stage-bucket sum.
    pub fn tuples_per_sec(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total > 0.0 {
            self.batch_rows as f64 / total
        } else {
            0.0
        }
    }

    /// Sum of all stage buckets.
    pub fn total(&self) -> Duration {
        self.join + self.classify + self.fold + self.publish + self.recover
    }

    /// Accumulate another batch's buckets (used for run-level summaries).
    pub fn accumulate(&mut self, other: &BatchTiming) {
        self.join += other.join;
        self.classify += other.classify;
        self.fold += other.fold;
        self.publish += other.publish;
        self.recover += other.recover;
        self.batch_rows += other.batch_rows;
    }
}

/// One refinement step: the approximate answer after a mini-batch, with its
/// error model and execution telemetry.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// 0-based index of the batch that was just processed.
    pub batch_index: usize,
    /// Total number of mini-batches `k`.
    pub num_batches: usize,
    /// Tuples of the streamed table processed so far (`|Dᵢ|`).
    pub rows_seen: usize,
    /// Total tuples of the streamed table (`|D|`).
    pub total_rows: usize,
    /// Multiplicity `m = |D| / |Dᵢ|` used for this answer.
    pub multiplicity: f64,
    /// The current approximate answer, shaped exactly like the final result.
    pub table: Table,
    /// Bootstrap estimates for every numeric output cell.
    pub estimates: Vec<CellEstimate>,
    /// Per output row: `true` if the row's membership in the result can no
    /// longer change — its group has deterministic support (it cannot
    /// vanish when uncertain tuples resolve) and any HAVING classified
    /// deterministically. The executor is held to this flag: breaking a
    /// previously reported claim counts as a recomputation, so a certain
    /// row never retracts between reports with equal
    /// [`BatchReport::recomputations`].
    pub row_certain: Vec<bool>,
    /// Confidence level of [`BatchReport::ci`]/primary interval.
    pub ci_level: f64,
    /// Total size of all uncertain sets after this batch (`Σ |Uᵢ|`).
    pub uncertain_tuples: usize,
    /// Cumulative failure-triggered recomputations so far.
    pub recomputations: usize,
    /// Wall-clock time of this batch (including any recomputation).
    pub batch_time: Duration,
    /// Wall-clock time since the query started.
    pub cumulative_time: Duration,
    /// Per-stage wall-clock breakdown of this batch.
    pub timing: BatchTiming,
    /// Contract progress; `None` for uncontracted runs.
    pub contract: Option<ContractProgress>,
}

impl BatchReport {
    /// The headline estimate: the first numeric cell (row 0), if any.
    pub fn primary(&self) -> Option<&Estimate> {
        self.estimates
            .iter()
            .find(|c| c.row == 0)
            .map(|c| &c.estimate)
    }

    /// Relative standard deviation of the headline estimate — the y-axis of
    /// the paper's Figure 3(a).
    pub fn primary_rel_stddev(&self) -> Option<f64> {
        self.primary().and_then(Estimate::rel_stddev)
    }

    /// Percentile-bootstrap CI of the headline estimate.
    pub fn ci(&self) -> Option<ConfidenceInterval> {
        self.primary().and_then(|e| e.ci_percentile(self.ci_level))
    }

    /// Estimate for a specific output cell, if it has one.
    pub fn estimate_at(&self, row: usize, col: usize) -> Option<&Estimate> {
        self.estimates
            .iter()
            .find(|c| c.row == row && c.col == col)
            .map(|c| &c.estimate)
    }

    /// `true` after the final batch (the answer is exact).
    pub fn is_final(&self) -> bool {
        self.batch_index + 1 == self.num_batches
    }

    /// Fraction of data processed so far.
    pub fn progress(&self) -> f64 {
        self.rows_seen as f64 / self.total_rows as f64
    }

    /// Worst achieved relative CI half-width across all estimated cells at
    /// `level`: `max_cells half_width / |value|`. `None` if no cell has a
    /// percentile interval, or any estimated cell's value is (near) zero
    /// while its interval is not degenerate (relative error undefined).
    pub fn achieved_rel_error(&self, level: f64) -> Option<f64> {
        let mut worst: Option<f64> = None;
        for cell in &self.estimates {
            let ci = cell.estimate.ci_percentile(level)?;
            let half = ci.half_width();
            let scale = cell.estimate.value.abs();
            let rel = if half == 0.0 {
                0.0
            } else if scale > 0.0 {
                half / scale
            } else {
                return None;
            };
            worst = Some(worst.map_or(rel, |w: f64| w.max(rel)));
        }
        worst
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[batch {}/{} | {:5.1}% | {:?}] ",
            self.batch_index + 1,
            self.num_batches,
            self.progress() * 100.0,
            self.cumulative_time,
        )?;
        match self.primary() {
            Some(e) => {
                write!(f, "{e}")?;
                if let Some(rsd) = e.rel_stddev() {
                    write!(f, " (rel σ {:.3}%)", rsd * 100.0)?;
                }
            }
            None => write!(f, "{} row(s)", self.table.num_rows())?,
        }
        if self.uncertain_tuples > 0 {
            write!(f, " |U|={}", self.uncertain_tuples)?;
        }
        if self.recomputations > 0 {
            write!(f, " recomputes={}", self.recomputations)?;
        }
        if let Some(c) = &self.contract {
            if let Some(rel) = c.achieved_rel_error {
                write!(f, " rel err {:.3}%", rel * 100.0)?;
            }
            match c.stop {
                Some(ContractStop::ErrorTargetMet) => write!(f, " [error target met]")?,
                Some(ContractStop::DeadlineReached) => write!(f, " [deadline reached]")?,
                Some(ContractStop::Exhausted) => write!(f, " [exhausted: exact]")?,
                None => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_common::{row, DataType, Schema};
    use std::sync::Arc;

    fn sample() -> BatchReport {
        let schema = Arc::new(Schema::from_pairs(&[("avg_play", DataType::Float)]));
        let table = Table::new_unchecked(schema, vec![row![42.0f64]]);
        BatchReport {
            batch_index: 4,
            num_batches: 10,
            rows_seen: 500,
            total_rows: 1000,
            multiplicity: 2.0,
            table,
            estimates: vec![CellEstimate {
                row: 0,
                col: 0,
                estimate: Estimate::new(42.0, vec![40.0, 41.0, 42.0, 43.0, 44.0]),
            }],
            row_certain: vec![true],
            ci_level: 0.95,
            uncertain_tuples: 7,
            recomputations: 1,
            batch_time: Duration::from_millis(12),
            cumulative_time: Duration::from_millis(60),
            timing: BatchTiming::default(),
            contract: None,
        }
    }

    #[test]
    fn primary_and_ci() {
        let r = sample();
        assert_eq!(r.primary().unwrap().value, 42.0);
        assert!(r.primary_rel_stddev().unwrap() > 0.0);
        let ci = r.ci().unwrap();
        assert!(ci.contains(42.0));
        assert!(r.estimate_at(0, 0).is_some());
        assert!(r.estimate_at(0, 1).is_none());
    }

    #[test]
    fn timing_totals_and_throughput() {
        let mut t = BatchTiming {
            join: Duration::from_millis(10),
            classify: Duration::from_millis(20),
            fold: Duration::from_millis(30),
            publish: Duration::from_millis(25),
            recover: Duration::from_millis(15),
            batch_rows: 1000,
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.tuples_per_sec() - 10_000.0).abs() < 1e-6);
        t.accumulate(&t.clone());
        assert_eq!(t.total(), Duration::from_millis(200));
        assert_eq!(t.batch_rows, 2000);
        assert_eq!(BatchTiming::default().tuples_per_sec(), 0.0);
    }

    #[test]
    fn progress_and_final() {
        let r = sample();
        assert_eq!(r.progress(), 0.5);
        assert!(!r.is_final());
    }

    #[test]
    fn achieved_rel_error_is_worst_cell() {
        let mut r = sample();
        assert!(r.achieved_rel_error(0.95).unwrap() > 0.0);
        // A second, much looser cell dominates.
        r.estimates.push(CellEstimate {
            row: 0,
            col: 1,
            estimate: Estimate::new(10.0, vec![1.0, 5.0, 10.0, 15.0, 19.0]),
        });
        let loose = r.achieved_rel_error(0.95).unwrap();
        assert!(loose > 0.3, "{loose}");
        // A zero-valued cell with spread makes relative error undefined.
        r.estimates.push(CellEstimate {
            row: 0,
            col: 2,
            estimate: Estimate::new(0.0, vec![-1.0, 0.0, 1.0]),
        });
        assert!(r.achieved_rel_error(0.95).is_none());
    }

    #[test]
    fn display_mentions_contract_stop() {
        let mut r = sample();
        r.contract = Some(ContractProgress {
            contract: gola_plan::QueryContract::Error {
                target: 0.05,
                confidence: 0.95,
            },
            achieved_rel_error: Some(0.012),
            stop: Some(ContractStop::ErrorTargetMet),
        });
        let s = r.to_string();
        assert!(s.contains("rel err 1.200%"), "{s}");
        assert!(s.contains("[error target met]"), "{s}");
    }

    #[test]
    fn display_mentions_uncertainty_and_recomputes() {
        let s = sample().to_string();
        assert!(s.contains("batch 5/10"), "{s}");
        assert!(s.contains("|U|=7"), "{s}");
        assert!(s.contains("recomputes=1"), "{s}");
        assert!(s.contains("rel σ"), "{s}");
    }
}
