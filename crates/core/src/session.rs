//! The user-facing online session API.

use std::sync::Arc;

use gola_common::{Error, Result};
use gola_plan::{MetaPlan, QueryContract, QueryGraph};
use gola_storage::{
    Catalog, GrowingPartitioner, MiniBatchPartitioner, Partitioner, StratifiedPartitioner, Table,
};

use crate::config::OnlineConfig;
use crate::contract::ContractDriver;
use crate::executor::OnlineExecutor;
use crate::report::BatchReport;

/// A catalog plus an online configuration; the entry point for running SQL
/// with progressively-refined answers.
pub struct OnlineSession {
    catalog: Catalog,
    config: OnlineConfig,
}

/// A compiled query: the resolved graph, its lineage-block meta plan, and
/// the chosen stream table.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub graph: QueryGraph,
    pub meta: MetaPlan,
    pub stream_table: String,
}

impl OnlineSession {
    pub fn new(catalog: Catalog, config: OnlineConfig) -> OnlineSession {
        OnlineSession { catalog, config }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Compile `sql` to a meta query plan. The streamed table is the one
    /// from [`OnlineConfig::stream_table`], or the largest scanned table —
    /// the paper's default of streaming the fact table while reading small
    /// dimension tables in entirety (§2).
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let graph = gola_sql::compile(sql, &self.catalog)?;
        let stream_table = match &self.config.stream_table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                if !self.catalog.contains(&t) {
                    return Err(Error::config(format!("stream table '{t}' not in catalog")));
                }
                t
            }
            None => {
                let mut tables = Vec::new();
                graph.root.scanned_tables(&mut tables);
                for sq in &graph.subqueries {
                    sq.plan.scanned_tables(&mut tables);
                }
                let mut best: Option<(String, usize)> = None;
                for t in tables {
                    let rows = self.catalog.get(&t)?.num_rows();
                    if best.as_ref().is_none_or(|(_, n)| rows > *n) {
                        best = Some((t, rows));
                    }
                }
                best.ok_or_else(|| Error::plan("query scans no tables"))?.0
            }
        };
        let meta = MetaPlan::compile(&graph, &stream_table)?;
        Ok(PreparedQuery {
            graph,
            meta,
            stream_table,
        })
    }

    /// Compile and start online execution; iterate the result for one
    /// [`BatchReport`] per mini-batch.
    pub fn execute_online(&self, sql: &str) -> Result<OnlineExecution> {
        let prepared = self.prepare(sql)?;
        self.execute_prepared(&prepared)
    }

    /// Start online execution of an already-prepared query.
    pub fn execute_prepared(&self, prepared: &PreparedQuery) -> Result<OnlineExecution> {
        self.execute_prepared_inner(prepared, None)
    }

    /// Start online execution on a shared worker pool (the multi-tenant
    /// scheduler's entry point: every admitted session time-slices one
    /// pool instead of spawning its own workers). Results are unaffected —
    /// the threads=1/N bit-identity contract means pool size never reaches
    /// a report.
    pub fn execute_prepared_with_pool(
        &self,
        prepared: &PreparedQuery,
        pool: Arc<crate::WorkerPool>,
    ) -> Result<OnlineExecution> {
        self.execute_prepared_inner(prepared, Some(pool))
    }

    fn execute_prepared_inner(
        &self,
        prepared: &PreparedQuery,
        pool: Option<Arc<crate::WorkerPool>>,
    ) -> Result<OnlineExecution> {
        // A stream-backed scan table makes this a *growing* query: the
        // base schedule covers the sealed snapshot at start, and segments
        // sealed afterwards surface as extra mini-batches (moving N).
        let live = self.catalog.stream(&prepared.stream_table);
        let table = self.catalog.get(&prepared.stream_table)?;
        // Never ask for more batches than rows.
        let k = self.config.num_batches.min(table.num_rows()).max(1);
        let partitioner = Arc::new(match (&self.config.stratify_column, live) {
            (Some(_), Some(_)) => {
                // Stratified allocation needs the whole population up
                // front; a growing stream contradicts that by definition.
                return Err(Error::config(
                    "stratified partitioning is not supported over a growing stream",
                ));
            }
            (None, Some(stream)) => Partitioner::Growing(GrowingPartitioner::new(
                Arc::clone(stream),
                k,
                self.config.partition_seed,
            )?),
            (Some(col), None) => Partitioner::Stratified(StratifiedPartitioner::new(
                table,
                col,
                k,
                self.config.partition_seed,
            )?),
            (None, None) => Partitioner::Uniform(MiniBatchPartitioner::new(
                table,
                k,
                self.config.partition_seed,
            )?),
        });
        let executor = match pool {
            Some(pool) => OnlineExecutor::with_pool(
                &self.catalog,
                prepared.meta.clone(),
                partitioner,
                self.config.clone(),
                pool,
            )?,
            None => OnlineExecutor::new(
                &self.catalog,
                prepared.meta.clone(),
                partitioner,
                self.config.clone(),
            )?,
        };
        // A SQL-level contract wins over the config-level default.
        let contract = prepared.meta.contract.or(self.config.contract);
        Ok(OnlineExecution {
            executor,
            driver: contract.map(|c| ContractDriver::new(c, self.config.stopping_rule_absolute)),
        })
    }

    /// Execute `sql` exactly with the batch engine (the baseline / ground
    /// truth).
    pub fn execute_exact(&self, sql: &str) -> Result<Table> {
        let graph = gola_sql::compile(sql, &self.catalog)?;
        gola_engine::BatchEngine::new(&self.catalog).execute(&graph)
    }
}

/// A running online query. Each `next()` processes one mini-batch (or, for
/// deadline-contracted runs, a coalesced round of them) and yields the
/// refined answer; drop it at any time to stop the query. When the query
/// carries an `ERROR`/`WITHIN` contract the iterator ends at the
/// contract's stopping report (flagged in [`BatchReport::contract`])
/// instead of running every batch.
pub struct OnlineExecution {
    executor: OnlineExecutor,
    driver: Option<ContractDriver>,
}

impl OnlineExecution {
    /// The underlying executor (telemetry: uncertain-set sizes, recompute
    /// counts, progress).
    pub fn executor(&self) -> &OnlineExecutor {
        &self.executor
    }

    /// The contract this execution honors, if any.
    pub fn contract(&self) -> Option<QueryContract> {
        self.driver.as_ref().map(ContractDriver::contract)
    }

    /// `true` once the execution will yield no further reports — the
    /// contract stopped it, or every mini-batch has been processed. The
    /// scheduler polls this between quanta.
    pub fn is_complete(&self) -> bool {
        self.driver.as_ref().is_some_and(ContractDriver::is_stopped) || self.executor.is_finished()
    }

    /// One published report: a single executor step, or — under a deadline
    /// contract — a coalesced round of steps sized to the remaining budget.
    fn step_round(&mut self) -> Result<BatchReport> {
        let Some(driver) = &mut self.driver else {
            return self.executor.step();
        };
        driver.start_clock();
        let remaining = self.executor.num_batches() - self.executor.batches_done();
        let round = driver.batches_this_round(remaining);
        let mut report = self.executor.step()?;
        driver.note_batch(report.batch_time.as_secs_f64());
        for _ in 1..round {
            if self.executor.is_finished() {
                break;
            }
            report = self.executor.step()?;
            driver.note_batch(report.batch_time.as_secs_f64());
        }
        driver.observe(&mut report, self.executor.is_finished());
        Ok(report)
    }

    /// Run until the iterator ends — the final (exact) batch, or the
    /// contract's stopping report. Returns the last report.
    pub fn run_to_completion(mut self) -> Result<BatchReport> {
        let mut last = None;
        for report in &mut self {
            last = Some(report?);
        }
        last.ok_or_else(|| Error::exec("query had no batches"))
    }

    /// Run until the primary estimate's relative standard deviation drops
    /// below `target` (or data runs out). Returns the stopping report.
    pub fn run_until_rel_stddev(mut self, target: f64) -> Result<BatchReport> {
        let mut last: Option<BatchReport> = None;
        for report in &mut self {
            let report = report?;
            let done = report.primary_rel_stddev().is_some_and(|rsd| rsd <= target);
            last = Some(report);
            if done {
                break;
            }
        }
        last.ok_or_else(|| Error::exec("query had no batches"))
    }
}

impl Iterator for OnlineExecution {
    type Item = Result<BatchReport>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.is_complete() {
            None
        } else {
            Some(self.step_round())
        }
    }
}
