//! The user-facing online session API.

use std::sync::Arc;

use gola_common::{Error, Result};
use gola_plan::{MetaPlan, QueryGraph};
use gola_storage::{Catalog, MiniBatchPartitioner, Table};

use crate::config::OnlineConfig;
use crate::executor::OnlineExecutor;
use crate::report::BatchReport;

/// A catalog plus an online configuration; the entry point for running SQL
/// with progressively-refined answers.
pub struct OnlineSession {
    catalog: Catalog,
    config: OnlineConfig,
}

/// A compiled query: the resolved graph, its lineage-block meta plan, and
/// the chosen stream table.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub graph: QueryGraph,
    pub meta: MetaPlan,
    pub stream_table: String,
}

impl OnlineSession {
    pub fn new(catalog: Catalog, config: OnlineConfig) -> OnlineSession {
        OnlineSession { catalog, config }
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Compile `sql` to a meta query plan. The streamed table is the one
    /// from [`OnlineConfig::stream_table`], or the largest scanned table —
    /// the paper's default of streaming the fact table while reading small
    /// dimension tables in entirety (§2).
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let graph = gola_sql::compile(sql, &self.catalog)?;
        let stream_table = match &self.config.stream_table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                if !self.catalog.contains(&t) {
                    return Err(Error::config(format!("stream table '{t}' not in catalog")));
                }
                t
            }
            None => {
                let mut tables = Vec::new();
                graph.root.scanned_tables(&mut tables);
                for sq in &graph.subqueries {
                    sq.plan.scanned_tables(&mut tables);
                }
                let mut best: Option<(String, usize)> = None;
                for t in tables {
                    let rows = self.catalog.get(&t)?.num_rows();
                    if best.as_ref().is_none_or(|(_, n)| rows > *n) {
                        best = Some((t, rows));
                    }
                }
                best.ok_or_else(|| Error::plan("query scans no tables"))?.0
            }
        };
        let meta = MetaPlan::compile(&graph, &stream_table)?;
        Ok(PreparedQuery {
            graph,
            meta,
            stream_table,
        })
    }

    /// Compile and start online execution; iterate the result for one
    /// [`BatchReport`] per mini-batch.
    pub fn execute_online(&self, sql: &str) -> Result<OnlineExecution> {
        let prepared = self.prepare(sql)?;
        self.execute_prepared(&prepared)
    }

    /// Start online execution of an already-prepared query.
    pub fn execute_prepared(&self, prepared: &PreparedQuery) -> Result<OnlineExecution> {
        let table = self.catalog.get(&prepared.stream_table)?;
        // Never ask for more batches than rows.
        let k = self.config.num_batches.min(table.num_rows()).max(1);
        let partitioner = Arc::new(MiniBatchPartitioner::new(
            table,
            k,
            self.config.partition_seed,
        )?);
        let executor = OnlineExecutor::new(
            &self.catalog,
            prepared.meta.clone(),
            partitioner,
            self.config.clone(),
        )?;
        Ok(OnlineExecution { executor })
    }

    /// Execute `sql` exactly with the batch engine (the baseline / ground
    /// truth).
    pub fn execute_exact(&self, sql: &str) -> Result<Table> {
        let graph = gola_sql::compile(sql, &self.catalog)?;
        gola_engine::BatchEngine::new(&self.catalog).execute(&graph)
    }
}

/// A running online query. Each `next()` processes one mini-batch and
/// yields the refined answer; drop it at any time to stop the query (the
/// OLA accuracy/time contract).
pub struct OnlineExecution {
    executor: OnlineExecutor,
}

impl OnlineExecution {
    /// The underlying executor (telemetry: uncertain-set sizes, recompute
    /// counts, progress).
    pub fn executor(&self) -> &OnlineExecutor {
        &self.executor
    }

    /// Run every remaining batch, returning the final (exact) report.
    pub fn run_to_completion(mut self) -> Result<BatchReport> {
        let mut last = None;
        while !self.executor.is_finished() {
            last = Some(self.executor.step()?);
        }
        last.ok_or_else(|| Error::exec("query had no batches"))
    }

    /// Run until the primary estimate's relative standard deviation drops
    /// below `target` (or data runs out). Returns the stopping report.
    pub fn run_until_rel_stddev(mut self, target: f64) -> Result<BatchReport> {
        let mut last: Option<BatchReport> = None;
        while !self.executor.is_finished() {
            let report = self.executor.step()?;
            let done = report.primary_rel_stddev().is_some_and(|rsd| rsd <= target);
            last = Some(report);
            if done {
                break;
            }
        }
        last.ok_or_else(|| Error::exec("query had no batches"))
    }
}

impl Iterator for OnlineExecution {
    type Item = Result<BatchReport>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.executor.is_finished() {
            None
        } else {
            Some(self.executor.step())
        }
    }
}
