//! The mini-batch online executor.
//!
//! Orchestrates, per mini-batch and in topological block order:
//!
//! 1. **Ingest** (`ingest_block`): join new fact tuples against broadcast
//!    dimensions, apply certain filters once, then classify each candidate
//!    tuple (new ++ previous uncertain set) against the producers' committed
//!    envelopes — fold, drop, or cache (paper §3.2).
//! 2. **Publish** (`publish_block`): refresh the block's externally visible
//!    values (point + per-trial + variation range), update committed
//!    envelopes, and detect **failures** (a relied-upon value escaping its
//!    envelope / a relied-upon membership flipping).
//! 3. **Recover**: on failure, reset every transitive consumer and replay
//!    all seen batches for just those blocks (the Query Controller's
//!    recomputation jobs, paper §4).
//! 4. **Report**: materialize the root block's current answer with
//!    bootstrap error bars ([`BatchReport`]).

use std::borrow::Cow;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use gola_bootstrap::{Estimate, VariationRange};
use gola_common::timing::Stopwatch;
use gola_common::{
    cmp_values, row_u32, Bitmap, ColumnData, Error, FxHashMap, FxHashSet, Result, Row, Value,
};
use gola_expr::eval::{eval, eval_predicate, eval_tri, ExactContext};
use gola_expr::vector::predicate_mask;
use gola_expr::{Expr, RangeVal, Tri};
use gola_plan::{BlockRole, MetaPlan};
use gola_storage::{Catalog, ColumnChunk, MiniBatch, Partitioner};

use crate::compiled::CompiledBlock;
use crate::config::OnlineConfig;
use crate::pool::WorkerPool;
use crate::report::{BatchReport, BatchTiming, CellEstimate};
use crate::runtime::{
    sorted_entries, sorted_into_entries, BlockRuntime, CtxMode, GroupCtx, Published,
    PublishedMember, PublishedScalar, TupleCtx, UncertainSet,
};

/// Fixed candidate-chunk size for the two-stage (classify → fold) ingest
/// pipeline. Chunk boundaries depend only on candidate order — never on the
/// thread count — so chunk-order merging yields bit-identical runtimes (and
/// therefore bit-identical reports) for `threads = 1` and `threads = N`.
const CHUNK: usize = 1024;

/// Group-entry chunk size for parallel publication.
const PUB_CHUNK: usize = 64;

/// Classify-stage output for one fixed-size candidate chunk: chunk-relative
/// indices of the deterministic-true tuples (the fold stage reads their
/// inputs straight off the candidate columns) and of the tuples that stay
/// uncertain.
#[derive(Default)]
struct ChunkClass {
    folds: Vec<u32>,
    /// Chunk-relative indices of tuples that stay uncertain.
    uncertain_idx: Vec<u32>,
}

/// Where a per-tuple expression reads from: a lineage column directly (the
/// common case — no row materialization, no expression-tree walk) or a
/// general expression evaluated over a lazily materialized row buffer.
enum ExprSrc<'a> {
    Col(usize),
    Expr(&'a Expr),
}

fn plan_src(e: &Expr) -> ExprSrc<'_> {
    match e {
        Expr::Column(i) => ExprSrc::Col(*i),
        other => ExprSrc::Expr(other),
    }
}

/// Evaluate one planned expression for tuple `i` of `chunk`, filling the
/// shared row buffer only if a general expression actually needs it.
fn src_value(
    chunk: &ColumnChunk,
    i: usize,
    src: &ExprSrc<'_>,
    rowbuf: &mut Vec<Value>,
    filled: &mut bool,
    pubs: &[Published],
    mode: CtxMode,
) -> Result<Value> {
    match src {
        ExprSrc::Col(c) => Ok(chunk.column(*c).value(i)),
        ExprSrc::Expr(e) => {
            if !*filled {
                chunk.row_values_into(i, rowbuf);
                *filled = true;
            }
            let ctx = TupleCtx {
                row: rowbuf,
                pubs,
                mode,
            };
            eval(e, &ctx)
        }
    }
}

/// Fold one tuple's aggregate arguments into `states` with the fused
/// weight × value kernels: plain numeric columns skip `Value`
/// materialization entirely; general expressions evaluate over the lazily
/// filled row buffer (shared with the caller's key evaluation via `filled`).
#[allow(clippy::too_many_arguments)]
fn fold_tuple_args(
    cand: &ColumnChunk,
    i: usize,
    arg_plans: &[ExprSrc<'_>],
    states: &mut gola_agg::ReplicatedStates,
    weights: &[u32],
    rowbuf: &mut Vec<Value>,
    filled: &mut bool,
    pubs: &[Published],
) -> Result<()> {
    for (j, p) in arg_plans.iter().enumerate() {
        match p {
            ExprSrc::Col(c) => {
                let col = cand.column(*c);
                match col.data() {
                    ColumnData::Float(xs) if col.is_valid(i) => {
                        states.fold_numeric(j, &Value::Float(xs[i]), xs[i], weights);
                    }
                    ColumnData::Int(xs) if col.is_valid(i) => {
                        states.fold_numeric(j, &Value::Int(xs[i]), xs[i] as f64, weights);
                    }
                    _ => {
                        let v = col.value(i);
                        states.fold_value(j, &v, weights);
                    }
                }
            }
            ExprSrc::Expr(e) => {
                if !*filled {
                    cand.row_values_into(i, rowbuf);
                    *filled = true;
                }
                let ctx = TupleCtx {
                    row: rowbuf,
                    pubs,
                    mode: CtxMode::Point,
                };
                let v = eval(e, &ctx)?;
                states.fold_value(j, &v, weights);
            }
        }
    }
    Ok(())
}

/// `x (op) y` for the scalar-comparison fast path.
#[inline(always)]
fn cmp_op(op: gola_expr::BinOp, x: f64, y: f64) -> bool {
    match op {
        gola_expr::BinOp::Lt => x < y,
        gola_expr::BinOp::LtEq => x <= y,
        gola_expr::BinOp::Gt => x > y,
        gola_expr::BinOp::GtEq => x >= y,
        // golint: allow(float-total-order) -- SQL `=`/`<>` on floats: NaN compares
        // false/true per IEEE, the defined per-row-deterministic query result;
        // no ordering is derived from it.
        gola_expr::BinOp::Eq => x == y,
        gola_expr::BinOp::NotEq => x != y,
        _ => false,
    }
}

/// Per-trial weight mask for the scalar-comparison fast path: `mask[b] =
/// weights[b]` when trial `b`'s RHS is non-null and `lx (op) rhs[b]`
/// holds, else `0`. The operator dispatch happens once per call so each
/// arm compiles to a tight, bounds-check-free sweep over the trial vector.
fn fill_cmp_mask(
    mask: &mut Vec<u32>,
    weights: &[u32],
    rhs: &[Option<f64>],
    op: gola_expr::BinOp,
    lx: f64,
) {
    #[inline(always)]
    fn sweep(
        mask: &mut Vec<u32>,
        weights: &[u32],
        rhs: &[Option<f64>],
        lx: f64,
        f: impl Fn(f64, f64) -> bool,
    ) {
        mask.clear();
        mask.extend(weights.iter().zip(rhs).map(|(&w, &rv)| match rv {
            Some(y) if f(lx, y) => w,
            _ => 0,
        }));
    }
    use gola_expr::BinOp;
    match op {
        BinOp::Lt => sweep(mask, weights, rhs, lx, |x, y| x < y),
        BinOp::LtEq => sweep(mask, weights, rhs, lx, |x, y| x <= y),
        BinOp::Gt => sweep(mask, weights, rhs, lx, |x, y| x > y),
        BinOp::GtEq => sweep(mask, weights, rhs, lx, |x, y| x >= y),
        BinOp::Eq => sweep(mask, weights, rhs, lx, |x, y| x == y),
        BinOp::NotEq => sweep(mask, weights, rhs, lx, |x, y| x != y),
        _ => sweep(mask, weights, rhs, lx, |_, _| false),
    }
}

/// One group's publication result (scalar or membership block).
enum PubEntry {
    Scalar(PublishedScalar),
    Member(PublishedMember),
}

/// Publication output of one group chunk: `(key, entry, violated)` each.
/// Keys are interned `Arc` slices so live groups reuse the previous batch's
/// allocation instead of cloning a `Vec<Value>` every batch.
type PubChunk = Vec<(Arc<[Value]>, PubEntry, bool)>;

/// Per-group certainty claims made by a report: `(key, certain)` each.
type GroupClaims = Vec<(Vec<Value>, bool)>;

/// One publish-stage group: interned key plus effective states; the
/// `Certain` variant carries the semi-join membership-certainty flag.
type EffGroup<'a> = (Cow<'a, [Value]>, EffStates<'a>);
type EffGroupCertain<'a> = (Cow<'a, [Value]>, EffStates<'a>, bool);

/// Aggregate states for one group during answer/publish computation:
/// borrowed when the group has no uncertain contributions, owned (a merged
/// snapshot) otherwise.
enum EffStates<'a> {
    Borrowed(&'a gola_agg::ReplicatedStates),
    Owned(gola_agg::ReplicatedStates),
}

impl EffStates<'_> {
    fn get(&self) -> &gola_agg::ReplicatedStates {
        match self {
            EffStates::Borrowed(s) => s,
            EffStates::Owned(s) => s,
        }
    }
}

/// The online query executor for one prepared query.
pub struct OnlineExecutor {
    config: OnlineConfig,
    meta: MetaPlan,
    compiled: Vec<CompiledBlock>,
    partitioner: Arc<Partitioner>,
    /// Per block, per dimension join: key → dim rows.
    dims: Vec<Vec<FxHashMap<Vec<Value>, Vec<Row>>>>,
    runtimes: Vec<BlockRuntime>,
    published: Vec<Published>,
    /// Direct consumers of each block.
    consumers: Vec<Vec<usize>>,
    /// Persistent worker pool, alive for the whole query session (workers
    /// park between batches instead of respawning per ingest). Under the
    /// multi-tenant scheduler many sessions share one pool
    /// ([`OnlineExecutor::with_pool`]); batch-granularity preemption means
    /// at most one session's batch runs on it at a time.
    pool: Arc<WorkerPool>,
    /// Lazily resolved per-session metric handles (see
    /// [`crate::metrics::SessionMetrics`]).
    session_metrics: std::sync::OnceLock<crate::metrics::SessionMetrics>,
    batches_done: usize,
    recomputations: usize,
    /// Root-block group keys the user has already seen flagged
    /// `row_certain = true`. A later batch may only break such a claim
    /// through a counted failure event (see `step`), never silently.
    claimed_certain: FxHashSet<Vec<Value>>,
    cumulative: Duration,
}

impl OnlineExecutor {
    /// Build an executor: compiles blocks, hashes dimension tables, and
    /// computes static (non-streaming) blocks exactly.
    pub fn new(
        catalog: &Catalog,
        meta: MetaPlan,
        partitioner: Arc<Partitioner>,
        config: OnlineConfig,
    ) -> Result<OnlineExecutor> {
        let pool = Arc::new(match config.schedule_perturbation {
            Some(seed) => WorkerPool::with_perturbation(config.threads, seed),
            None => WorkerPool::new(config.threads),
        });
        OnlineExecutor::with_pool(catalog, meta, partitioner, config, pool)
    }

    /// As [`OnlineExecutor::new`], but execute on a caller-provided worker
    /// pool. The multi-tenant scheduler uses this so every session
    /// time-slices one shared pool instead of spawning `threads - 1` OS
    /// threads per session. The determinism contract makes sharing safe:
    /// reports are bit-identical at any thread count, so the pool's size
    /// (not `config.threads`) governing physical parallelism cannot change
    /// any session's output.
    pub fn with_pool(
        catalog: &Catalog,
        meta: MetaPlan,
        partitioner: Arc<Partitioner>,
        config: OnlineConfig,
        pool: Arc<WorkerPool>,
    ) -> Result<OnlineExecutor> {
        config.validate()?;
        let compiled: Vec<CompiledBlock> = meta
            .blocks
            .iter()
            .cloned()
            .map(CompiledBlock::new)
            .collect();
        let mut dims = Vec::with_capacity(compiled.len());
        for cb in &compiled {
            let mut block_dims = Vec::with_capacity(cb.block.dims.len());
            // golint: allow(hash-order-leak) -- `block.dims` is a Vec of join
            // specs; the name collides with the hash-typed `dims` field
            for d in &cb.block.dims {
                let table = catalog.get(&d.table)?;
                let mut map: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
                for row in table.rows() {
                    let ctx = ExactContext::new(&row);
                    let key: Result<Vec<Value>> =
                        d.dim_keys.iter().map(|k| eval(k, &ctx)).collect();
                    let key = key?;
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    map.entry(key).or_default().push(row.clone());
                }
                block_dims.push(map);
            }
            dims.push(block_dims);
        }
        let mut consumers = vec![Vec::new(); compiled.len()];
        for cb in &compiled {
            for d in &cb.block.deps {
                consumers[d.0].push(cb.block.id);
            }
        }
        let runtimes = (0..compiled.len())
            .map(|_| BlockRuntime::default())
            .collect();
        let published = (0..compiled.len()).map(|_| Published::default()).collect();
        let mut exec = OnlineExecutor {
            config,
            meta,
            compiled,
            partitioner,
            dims,
            runtimes,
            published,
            consumers,
            pool,
            session_metrics: std::sync::OnceLock::new(),
            batches_done: 0,
            recomputations: 0,
            claimed_certain: FxHashSet::default(),
            cumulative: Duration::ZERO,
        };
        exec.compute_static_blocks(catalog)?;
        Ok(exec)
    }

    /// Per-session metric handles, resolved on first use so a disabled
    /// registry never registers anything (callers gate on
    /// [`gola_obs::enabled`] first).
    fn session_metrics(&self) -> &crate::metrics::SessionMetrics {
        self.session_metrics.get_or_init(|| {
            crate::metrics::SessionMetrics::resolve(self.config.session_label.as_deref())
        })
    }

    /// Number of batches processed so far.
    pub fn batches_done(&self) -> usize {
        self.batches_done
    }

    /// Total mini-batches `k`.
    pub fn num_batches(&self) -> usize {
        self.partitioner.num_batches()
    }

    /// Cumulative failure-triggered recomputations.
    pub fn recomputations(&self) -> usize {
        self.recomputations
    }

    /// Total uncertain items across all blocks: cached uncertain tuples
    /// plus, for live membership producers, the number of group keys whose
    /// membership is still classified as may-flip.
    pub fn uncertain_tuples(&self) -> usize {
        let cached: usize = self.runtimes.iter().map(|r| r.uncertain.len()).sum();
        let maybe_members: usize = self
            .published
            .iter()
            .filter(|p| p.live)
            // golint: allow(hash-order-leak) -- counting only; the count is
            // independent of iteration order
            .map(|p| p.members.values().filter(|m| m.tri == Tri::Maybe).count())
            .sum();
        cached + maybe_members
    }

    /// Uncertain-set size of one block.
    pub fn uncertain_in_block(&self, block: usize) -> usize {
        self.runtimes[block].uncertain.len()
    }

    /// `true` once every batch has been processed. For a growing query
    /// this first pulls newly sealed segments into the schedule, so
    /// "finished" means the stream is closed *and* drained — a query that
    /// has merely caught up with an open stream is not finished.
    pub fn is_finished(&self) -> bool {
        self.partitioner.refresh();
        self.batches_done == self.partitioner.num_batches() && self.partitioner.finalized()
    }

    /// Process the next mini-batch and return the refined answer.
    ///
    /// Over a growing stream this may **block**: when every visible batch
    /// is processed but the stream is still open, the step parks on the
    /// stream's condvar until a segment seals (another mini-batch) or the
    /// stream closes. Ingest therefore drives query progress directly —
    /// no polling loop in between.
    pub fn step(&mut self) -> Result<BatchReport> {
        if self.is_finished() {
            return Err(Error::exec("all mini-batches already processed"));
        }
        while self.batches_done == self.partitioner.num_batches() {
            self.partitioner.wait_for_growth();
            if self.is_finished() {
                // Closed with nothing new: the true last batch was already
                // reported (its `last` flag said so), so there is nothing
                // left to publish.
                return Err(Error::exec("stream closed with no further batches"));
            }
        }
        let start = Stopwatch::start();
        let i = self.batches_done;
        let batch = self.partitioner.batch(i);
        let m = self.partitioner.multiplicity_after(i);
        let last = self.partitioner.is_final_batch(i);
        let _batch_span = gola_obs::span!("batch", index = i);

        let mut timing = BatchTiming {
            batch_rows: batch.len(),
            ..Default::default()
        };
        let mut violated = Vec::new();
        let trace = std::env::var("GOLA_TRACE").is_ok();
        // Blocks in the same wavefront are mutually independent, so their
        // ingests run concurrently; publication follows per wave (in block
        // order) so later waves classify against fresh envelopes.
        let waves = self.meta.wavefronts();
        for wave in &waves {
            let streaming: Vec<usize> = wave
                .iter()
                .copied()
                .filter(|&b| self.compiled[b].block.is_streaming)
                .collect();
            if streaming.is_empty() {
                continue;
            }
            let t_in = Stopwatch::start();
            {
                let _span = gola_obs::span!("ingest");
                self.ingest_wave(&streaming, &batch, &mut timing)?;
            }
            let t_pub = Stopwatch::start();
            {
                let _span = gola_obs::span!("publish");
                for &b in &streaming {
                    if self.publish_block(b, m, last)? {
                        violated.push(b);
                    }
                }
            }
            timing.publish += t_pub.elapsed();
            if trace {
                eprintln!(
                    "    wave {streaming:?}: ingest {:?} publish {:?}",
                    t_pub.since(&t_in),
                    t_pub.elapsed()
                );
            }
        }

        if !violated.is_empty() {
            let t_rec = Stopwatch::start();
            let _span = gola_obs::span!("recompute", blocks = violated.len());
            self.recover(&violated, i, m, last)?;
            timing.recover = t_rec.elapsed();
        }

        let t_rep = Stopwatch::start();
        let report_span = gola_obs::span!("report");
        let (mut report, claims) = self.build_report(i, m, last)?;
        drop(report_span);
        // Honor previously reported certainty: once the user has seen a row
        // flagged `row_certain`, that row may not silently vanish or revert
        // — the claim is a reliance exactly like a consumer's envelope, and
        // breaking it (a classification range widened under new data) is a
        // failure event. There is no state to replay — the claim went only
        // to the user — so the recovery action is the corrected report
        // itself, plus the counted recomputation that makes the correction
        // auditable.
        let claim_map: FxHashMap<&Vec<Value>, bool> = claims.iter().map(|(k, c)| (k, *c)).collect();
        let mut claim_broken = false;
        self.claimed_certain.retain(|key| {
            if claim_map.get(key) == Some(&true) {
                true
            } else {
                claim_broken = true;
                false
            }
        });
        if claim_broken {
            self.recomputations += 1;
            report.recomputations = self.recomputations;
        }
        for (key, certain) in claims {
            if certain {
                self.claimed_certain.insert(key);
            }
        }
        // The report is the root block's publication — same bucket.
        timing.publish += t_rep.elapsed();
        if trace {
            eprintln!("    report: {:?}", t_rep.elapsed());
        }
        self.batches_done += 1;
        let elapsed = start.elapsed();
        self.cumulative += elapsed;
        report.batch_time = elapsed;
        report.cumulative_time = self.cumulative;
        report.timing = timing;
        if gola_obs::enabled() {
            let m = self.session_metrics();
            m.batches.inc();
            m.uncertain.set(report.uncertain_tuples as f64);
            m.recomputations.set(report.recomputations as f64);
            if let Some(ci) = report.ci() {
                m.ci_width.set(ci.width());
            }
        }
        Ok(report)
    }

    // -----------------------------------------------------------------
    // Ingest
    // -----------------------------------------------------------------

    /// Ingest every block of one wavefront. The blocks are mutually
    /// independent, so with pool workers available each block's ingest runs
    /// as its own job (block-level parallelism composes with the chunk-level
    /// parallelism inside `ingest_into` via the pool's nested-run support).
    fn ingest_wave(
        &mut self,
        blocks: &[usize],
        batch: &MiniBatch,
        timing: &mut BatchTiming,
    ) -> Result<()> {
        if blocks.len() == 1 || self.pool.threads() == 1 {
            for &b in blocks {
                self.ingest_block(b, batch, timing)?;
            }
            return Ok(());
        }
        // Take the wave's runtimes out so each job holds exclusive `&mut`
        // access to its own block state while sharing `&self`.
        let mut taken: Vec<(usize, BlockRuntime)> = blocks
            .iter()
            .map(|&b| (b, std::mem::take(&mut self.runtimes[b])))
            .collect();
        let mut slots: Vec<Option<(Result<()>, BatchTiming)>> = Vec::new();
        slots.resize_with(taken.len(), || None);
        {
            let this = &*self;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = taken
                .iter_mut()
                .zip(slots.iter_mut())
                .map(|((b, rt), slot)| {
                    let b = *b;
                    Box::new(move || {
                        let mut t = BatchTiming::default();
                        let r = this.ingest_into(b, rt, batch, &mut t);
                        *slot = Some((r, t));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            this.pool.run(jobs);
        }
        let mut result = Ok(());
        for ((b, rt), slot) in taken.into_iter().zip(slots) {
            self.runtimes[b] = rt;
            // golint: allow(panic-surface) -- the pool run above blocks until
            // every job stored its slot; an empty slot is a pool bug
            let (r, t) = slot.expect("ingest job ran");
            timing.join += t.join;
            timing.classify += t.classify;
            timing.fold += t.fold;
            if result.is_ok() {
                result = r;
            }
        }
        result
    }

    fn ingest_block(
        &mut self,
        b: usize,
        batch: &MiniBatch,
        timing: &mut BatchTiming,
    ) -> Result<()> {
        let mut rt = std::mem::take(&mut self.runtimes[b]);
        let result = self.ingest_into(b, &mut rt, batch, timing);
        self.runtimes[b] = rt;
        result
    }

    fn ingest_into(
        &self,
        b: usize,
        rt: &mut BlockRuntime,
        batch: &MiniBatch,
        timing: &mut BatchTiming,
    ) -> Result<()> {
        let cb = &self.compiled[b];
        let t_join = Stopwatch::start();
        let join_span = gola_obs::span!("join");

        // Join + certain filters + lineage projection for the new tuples.
        let (new_ids, new_chunk) = self.new_candidates(cb, b, batch)?;

        // Candidates = carried uncertain set ++ new tuples, column-major.
        // The carried prefix keeps its cached bootstrap weights; new tuples
        // get weights from the batched kernel only if/when they fold or
        // enter the uncertain set.
        let carried = std::mem::take(&mut rt.uncertain);
        let carried_len = carried.len();
        let cand_chunk = carried.chunk.concat(&new_chunk);
        let mut cand_ids = carried.tuple_ids;
        cand_ids.extend_from_slice(&new_ids);
        let carried_weights = carried.weights;
        drop(join_span);
        timing.join += t_join.elapsed();

        // Stage 1 — classify fixed-size chunks. Classification is per-tuple
        // independent (reliance marking is atomic and idempotent), so this
        // runs in parallel for *every* block, including ones whose
        // aggregates cannot merge. Workers borrow ranges of the candidate
        // chunk — no cloning.
        let t_classify = Stopwatch::start();
        let classify_span = gola_obs::span!("classify");
        let n = cand_chunk.len();
        let ranges: Vec<(usize, usize)> = (0..n)
            .step_by(CHUNK.max(1))
            .map(|s| (s, CHUNK.min(n - s)))
            .collect();
        let mut slots: Vec<Option<Result<ChunkClass>>> = Vec::new();
        slots.resize_with(ranges.len(), || None);
        if ranges.len() > 1 && self.pool.threads() > 1 {
            let cand_ref = &cand_chunk;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                .iter()
                .zip(slots.iter_mut())
                .map(|(&(start, len), slot)| {
                    Box::new(move || {
                        *slot = Some(self.classify_chunk(cb, cand_ref, start, len));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool.run(jobs);
        } else {
            for (&(start, len), slot) in ranges.iter().zip(slots.iter_mut()) {
                *slot = Some(self.classify_chunk(cb, &cand_chunk, start, len));
            }
        }
        let mut classes = Vec::with_capacity(slots.len());
        for s in slots {
            // golint: allow(panic-surface) -- the pool run above blocks until
            // every job stored its slot; an empty slot is a pool bug
            classes.push(s.expect("classify job ran")?);
        }
        drop(classify_span);
        timing.classify += t_classify.elapsed();

        // Stage 2 — fold. With several workers, mergeable aggregates fold
        // each chunk into a private shard, then merge shards in chunk index
        // order. The one-thread path folds chunks directly into the block
        // runtime — no shards, no merges — and still produces bit-identical
        // published values: every mergeable state (COUNT/SUM/AVG/MIN/MAX/
        // VAR) finalizes to a pure function of the folded *multiset*
        // (`ExactSum` expansions; exact small-integer weight sums; strict
        // MIN/MAX comparisons), so shard-merging in chunk order and folding
        // sequentially in chunk order round to the same bits.
        // Quantile/UDAF states cannot merge — their fold stays sequential
        // on any thread count (classification above was still parallel).
        let t_fold = Stopwatch::start();
        let fold_span = gola_obs::span!("fold");
        let mergeable = cb.agg_kinds.iter().all(gola_agg::AggKind::is_mergeable);
        if mergeable && classes.len() > 1 && self.pool.threads() > 1 {
            let mut shard_slots: Vec<Option<Result<BlockRuntime>>> = Vec::new();
            shard_slots.resize_with(classes.len(), || None);
            {
                let cand_ref = &cand_chunk;
                let ids_ref = &cand_ids;
                let cw_ref = carried_weights.as_slice();
                let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = classes
                    .iter()
                    .enumerate()
                    .zip(shard_slots.iter_mut())
                    .map(|((ci, class), slot)| {
                        let folds: &[u32] = &class.folds;
                        Box::new(move || {
                            *slot = Some(self.fold_chunk(
                                cb,
                                cand_ref,
                                ids_ref,
                                ci * CHUNK,
                                folds,
                                carried_len,
                                cw_ref,
                            ));
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                self.pool.run(jobs);
            }
            let _merge_span = gola_obs::span!("merge");
            for shard in shard_slots {
                // golint: allow(panic-surface) -- the pool run above blocks
                // until every job stored its slot; an empty slot is a pool bug
                let shard = shard.expect("fold job ran")?;
                // golint: allow(hash-order-leak) -- per-key merge into disjoint
                // entries; key visit order only affects rt.groups insertion
                // order, which is sorted before anything observable reads it
                for (key, states) in shard.groups {
                    match rt.groups.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            e.get_mut().merge(&states)
                        }
                        std::collections::hash_map::Entry::Vacant(v) => {
                            v.insert(states);
                        }
                    }
                }
                // golint: allow(hash-order-leak) -- same per-key argument as the
                // groups merge above, for both nesting levels
                for (mkey, groups) in shard.semi_groups {
                    let slot = rt.semi_groups.entry(mkey).or_default();
                    // golint: allow(hash-order-leak) -- per-key merge, see above
                    for (gkey, states) in groups {
                        match slot.entry(gkey) {
                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                e.get_mut().merge(&states)
                            }
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(states);
                            }
                        }
                    }
                }
            }
        } else {
            // One worker (any kinds), or non-mergeable states (P² quantile,
            // UDAFs): fold chunk by chunk, in chunk order, directly into
            // the block runtime — no per-chunk shard states, no merges. The
            // batched weight kernel still applies.
            let mut wbuf: Vec<u32> = Vec::new();
            for (ci, class) in classes.iter().enumerate() {
                self.fold_range(
                    cb,
                    &cand_chunk,
                    &cand_ids,
                    ci * CHUNK,
                    &class.folds,
                    carried_len,
                    &carried_weights,
                    rt,
                    &mut wbuf,
                )?;
            }
        }

        // Reclaim the still-uncertain tuples in candidate order (chunk
        // order × chunk-relative index order) — identical to the order the
        // sequential classifier would have pushed them. Carried tuples keep
        // their cached bootstrap weights; tuples entering the uncertain set
        // get theirs from one batched kernel call, so later publish stages
        // never recompute a weight.
        let mut keep_idx: Vec<usize> = Vec::new();
        for (ci, class) in classes.iter().enumerate() {
            for &idx in &class.uncertain_idx {
                keep_idx.push(ci * CHUNK + idx as usize);
            }
        }
        let stride = self.config.bootstrap.trials as usize;
        let entering: Vec<u64> = keep_idx
            .iter()
            .filter(|&&i| i >= carried_len)
            .map(|&i| cand_ids[i])
            .collect();
        let mut new_w: Vec<u32> = Vec::new();
        self.config.bootstrap.weights_batch(&entering, &mut new_w);
        let mut kept_weights: Vec<u32> = Vec::with_capacity(keep_idx.len() * stride);
        let mut next_new = 0usize;
        for &i in &keep_idx {
            if i < carried_len {
                kept_weights.extend_from_slice(&carried_weights[i * stride..(i + 1) * stride]);
            } else {
                kept_weights.extend_from_slice(&new_w[next_new * stride..(next_new + 1) * stride]);
                next_new += 1;
            }
        }
        rt.uncertain = UncertainSet {
            tuple_ids: keep_idx.iter().map(|&i| cand_ids[i]).collect(),
            weights: kept_weights,
            chunk: cand_chunk.gather(&keep_idx),
        };
        drop(fold_span);
        timing.fold += t_fold.elapsed();
        Ok(())
    }

    /// Join one batch against the block's dimensions, apply the certain
    /// filters, and project to lineage columns — producing the block's new
    /// candidate tuples as a columnar chunk.
    ///
    /// Without dimension joins this path is vectorized: certain filters the
    /// kernel supports are evaluated column-at-a-time into selection
    /// bitmaps, and the lineage projection of the survivors is an `Arc`
    /// bump (no filters, or all rows pass) or a typed gather — no `Row` is
    /// ever materialized.
    fn new_candidates(
        &self,
        cb: &CompiledBlock,
        b: usize,
        batch: &MiniBatch,
    ) -> Result<(Vec<u64>, ColumnChunk)> {
        let pubs = &self.published;
        if cb.block.dims.is_empty() {
            let chunk = batch.chunk();
            let len = chunk.len();
            let mut mask: Option<Bitmap> = None;
            let mut fallback: Vec<&Expr> = Vec::new();
            for f in &cb.certain_filters {
                match predicate_mask(f, chunk.columns(), len) {
                    Some(m) => match mask.as_mut() {
                        Some(acc) => acc.and_with(&m),
                        None => mask = Some(m),
                    },
                    None => fallback.push(f),
                }
            }
            if mask.is_none() && fallback.is_empty() {
                return Ok((batch.tuple_ids.clone(), chunk.project(&cb.lineage_cols)));
            }
            let mut sel: Vec<usize> = Vec::new();
            let mut rowbuf: Vec<Value> = Vec::new();
            'rows: for i in 0..len {
                if let Some(m) = &mask {
                    if !m.get(i) {
                        continue;
                    }
                }
                if !fallback.is_empty() {
                    chunk.row_values_into(i, &mut rowbuf);
                    let ctx = TupleCtx {
                        row: &rowbuf,
                        pubs,
                        mode: CtxMode::Point,
                    };
                    for &f in &fallback {
                        if !eval_predicate(f, &ctx)? {
                            continue 'rows;
                        }
                    }
                }
                sel.push(i);
            }
            let ids: Vec<u64> = sel.iter().map(|&i| batch.tuple_ids[i]).collect();
            let lineage = chunk.project(&cb.lineage_cols);
            if sel.len() == len {
                return Ok((ids, lineage));
            }
            return Ok((ids, lineage.gather(&sel)));
        }
        // Dimension joins stay row-at-a-time (broadcast hash join), then
        // the joined lineage rows transpose back into a columnar chunk.
        let mut ids: Vec<u64> = Vec::new();
        let mut rows: Vec<Row> = Vec::new();
        let mut joined_buf: Vec<Row> = Vec::new();
        for (tid, fact_row) in batch.iter() {
            joined_buf.clear();
            join_one(&fact_row, &self.dims[b], &cb.block.dims, &mut joined_buf)?;
            'rows: for joined in &joined_buf {
                let ctx = TupleCtx {
                    row: joined.values(),
                    pubs,
                    mode: CtxMode::Point,
                };
                for f in &cb.certain_filters {
                    if !eval_predicate(f, &ctx)? {
                        continue 'rows;
                    }
                }
                ids.push(tid);
                rows.push(joined.project(&cb.lineage_cols));
            }
        }
        Ok((
            ids,
            ColumnChunk::from_rows_untyped(cb.lineage_cols.len(), &rows),
        ))
    }

    /// Classify one range of the candidate chunk against the current
    /// envelopes. Runs on pool workers: touches `self` read-only and records
    /// reliance via idempotent atomic stores. Fold inputs (group key,
    /// aggregate args) are no longer evaluated here — the fold stage reads
    /// them straight off the candidate columns.
    fn classify_chunk(
        &self,
        cb: &CompiledBlock,
        cand: &ColumnChunk,
        start: usize,
        len: usize,
    ) -> Result<ChunkClass> {
        let pubs = &self.published;
        let mut out = ChunkClass::default();
        // Semi-join aggregation strategy: fold every candidate into
        // partial aggregates keyed by its membership key — no
        // classification, no caching, no reliance on the producer. The
        // answer re-selects member partitions each batch, so membership
        // flips cost nothing. (NULL membership keys drop in the fold.)
        //
        // Likewise, a block with no uncertain predicates folds everything
        // deterministically — no row materialization at all.
        if cb.semi_join.is_some() || cb.lin_filters.is_empty() {
            out.folds = (0..row_u32(len)).collect();
            return Ok(out);
        }

        // Scalar-comparison fast classification: cache the RHS variation
        // range (and the producer's published entry, for reliance marking)
        // per correlation key, then each tuple classifies with two float
        // comparisons instead of a generic interval evaluation.
        if let Some(fsc) = &cb.fast_scalar_cmp {
            let sub = fsc_subquery(cb);
            let key_plans: Vec<ExprSrc<'_>> = fsc.key.iter().map(plan_src).collect();
            let lhs_plan = plan_src(&fsc.lhs);
            let mut cache: FxHashMap<Vec<Value>, (RangeVal, Option<&PublishedScalar>)> =
                FxHashMap::default();
            let mut skey: Vec<Value> = Vec::with_capacity(key_plans.len());
            let mut rowbuf: Vec<Value> = Vec::new();
            for r in 0..len {
                let i = start + r;
                let mut filled = false;
                skey.clear();
                for p in &key_plans {
                    skey.push(src_value(
                        cand,
                        i,
                        p,
                        &mut rowbuf,
                        &mut filled,
                        pubs,
                        CtxMode::Classify,
                    )?);
                }
                let lhs = src_value(
                    cand,
                    i,
                    &lhs_plan,
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                    CtxMode::Classify,
                )?;
                if !cache.contains_key(skey.as_slice()) {
                    if !filled {
                        cand.row_values_into(i, &mut rowbuf);
                    }
                    let ctx = TupleCtx {
                        row: &rowbuf,
                        pubs,
                        mode: CtxMode::Classify,
                    };
                    let range = gola_expr::eval::eval_range(&fsc.rhs, &ctx)?;
                    let ps = pubs[sub].scalars.get(skey.as_slice());
                    cache.insert(skey.clone(), (range, ps));
                }
                // golint: allow(panic-surface) -- inserted above if missing
                let (rhs, ps) = cache.get(skey.as_slice()).expect("rhs range cached");
                let tri = classify_cmp(&lhs, fsc.op, rhs);
                match tri {
                    Tri::True | Tri::False => {
                        // The decision relies on this key's envelope.
                        if let Some(ps) = ps {
                            ps.used.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                        if tri == Tri::True {
                            out.folds.push(row_u32(r));
                        }
                    }
                    Tri::Maybe => out.uncertain_idx.push(row_u32(r)),
                }
            }
            return Ok(out);
        }

        // Generic path: classify against the producers' envelopes.
        let mut rowbuf: Vec<Value> = Vec::new();
        for r in 0..len {
            cand.row_values_into(start + r, &mut rowbuf);
            let ctx = TupleCtx {
                row: &rowbuf,
                pubs,
                mode: CtxMode::Classify,
            };
            let mut tri = Tri::True;
            for f in &cb.lin_filters {
                tri = tri.and(eval_tri(f, &ctx)?);
                if tri == Tri::False {
                    break;
                }
            }
            match tri {
                Tri::True => {
                    self.mark_reliance(&cb.lin_filters, &rowbuf)?;
                    out.folds.push(row_u32(r));
                }
                Tri::False => {
                    self.mark_reliance(&cb.lin_filters, &rowbuf)?;
                }
                Tri::Maybe => out.uncertain_idx.push(row_u32(r)),
            }
        }
        Ok(out)
    }

    /// Fold one chunk's deterministic-true tuples into a private shard,
    /// computing the chunk's bootstrap weights with the batched kernel (one
    /// flat `tuples × trials` SoA buffer instead of a hash chain per cell).
    #[allow(clippy::too_many_arguments)]
    fn fold_chunk(
        &self,
        cb: &CompiledBlock,
        cand: &ColumnChunk,
        ids: &[u64],
        start: usize,
        folds: &[u32],
        carried_len: usize,
        carried_weights: &[u32],
    ) -> Result<BlockRuntime> {
        let mut shard = BlockRuntime::default();
        let mut wbuf: Vec<u32> = Vec::new();
        self.fold_range(
            cb,
            cand,
            ids,
            start,
            folds,
            carried_len,
            carried_weights,
            &mut shard,
            &mut wbuf,
        )?;
        Ok(shard)
    }

    /// Fold deterministic-true tuples into `rt`'s group states with batched
    /// bootstrap weights. Group keys and aggregate arguments are read
    /// directly from the candidate columns when they are plain column
    /// references (the common case); numeric argument columns take the
    /// fused weight × value kernel without materializing a `Value` per
    /// (tuple, replica).
    #[allow(clippy::too_many_arguments)]
    fn fold_range(
        &self,
        cb: &CompiledBlock,
        cand: &ColumnChunk,
        ids: &[u64],
        start: usize,
        folds: &[u32],
        carried_len: usize,
        carried_weights: &[u32],
        rt: &mut BlockRuntime,
        wbuf: &mut Vec<u32>,
    ) -> Result<()> {
        let trials = self.config.bootstrap.trials;
        let stride = trials as usize;
        let pubs = &self.published;
        // Tuples carried over from the uncertain set (candidate index <
        // carried_len) already have their weights cached — the batched
        // kernel only runs over the genuinely new fold tuples. `weight_at`
        // maps a fold position back to the right slice: carried slices are
        // indexed by candidate position, fresh ones consume `wbuf` in fold
        // order (the same order `idbuf` was assembled in).
        let idbuf: Vec<u64> = folds
            .iter()
            .filter(|&&r| start + r as usize >= carried_len)
            .map(|&r| ids[start + r as usize])
            .collect();
        self.config.bootstrap.weights_batch(&idbuf, wbuf);
        let fresh: &[u32] = wbuf;
        let mut next_fresh = 0usize;
        // Semi-join aggregation: the membership key is evaluated here too;
        // NULL keys never pass `IN (...)`, so those tuples drop.
        if let Some((_, key_exprs, _)) = &cb.semi_join {
            let mut rowbuf: Vec<Value> = Vec::new();
            for &r in folds {
                let i = start + r as usize;
                let weights = if i < carried_len {
                    &carried_weights[i * stride..(i + 1) * stride]
                } else {
                    let w = &fresh[next_fresh * stride..(next_fresh + 1) * stride];
                    next_fresh += 1;
                    w
                };
                cand.row_values_into(i, &mut rowbuf);
                let ctx = TupleCtx {
                    row: &rowbuf,
                    pubs,
                    mode: CtxMode::Point,
                };
                let mkey: Result<Vec<Value>> = key_exprs.iter().map(|k| eval(k, &ctx)).collect();
                let mkey = mkey?;
                if mkey.iter().any(Value::is_null) {
                    continue; // NULL IN (...) never passes a filter
                }
                let gkey: Result<Vec<Value>> =
                    cb.lin_group_by.iter().map(|g| eval(g, &ctx)).collect();
                let args: Result<Vec<Value>> =
                    cb.lin_agg_args.iter().map(|a| eval(a, &ctx)).collect();
                let states = rt
                    .semi_groups
                    .entry(mkey)
                    .or_default()
                    .entry(gkey?)
                    .or_insert_with(|| gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials));
                states.update_with_weights(&args?, weights);
            }
            return Ok(());
        }
        let key_plans: Vec<ExprSrc<'_>> = cb.lin_group_by.iter().map(plan_src).collect();
        let arg_plans: Vec<ExprSrc<'_>> = cb.lin_agg_args.iter().map(plan_src).collect();
        let mut rowbuf: Vec<Value> = Vec::new();
        if key_plans.is_empty() {
            // No GROUP BY: every fold lands in the single empty-key group.
            // Resolve (or create) it once and keep the mutable borrow for
            // the whole range instead of re-probing the map per tuple.
            if !rt.groups.contains_key(&[] as &[Value]) {
                rt.groups.insert(
                    Vec::new(),
                    gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials),
                );
            }
            // golint: allow(panic-surface) -- inserted above if missing
            let states = rt
                .groups
                .get_mut(&[] as &[Value])
                .expect("empty-key group exists");
            for &r in folds {
                let i = start + r as usize;
                let weights = if i < carried_len {
                    &carried_weights[i * stride..(i + 1) * stride]
                } else {
                    let w = &fresh[next_fresh * stride..(next_fresh + 1) * stride];
                    next_fresh += 1;
                    w
                };
                let mut filled = false;
                fold_tuple_args(
                    cand,
                    i,
                    &arg_plans,
                    states,
                    weights,
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                )?;
            }
            return Ok(());
        }
        let mut keybuf: Vec<Value> = Vec::with_capacity(key_plans.len());
        for &r in folds {
            let i = start + r as usize;
            let weights = if i < carried_len {
                &carried_weights[i * stride..(i + 1) * stride]
            } else {
                let w = &fresh[next_fresh * stride..(next_fresh + 1) * stride];
                next_fresh += 1;
                w
            };
            let mut filled = false;
            keybuf.clear();
            for p in &key_plans {
                keybuf.push(src_value(
                    cand,
                    i,
                    p,
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                    CtxMode::Point,
                )?);
            }
            if !rt.groups.contains_key(keybuf.as_slice()) {
                rt.groups.insert(
                    keybuf.clone(),
                    gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials),
                );
            }
            // golint: allow(panic-surface) -- inserted above if missing
            let states = rt.groups.get_mut(keybuf.as_slice()).expect("group exists");
            fold_tuple_args(
                cand,
                i,
                &arg_plans,
                states,
                weights,
                &mut rowbuf,
                &mut filled,
                pubs,
            )?;
        }
        Ok(())
    }

    /// Record that a deterministic decision was made against the referenced
    /// producers' envelopes/membership.
    fn mark_reliance(&self, filters: &[Expr], lineage: &[Value]) -> Result<()> {
        let ctx = TupleCtx {
            row: lineage,
            pubs: &self.published,
            mode: CtxMode::Point,
        };
        fn walk(e: &Expr, ctx: &TupleCtx<'_>, pubs: &[Published]) -> Result<()> {
            match e {
                Expr::ScalarRef { id, key } => {
                    let keys: Result<Vec<Value>> = key.iter().map(|k| eval(k, ctx)).collect();
                    if let Some(s) = pubs[id.0].scalars.get(keys?.as_slice()) {
                        s.used.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                Expr::InSubquery { id, key, .. } => {
                    let keys: Result<Vec<Value>> = key.iter().map(|k| eval(k, ctx)).collect();
                    if let Some(m) = pubs[id.0].members.get(keys?.as_slice()) {
                        if m.tri.is_deterministic() {
                            m.mark_relied(m.tri == Tri::True);
                        }
                    }
                }
                _ => {}
            }
            for c in e.children() {
                walk(c, ctx, pubs)?;
            }
            Ok(())
        }
        for f in filters {
            walk(f, &ctx, &self.published)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Publish
    // -----------------------------------------------------------------

    /// Refresh block `b`'s published output. Returns `true` if a relied-upon
    /// value violated its committed envelope (failure detected).
    fn publish_block(&mut self, b: usize, m: f64, last: bool) -> Result<bool> {
        let role = self.compiled[b].block.role;
        if role == BlockRole::Root {
            return Ok(false);
        }
        let old = std::mem::take(&mut self.published[b]);
        let (new_pub, violated) = self.compute_published(b, m, last, &old)?;
        self.published[b] = new_pub;
        Ok(violated)
    }

    fn compute_published(
        &self,
        b: usize,
        m: f64,
        last: bool,
        old: &Published,
    ) -> Result<(Published, bool)> {
        let cb = &self.compiled[b];
        let rt = &self.runtimes[b];
        let eff = self.effective_states(cb, rt)?;
        // Groups without point support don't exist in the point answer, so
        // they must not publish — a consumer would see a group the exact
        // engine never creates (e.g. COUNT = 0 where the true subquery
        // yields no row at all). The vanished-group reliance check below
        // still fires if a consumer already relied on such a group. A
        // global aggregate (no GROUP BY) always has exactly one row, even
        // over zero qualifying tuples.
        let eff: Vec<EffGroup<'_>> = eff
            .into_iter()
            .filter(|(_, _, supported)| *supported || cb.num_keys() == 0)
            .map(|(k, s, _)| (k, s))
            .collect();
        let mut violated = false;
        let live = cb.block.is_streaming && !last;
        let mut out = Published {
            live,
            ..Default::default()
        };

        // Finalize groups in parallel chunks: per-group bootstrap CI /
        // percentile / HAVING-replica evaluation only reads frozen state
        // (`old`, upstream `published`, the effective states), so chunks are
        // independent. Assembled in chunk order — the output maps don't
        // depend on insertion order, but the `violated` OR and the entries
        // themselves are identical to the sequential path's.
        let chunks: Vec<&[EffGroup<'_>]> = eff.chunks(PUB_CHUNK).collect();
        let mut slots: Vec<Option<Result<PubChunk>>> = Vec::new();
        slots.resize_with(chunks.len(), || None);
        if chunks.len() > 1 && self.pool.threads() > 1 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .iter()
                .zip(slots.iter_mut())
                .map(|(chunk, slot)| {
                    let chunk: &[EffGroup<'_>] = chunk;
                    Box::new(move || {
                        *slot = Some(self.publish_chunk(cb, chunk, m, last, live, old));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.pool.run(jobs);
        } else {
            for (chunk, slot) in chunks.iter().zip(slots.iter_mut()) {
                *slot = Some(self.publish_chunk(cb, chunk, m, last, live, old));
            }
        }
        for slot in slots {
            // golint: allow(panic-surface) -- the pool run above blocks until
            // every job stored its slot; an empty slot is a pool bug
            for (key, entry, v) in slot.expect("publish job ran")? {
                violated |= v;
                match entry {
                    PubEntry::Scalar(s) => {
                        out.scalars.insert(key, s);
                    }
                    PubEntry::Member(mem) => {
                        out.members.insert(key, mem);
                    }
                }
            }
        }

        // Groups that vanished (their only contributions were uncertain
        // tuples that resolved to false): if something relied on them, the
        // decisions are void.
        // golint: allow(hash-order-leak) -- order-insensitive boolean OR over
        // vanished groups; no value escapes
        for (key, prev) in old.scalars.iter() {
            if prev.is_used() && !out.scalars.contains_key(key) {
                violated = true;
            }
        }
        // golint: allow(hash-order-leak) -- order-insensitive boolean OR over
        // vanished groups; no value escapes
        for (key, prev) in old.members.iter() {
            if prev.relied_on() == Some(true) && !out.members.contains_key(key) {
                // Relying on `false` for a vanished group stays correct.
                violated = true;
            }
        }
        Ok((out, violated))
    }

    /// Finalize one chunk of effective groups into publishable entries.
    fn publish_chunk(
        &self,
        cb: &CompiledBlock,
        chunk: &[EffGroup<'_>],
        m: f64,
        last: bool,
        live: bool,
        old: &Published,
    ) -> Result<PubChunk> {
        chunk
            .iter()
            .map(|(key, states)| {
                let key: &[Value] = key.as_ref();
                let (entry, v) = self.publish_entry(cb, key, states.get(), m, last, live, old)?;
                // Intern the key, reusing the previous batch's allocation
                // when the group already existed — live groups stop paying
                // a key clone per batch.
                let prev = match cb.block.role {
                    BlockRole::Scalar => old.scalars.get_key_value(key).map(|(k, _)| Arc::clone(k)),
                    _ => old.members.get_key_value(key).map(|(k, _)| Arc::clone(k)),
                };
                let akey = prev.unwrap_or_else(|| Arc::from(key));
                Ok((akey, entry, v))
            })
            .collect()
    }

    /// Finalize one group: point value, bootstrap replicas, envelope carry
    /// and violation check against `old`. Pure with respect to `self` —
    /// safe to call from pool workers.
    #[allow(clippy::too_many_arguments)]
    fn publish_entry(
        &self,
        cb: &CompiledBlock,
        key: &[Value],
        states: &gola_agg::ReplicatedStates,
        m: f64,
        last: bool,
        live: bool,
        old: &Published,
    ) -> Result<(PubEntry, bool)> {
        let _ = last;
        let pubs = &self.published;
        let trials = self.config.bootstrap.trials;
        let n_aggs = cb.agg_kinds.len();
        let mut violated = false;
        let point_aggs: Vec<Value> = (0..n_aggs).map(|j| states.value(j, m)).collect();
        let entry = match cb.block.role {
            BlockRole::Scalar => {
                let post = &cb
                    .block
                    .post_project
                    .as_ref()
                    // golint: allow(panic-surface) -- Scalar blocks are built with
                    // a post projection; MetaPlan construction guarantees it
                    .expect("scalar has projection")[0];
                let fast_col = match post {
                    Expr::Column(c) if *c < key.len() + n_aggs => Some(*c),
                    _ => None,
                };
                let mut trial_vals = Vec::with_capacity(trials as usize);
                let mut numeric_trials = Vec::with_capacity(trials as usize);
                let value = if let Some(c) = fast_col {
                    // Post-projection is a plain column reference (group key
                    // or aggregate): read the replicated states directly
                    // instead of building an eval context per trial.
                    for t in 0..trials {
                        let v = if c < key.len() {
                            key[c].clone()
                        } else {
                            states.trial_value(c - key.len(), t, m)
                        };
                        if let Some(x) = v.as_f64() {
                            numeric_trials.push(x);
                        }
                        trial_vals.push(v);
                    }
                    if c < key.len() {
                        key[c].clone()
                    } else {
                        point_aggs[c - key.len()].clone()
                    }
                } else {
                    let ctx = GroupCtx {
                        keys: key,
                        aggs: &point_aggs,
                        agg_ranges: None,
                        pubs,
                        mode: CtxMode::Point,
                    };
                    let value = eval(post, &ctx)?;
                    let mut agg_buf: Vec<Value> = Vec::with_capacity(n_aggs);
                    for t in 0..trials {
                        agg_buf.clear();
                        for j in 0..n_aggs {
                            agg_buf.push(states.trial_value(j, t, m));
                        }
                        let ctx = GroupCtx {
                            keys: key,
                            aggs: &agg_buf,
                            agg_ranges: None,
                            pubs,
                            mode: CtxMode::Trial(t),
                        };
                        let v = eval(post, &ctx)?;
                        if let Some(x) = v.as_f64() {
                            numeric_trials.push(x);
                        }
                        trial_vals.push(v);
                    }
                    value
                };
                // Small-sample guard: do not trust the bootstrap range
                // of a scalar derived from a handful of observations.
                // With no replicas at all (trials = 0) there is no error
                // model — nothing can be classified deterministically.
                let tiny = live
                    && (trials == 0
                        || (0..n_aggs).any(|j| {
                            states
                                .observations(j)
                                .is_some_and(|o| o < self.config.min_group_obs)
                        }));
                let fresh = if tiny {
                    RangeVal::Unknown
                } else {
                    match value.as_f64() {
                        Some(v) => {
                            let vr = VariationRange::from_replicas(
                                v,
                                &numeric_trials,
                                self.config.envelope_epsilon(),
                            );
                            RangeVal::num(vr.lo, vr.hi)
                        }
                        None if value.is_null() && !live => RangeVal::Exact(Value::Null),
                        None if !value.is_null() => RangeVal::Exact(value.clone()),
                        None => RangeVal::Unknown,
                    }
                };
                let (env, used) = match old.scalars.get(key) {
                    Some(prev) if prev.is_used() => {
                        let in_env = value
                            .as_f64()
                            .map(|v| prev.env.contains(v))
                            .unwrap_or(false)
                            && numeric_trials.iter().all(|&v| prev.env.contains(v));
                        if in_env {
                            (prev.env.intersect(&fresh).unwrap_or(fresh), true)
                        } else {
                            violated = true;
                            (fresh, false)
                        }
                    }
                    _ => (fresh, false),
                };
                PubEntry::Scalar(PublishedScalar {
                    value,
                    trials: trial_vals,
                    env,
                    used: AtomicBool::new(used),
                })
            }
            BlockRole::Membership => {
                let n_keys = cb.num_keys();
                // Numeric-only fast HAVING: every conjunct compares an
                // aggregate column against a numeric constant.
                let numeric_fh: Option<Vec<(usize, gola_expr::BinOp, f64)>> =
                    cb.fast_having.as_ref().and_then(|fh| {
                        fh.iter()
                            .map(|(c, op, k)| {
                                if *c >= n_keys {
                                    k.as_f64().map(|v| (*c - n_keys, *op, v))
                                } else {
                                    None
                                }
                            })
                            .collect()
                    });
                let (point, trial_pass) = if let Some(fh) = &numeric_fh {
                    let cmp = |x: f64, op: gola_expr::BinOp, k: f64| match op {
                        gola_expr::BinOp::Lt => x < k,
                        gola_expr::BinOp::LtEq => x <= k,
                        gola_expr::BinOp::Gt => x > k,
                        gola_expr::BinOp::GtEq => x >= k,
                        // golint: allow(float-total-order) -- SQL `=`/`<>` on
                        // floats: NaN compares false/true per IEEE, the defined
                        // per-row-deterministic query result; no ordering derived.
                        gola_expr::BinOp::Eq => x == k,
                        gola_expr::BinOp::NotEq => x != k,
                        _ => false,
                    };
                    let point = fh
                        .iter()
                        .all(|(j, op, k)| point_aggs[*j].as_f64().is_some_and(|x| cmp(x, *op, *k)));
                    let mut trial_pass = Vec::with_capacity(trials as usize);
                    for b in 0..trials {
                        trial_pass.push(fh.iter().all(|(j, op, k)| {
                            states
                                .trial_value_f64(*j, b, m)
                                .is_some_and(|x| cmp(x, *op, *k))
                        }));
                    }
                    (point, trial_pass)
                } else if let Some(fh) = &cb.fast_having {
                    // General constant comparisons (string keys etc.).
                    let test = |col: &Value, op: gola_expr::BinOp, c: &Value| {
                        gola_expr::eval::eval_binary_values(op, col, c)
                            .ok()
                            .and_then(|v| v.as_bool())
                            .unwrap_or(false)
                    };
                    let cell = |c: usize, t: Option<u32>| -> Value {
                        if c < n_keys {
                            key[c].clone()
                        } else {
                            match t {
                                Some(b) => states.trial_value(c - n_keys, b, m),
                                None => point_aggs[c - n_keys].clone(),
                            }
                        }
                    };
                    let point = fh.iter().all(|(c, op, k)| test(&cell(*c, None), *op, k));
                    let mut trial_pass = Vec::with_capacity(trials as usize);
                    for b in 0..trials {
                        trial_pass
                            .push(fh.iter().all(|(c, op, k)| test(&cell(*c, Some(b)), *op, k)));
                    }
                    (point, trial_pass)
                } else {
                    let point = self.having_pass(cb, key, &point_aggs, CtxMode::Point)?;
                    let mut trial_pass = Vec::with_capacity(trials as usize);
                    let mut agg_buf: Vec<Value> = Vec::with_capacity(n_aggs);
                    for t in 0..trials {
                        agg_buf.clear();
                        for j in 0..n_aggs {
                            agg_buf.push(states.trial_value(j, t, m));
                        }
                        trial_pass.push(self.having_pass(cb, key, &agg_buf, CtxMode::Trial(t))?);
                    }
                    (point, trial_pass)
                };
                // Classification ranges per aggregate (bootstrap range
                // + monotone bound + small-sample guard).
                let ranges: Vec<RangeVal> = (0..n_aggs)
                    .map(|j| self.agg_range(states, j, m, live))
                    .collect();
                let tri = if live {
                    self.having_tri(cb, key, &point_aggs, &ranges)?
                } else {
                    Tri::from(point)
                };
                let relied = match old.members.get(key) {
                    Some(prev) => match prev.relied_on() {
                        Some(r) if point != r || trial_pass.iter().any(|&t| t != r) => {
                            violated = true;
                            0
                        }
                        Some(r) => {
                            if r {
                                2
                            } else {
                                1
                            }
                        }
                        None => 0,
                    },
                    None => 0,
                };
                PubEntry::Member(PublishedMember {
                    point,
                    trials: trial_pass,
                    tri,
                    relied: std::sync::atomic::AtomicU8::new(relied),
                })
            }
            // golint: allow(panic-surface) -- the root block publishes through
            // build_report, never through publish_entry
            BlockRole::Root => unreachable!(),
        };
        Ok((entry, violated))
    }

    fn having_pass(
        &self,
        cb: &CompiledBlock,
        keys: &[Value],
        aggs: &[Value],
        mode: CtxMode,
    ) -> Result<bool> {
        let ctx = GroupCtx {
            keys,
            aggs,
            agg_ranges: None,
            pubs: &self.published,
            mode,
        };
        for h in &cb.block.having {
            if !eval_predicate(h, &ctx)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn having_tri(
        &self,
        cb: &CompiledBlock,
        keys: &[Value],
        aggs: &[Value],
        ranges: &[RangeVal],
    ) -> Result<Tri> {
        let ctx = GroupCtx {
            keys,
            aggs,
            agg_ranges: Some(ranges),
            pubs: &self.published,
            mode: CtxMode::Classify,
        };
        let mut tri = Tri::True;
        for h in &cb.block.having {
            tri = tri.and(eval_tri(h, &ctx)?);
            if tri == Tri::False {
                break;
            }
        }
        Ok(tri)
    }

    /// Variation range of one aggregate of a group, for classification.
    ///
    /// Combines three sources of knowledge (paper §3.2 plus two
    /// engineering refinements documented in DESIGN.md):
    /// * the bootstrap range `[min(û) − ε, max(û) + ε]` of the
    ///   multiplicity-scaled replicas;
    /// * a **monotone lower bound** — COUNT and SUM over non-negative
    ///   values can only grow, so their raw running total bounds the final
    ///   value from below *with certainty*;
    /// * a **small-sample guard** — with fewer than `min_group_obs`
    ///   observations the bootstrap spread is untrustworthy, so only the
    ///   monotone bound is used (upper end stays unbounded).
    fn agg_range(
        &self,
        states: &gola_agg::ReplicatedStates,
        j: usize,
        m: f64,
        live: bool,
    ) -> RangeVal {
        let value = states.value(j, m);
        if !live {
            return match value.as_f64() {
                Some(v) => RangeVal::point(v),
                None => RangeVal::Exact(value),
            };
        }
        let lb = states.lower_bound(j);
        let tiny = self.config.bootstrap.trials == 0
            || states
                .observations(j)
                .is_some_and(|o| o < self.config.min_group_obs);
        if tiny {
            return match lb {
                Some(l) => RangeVal::Num {
                    lo: l,
                    hi: f64::INFINITY,
                },
                None => RangeVal::Unknown,
            };
        }
        match value.as_f64() {
            Some(v) => {
                let reps = states.replica_values(j, m);
                let vr = VariationRange::from_replicas(v, &reps, self.config.envelope_epsilon());
                let lo = lb.map_or(vr.lo, |l| vr.lo.max(l));
                RangeVal::num(lo, vr.hi.max(lo))
            }
            None => match lb {
                Some(l) => RangeVal::Num {
                    lo: l,
                    hi: f64::INFINITY,
                },
                None => RangeVal::Unknown,
            },
        }
    }

    /// Combine semi-join partial aggregates: merge, per output group, the
    /// partitions whose membership key currently passes — main states by
    /// point membership, each replica by that trial's membership.
    fn semi_join_states<'a>(
        &self,
        cb: &CompiledBlock,
        rt: &'a BlockRuntime,
        id: gola_expr::SubqueryId,
        negated: bool,
    ) -> Result<Vec<EffGroupCertain<'a>>> {
        let trials = self.config.bootstrap.trials;
        let members = &self.published[id.0].members;
        let mut merged: FxHashMap<Vec<Value>, (gola_agg::ReplicatedStates, bool)> =
            FxHashMap::default();
        // Merge in sorted (mkey, gkey) order: float merge order across
        // membership partitions is part of the published value, so it must
        // be a function of the keys alone — never of hash layout.
        for (mkey, groups) in sorted_entries(&rt.semi_groups) {
            let entry = members.get(mkey.as_slice());
            let point_in = entry.map(|m| m.point).unwrap_or(false) != negated;
            for (gkey, states) in sorted_entries(groups) {
                let acc = merged.entry(gkey.clone()).or_insert_with(|| {
                    (
                        gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials),
                        false,
                    )
                });
                if point_in {
                    acc.0.merge_main(states);
                    // Point support: at least one partition of this group
                    // passes the membership test at point values.
                    acc.1 = true;
                }
                for b in 0..trials {
                    let in_set = entry
                        .map(|m| m.trials.get(b as usize).copied().unwrap_or(m.point))
                        .unwrap_or(false);
                    if in_set != negated {
                        acc.0.merge_replica(b, states);
                    }
                }
            }
        }
        let mut result: Vec<(Cow<'a, [Value]>, EffStates<'a>, bool)> = sorted_into_entries(merged)
            .into_iter()
            .map(|(k, (v, sup))| (Cow::Owned(k), EffStates::Owned(v), sup))
            .collect();
        if result.is_empty() && cb.num_keys() == 0 {
            result.push((
                Cow::Owned(Vec::new()),
                EffStates::Owned(gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials)),
                true,
            ));
        }
        Ok(result)
    }

    /// Merge the uncertain set's current contributions into snapshots of
    /// the affected groups; untouched groups are borrowed.
    ///
    /// The third element of each entry is *point support*: whether the
    /// group has at least one supporting tuple under point evaluation — a
    /// deterministic fold, or an uncertain tuple whose predicate passes at
    /// point values. A group fed only by uncertain tuples that all fail at
    /// point does not exist in the point answer (the exact engine never
    /// creates it), so callers must not materialize or publish it.
    fn effective_states<'a>(
        &self,
        cb: &CompiledBlock,
        rt: &'a BlockRuntime,
    ) -> Result<Vec<EffGroupCertain<'a>>> {
        let trials = self.config.bootstrap.trials;
        if let Some((id, _, negated)) = &cb.semi_join {
            return self.semi_join_states(cb, rt, *id, *negated);
        }
        let pubs = &self.published;
        // Fast path: a single membership predicate (Q18-shaped semi-joins
        // whose aggregates are not mergeable).
        // Per-trial inclusion is then one hash lookup plus direct reads of
        // the published per-trial membership bits, instead of a full
        // expression evaluation per (tuple, trial).
        let fast_member = match &cb.lin_filters[..] {
            [Expr::InSubquery { id, key, negated }] => Some((*id, key, *negated)),
            _ => None,
        };
        // Cache for the scalar-comparison fast path: correlation key →
        // RHS value at point (index 0) and per trial (1 + b).
        let mut rhs_cache: FxHashMap<Vec<Value>, Vec<Option<f64>>> = FxHashMap::default();
        // Per touched group: merged states plus point support (true when the
        // group has a deterministic fold or any point-passing uncertain
        // tuple).
        let mut touched: FxHashMap<Vec<Value>, (gola_agg::ReplicatedStates, bool)> =
            FxHashMap::default();
        // The uncertain set carries its bootstrap weights — computed once
        // when each tuple entered the set — so no weight kernel runs here
        // no matter how many batches a tuple stays uncertain.
        let us = &rt.uncertain;
        let chunk = &us.chunk;
        let stride = trials as usize;
        let key_plans: Vec<ExprSrc<'_>> = cb.lin_group_by.iter().map(plan_src).collect();
        let arg_plans: Vec<ExprSrc<'_>> = cb.lin_agg_args.iter().map(plan_src).collect();
        let mut keybuf: Vec<Value> = Vec::with_capacity(key_plans.len());
        let mut argbuf: Vec<Value> = Vec::with_capacity(arg_plans.len());
        let mut skeybuf: Vec<Value> = Vec::new();
        let mut rowbuf: Vec<Value> = Vec::new();
        let mut maskbuf: Vec<u32> = Vec::with_capacity(stride);
        for i in 0..us.len() {
            let tweights = &us.weights[i * stride..(i + 1) * stride];
            let mut filled = false;
            keybuf.clear();
            for p in &key_plans {
                keybuf.push(src_value(
                    chunk,
                    i,
                    p,
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                    CtxMode::Point,
                )?);
            }
            argbuf.clear();
            for p in &arg_plans {
                argbuf.push(src_value(
                    chunk,
                    i,
                    p,
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                    CtxMode::Point,
                )?);
            }
            if !touched.contains_key(keybuf.as_slice()) {
                let det = rt.groups.get(keybuf.as_slice()).cloned();
                let supported = det.is_some();
                let base =
                    det.unwrap_or_else(|| gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials));
                touched.insert(keybuf.clone(), (base, supported));
            }
            // golint: allow(panic-surface) -- inserted above if missing
            let slot = touched.get_mut(keybuf.as_slice()).expect("group touched");
            let (entry, supported) = (&mut slot.0, &mut slot.1);
            if let Some((id, key_exprs, negated)) = fast_member {
                let mut member_key: Vec<Value> = Vec::with_capacity(key_exprs.len());
                for k in key_exprs {
                    member_key.push(src_value(
                        chunk,
                        i,
                        &plan_src(k),
                        &mut rowbuf,
                        &mut filled,
                        pubs,
                        CtxMode::Point,
                    )?);
                }
                let null_key = member_key.iter().any(Value::is_null);
                let entry_pub = self.published[id.0].members.get(member_key.as_slice());
                let point_pass =
                    !null_key && entry_pub.map(|m| m.point).unwrap_or(false) != negated;
                if point_pass {
                    entry.update_main(&argbuf);
                    *supported = true;
                }
                // Mask out excluded trials (weight 0 is a no-op) and run the
                // fused replica fold per aggregate lane.
                maskbuf.clear();
                maskbuf.extend((0..trials).map(|b| {
                    let w = tweights[b as usize];
                    if w == 0 || null_key {
                        return 0;
                    }
                    let in_set = entry_pub
                        .map(|m| m.trials.get(b as usize).copied().unwrap_or(m.point))
                        .unwrap_or(false);
                    if in_set != negated {
                        w
                    } else {
                        0
                    }
                }));
                for (j, v) in argbuf.iter().enumerate() {
                    entry.fold_value_replicas(j, v, &maskbuf);
                }
                continue;
            }
            // Scalar-comparison fast path: evaluate the LHS once per tuple
            // and the RHS once per (correlation key, trial).
            if let Some(fsc) = &cb.fast_scalar_cmp {
                let lhs = src_value(
                    chunk,
                    i,
                    &plan_src(&fsc.lhs),
                    &mut rowbuf,
                    &mut filled,
                    pubs,
                    CtxMode::Point,
                )?
                .as_f64();
                skeybuf.clear();
                for k in &fsc.key {
                    skeybuf.push(src_value(
                        chunk,
                        i,
                        &plan_src(k),
                        &mut rowbuf,
                        &mut filled,
                        pubs,
                        CtxMode::Point,
                    )?);
                }
                if !rhs_cache.contains_key(skeybuf.as_slice()) {
                    if !filled {
                        chunk.row_values_into(i, &mut rowbuf);
                    }
                    let mut vals = Vec::with_capacity(1 + trials as usize);
                    let point_ctx = TupleCtx {
                        row: &rowbuf,
                        pubs,
                        mode: CtxMode::Point,
                    };
                    vals.push(eval(&fsc.rhs, &point_ctx)?.as_f64());
                    for b in 0..trials {
                        let trial_ctx = TupleCtx {
                            row: &rowbuf,
                            pubs,
                            mode: CtxMode::Trial(b),
                        };
                        vals.push(eval(&fsc.rhs, &trial_ctx)?.as_f64());
                    }
                    rhs_cache.insert(skeybuf.clone(), vals);
                }
                // golint: allow(panic-surface) -- inserted above if missing
                let rhs = rhs_cache.get(skeybuf.as_slice()).expect("rhs cached");
                // A null LHS compares false against every RHS under every
                // operator: no point support, no trial folds (the group
                // stays marked as touched either way).
                let Some(lx) = lhs else {
                    continue;
                };
                if rhs[0].is_some_and(|y| cmp_op(fsc.op, lx, y)) {
                    entry.update_main(&argbuf);
                    *supported = true;
                }
                // Mask excluded trials to weight 0 (a no-op fold) and run
                // the fused replica fold per aggregate lane.
                fill_cmp_mask(&mut maskbuf, tweights, &rhs[1..], fsc.op, lx);
                for (j, v) in argbuf.iter().enumerate() {
                    entry.fold_value_replicas(j, v, &maskbuf);
                }
                continue;
            }
            // Generic path needs the full row for predicate evaluation.
            if !filled {
                chunk.row_values_into(i, &mut rowbuf);
            }
            // Point inclusion.
            let point_ctx = TupleCtx {
                row: &rowbuf,
                pubs,
                mode: CtxMode::Point,
            };
            let mut pass = true;
            for f in &cb.lin_filters {
                if !eval_predicate(f, &point_ctx)? {
                    pass = false;
                    break;
                }
            }
            if pass {
                entry.update_main(&argbuf);
                *supported = true;
            }
            // Per-trial inclusion with the trial's own upstream values.
            for b in 0..trials {
                let w = tweights[b as usize];
                if w == 0 {
                    continue;
                }
                let trial_ctx = TupleCtx {
                    row: &rowbuf,
                    pubs,
                    mode: CtxMode::Trial(b),
                };
                let mut pass = true;
                for f in &cb.lin_filters {
                    if !eval_predicate(f, &trial_ctx)? {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    entry.update_replica(b, &argbuf, w as f64);
                }
            }
        }
        // Assemble in sorted key order: `out` feeds PUB_CHUNK chunking and
        // the report's row order, so its order must not leak hash layout.
        let mut out: Vec<(Cow<'a, [Value]>, EffStates<'a>, bool)> =
            Vec::with_capacity(rt.groups.len() + touched.len());
        for (key, states) in sorted_entries(&rt.groups) {
            if !touched.contains_key(key) {
                out.push((
                    Cow::Borrowed(key.as_slice()),
                    EffStates::Borrowed(states),
                    true,
                ));
            }
        }
        for (key, (states, supported)) in sorted_into_entries(touched) {
            out.push((Cow::Owned(key), EffStates::Owned(states), supported));
        }
        out.sort_by(|a, b| cmp_values(&a.0, &b.0));
        // A global aggregate over no data still has one (empty) group.
        if out.is_empty() && cb.num_keys() == 0 {
            out.push((
                Cow::Owned(Vec::new()),
                EffStates::Owned(gola_agg::ReplicatedStates::new(&cb.agg_kinds, trials)),
                true,
            ));
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Failure recovery
    // -----------------------------------------------------------------

    /// Reset and replay every transitive consumer of the violated blocks.
    fn recover(&mut self, violated: &[usize], upto: usize, m: f64, last: bool) -> Result<()> {
        let mut affected: FxHashSet<usize> = FxHashSet::default();
        let mut stack: Vec<usize> = violated.to_vec();
        while let Some(v) = stack.pop() {
            for &c in &self.consumers[v] {
                if affected.insert(c) {
                    stack.push(c);
                }
            }
        }
        self.recomputations += affected.len();
        // Replay wavefront by wavefront: blocks within a wave are mutually
        // independent, so each batch can be re-ingested across the whole
        // wave in parallel. Interleaving batches across a wave's blocks is
        // semantically identical to replaying each block to completion —
        // same per-block ingest sequence, and no block of a wave reads
        // another's output.
        let waves = self.meta.wavefronts();
        for wave in &waves {
            let replay: Vec<usize> = wave
                .iter()
                .copied()
                .filter(|b| affected.contains(b))
                .collect();
            if replay.is_empty() {
                continue;
            }
            for &b in &replay {
                self.runtimes[b].reset();
            }
            let mut scratch = BatchTiming::default();
            for j in 0..=upto {
                let batch = self.partitioner.batch(j);
                self.ingest_wave(&replay, &batch, &mut scratch)?;
            }
            // Publish once per block, from fresh (post-replay) state.
            for &b in &replay {
                self.publish_block(b, m, last)?;
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Answer materialization
    // -----------------------------------------------------------------

    /// Materialize the root block's current answer. Also returns, per
    /// output group (pre-ORDER BY/LIMIT), the certainty claim made about
    /// it, so `step` can hold the executor to its earlier claims.
    fn build_report(
        &self,
        batch_index: usize,
        m: f64,
        last: bool,
    ) -> Result<(BatchReport, GroupClaims)> {
        let root = self.meta.root;
        let cb = &self.compiled[root];
        let rt = &self.runtimes[root];
        let pubs = &self.published;
        let trials = self.config.bootstrap.trials;
        // Finite-population correction for the reported CIs: the stream is
        // a without-replacement sample of a known population, so replica
        // spread overstates the remaining uncertainty by 1/√(1 − n/N) (see
        // the gola-bootstrap ci module docs). At the final batch the factor
        // is pinned to exactly zero — the answer is the full-data answer —
        // rather than trusting `1 − n/N` to reach 0.0 in floats.
        //
        // `N` here is the partitioner's **live** population, not a
        // query-start snapshot. Under a growing stream the old snapshot-N
        // let n reach N while data was still arriving, collapsing the
        // correction (and the CI) to zero mid-stream; with the live N an
        // append strictly widens or holds the correction, and `last` — the
        // only thing that pins it to exactly 0.0 — exists only once the
        // stream is closed and drained.
        let rows_seen = self.partitioner.rows_seen_through(batch_index);
        let total_rows = self.partitioner.total_rows();
        let fpc = if last || total_rows == 0 {
            0.0
        } else {
            (1.0 - rows_seen as f64 / total_rows as f64).max(0.0).sqrt()
        };
        if gola_obs::enabled() {
            self.session_metrics().fpc.set(fpc);
        }
        let n_keys = cb.num_keys();
        let n_aggs = cb.agg_kinds.len();
        let eff = self.effective_states(cb, rt)?;

        // Per-stratum estimation (DESIGN.md §3.10): when the stream is
        // stratified on one of this block's group-key columns, each group
        // is a without-replacement sample of *its own stratum*, so its
        // multiplicity is `m_h = N_h / n_h` and its FPC is
        // `sqrt(1 - n_h / N_h)` — an exhausted (rare, oversampled) stratum
        // reaches m_h = 1, fpc_h = 0 and reports exactly, batches before
        // the uniform design would get there.
        let strat_key_idx: Option<usize> = self
            .partitioner
            .stratify_column()
            .and_then(|col| (0..n_keys).find(|&i| cb.block.agg_row_schema.field(i).name == col));

        // Post-projection (identity when absent).
        let identity: Vec<Expr> = (0..cb.block.agg_row_schema.len()).map(Expr::col).collect();
        let post: &[Expr] = cb.block.post_project.as_deref().unwrap_or(&identity);
        // Which output columns carry sampling error at all?
        let has_error: Vec<bool> = post
            .iter()
            .map(|e| {
                let mut cols = Vec::new();
                e.collect_columns(&mut cols);
                cols.iter().any(|&c| c >= n_keys) || e.has_subquery_ref()
            })
            .collect();

        let mut rows: Vec<Row> = Vec::new();
        let mut flags: Vec<bool> = Vec::new();
        let mut row_fpc: Vec<f64> = Vec::new();
        let mut claims: Vec<(Vec<Value>, bool)> = Vec::new();
        let mut cell_replicas: Vec<Vec<Vec<f64>>> = Vec::new(); // per row, per col

        for (key, states, supported) in &eff {
            let key: &[Value] = key.as_ref();
            // Group-level multiplicity and FPC: per-stratum when this
            // group's key column is the stratification column, global
            // otherwise (also the fallback for keys no stratum matches,
            // e.g. groups keyed on a derived expression).
            let (gm, gfpc) = strat_key_idx
                .and_then(|ki| self.partitioner.stratum_rate(&key[ki], batch_index))
                .filter(|&(n_h, _)| n_h > 0)
                .map(|(n_h, cap_h)| {
                    let m_h = cap_h as f64 / n_h as f64;
                    let fpc_h = if last {
                        0.0
                    } else {
                        (1.0 - n_h as f64 / cap_h as f64).max(0.0).sqrt()
                    };
                    (m_h, fpc_h)
                })
                .unwrap_or((m, fpc));
            // A group with no point support does not exist in the point
            // answer (its only would-be members are uncertain tuples that
            // all fail at point values) — the exact engine never creates
            // it, so it must not appear as an output row.
            if !supported && n_keys > 0 {
                claims.push((key.to_vec(), false));
                continue;
            }
            let states = states.get();
            let point_aggs: Vec<Value> = (0..n_aggs).map(|j| states.value(j, gm)).collect();
            if !self.having_pass(cb, key, &point_aggs, CtxMode::Point)? {
                claims.push((key.to_vec(), false));
                continue;
            }
            // Row certainty — "membership in the result can no longer
            // change" — needs both legs. (a) The group has deterministic
            // support: a group fed only by uncertain tuples vanishes if
            // they all resolve false, so its presence is not settled.
            // (b) Any HAVING classifies deterministically true over the
            // aggregates' variation ranges. After the final batch the
            // answer is exact, so every row is certain.
            let member_certain = last || n_keys == 0 || self.group_membership_certain(cb, rt, key);
            let certain = member_certain
                && if cb.block.having.is_empty() || last {
                    true
                } else {
                    let ranges: Vec<RangeVal> = (0..n_aggs)
                        .map(|j| self.agg_range(states, j, gm, !last))
                        .collect();
                    self.having_tri(cb, key, &point_aggs, &ranges)? == Tri::True
                };
            claims.push((key.to_vec(), certain));
            let ctx = GroupCtx {
                keys: key,
                aggs: &point_aggs,
                agg_ranges: None,
                pubs,
                mode: CtxMode::Point,
            };
            let out_vals: Result<Vec<Value>> = post.iter().map(|e| eval(e, &ctx)).collect();
            // Per-trial output values for error estimation.
            let mut col_reps: Vec<Vec<f64>> = vec![Vec::new(); post.len()];
            let mut agg_buf: Vec<Value> = Vec::with_capacity(n_aggs);
            for t in 0..trials {
                agg_buf.clear();
                for j in 0..n_aggs {
                    agg_buf.push(states.trial_value(j, t, gm));
                }
                let ctx = GroupCtx {
                    keys: key,
                    aggs: &agg_buf,
                    agg_ranges: None,
                    pubs,
                    mode: CtxMode::Trial(t),
                };
                for (c, e) in post.iter().enumerate() {
                    if !has_error[c] {
                        continue;
                    }
                    if let Some(x) = eval(e, &ctx)?.as_f64() {
                        col_reps[c].push(x);
                    }
                }
            }
            rows.push(Row::new(out_vals?));
            flags.push(certain);
            row_fpc.push(gfpc);
            cell_replicas.push(col_reps);
        }

        // ORDER BY / LIMIT with flags and estimates kept aligned.
        let mut perm: Vec<usize> = (0..rows.len()).collect();
        if !cb.block.order_by.is_empty() {
            let keys = &cb.block.order_by;
            perm.sort_by(|&a, &b| {
                for &(idx, desc) in keys {
                    let ord = rows[a].get(idx).total_cmp(rows[b].get(idx));
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        } else if n_keys > 0 {
            // Deterministic default order: by group key columns.
            perm.sort_by(|&a, &b| {
                for idx in 0..n_keys.min(rows[a].len()) {
                    let ord = rows[a].get(idx).total_cmp(rows[b].get(idx));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = cb.block.limit {
            perm.truncate(n);
        }

        let mut table_rows = Vec::with_capacity(perm.len());
        let mut row_certain = Vec::with_capacity(perm.len());
        let mut estimates = Vec::new();
        for (out_idx, &src) in perm.iter().enumerate() {
            table_rows.push(rows[src].clone());
            row_certain.push(flags[src]);
            for (c, reps) in cell_replicas[src].iter().enumerate() {
                if !has_error[c] {
                    continue;
                }
                if let Some(v) = rows[src].get(c).as_f64() {
                    estimates.push(CellEstimate {
                        row: out_idx,
                        col: c,
                        estimate: Estimate::new(v, reps.clone()).with_fpc(row_fpc[src]),
                    });
                }
            }
        }
        let table =
            gola_storage::Table::new_unchecked(Arc::clone(&cb.block.output_schema), table_rows);
        // While a growing stream is open, at least one more batch can
        // always appear — advertise it so `BatchReport::is_final()` never
        // claims finality for a schedule that can still grow. Static
        // partitioners are always finalized, so they are unaffected.
        let known_batches = if self.partitioner.finalized() {
            self.num_batches()
        } else {
            self.num_batches() + 1
        };
        let report = BatchReport {
            batch_index,
            num_batches: known_batches,
            rows_seen,
            total_rows,
            multiplicity: m,
            table,
            estimates,
            row_certain,
            ci_level: self.config.ci_level,
            uncertain_tuples: self.uncertain_tuples(),
            recomputations: self.recomputations,
            batch_time: Duration::ZERO,
            cumulative_time: Duration::ZERO,
            timing: BatchTiming::default(),
            contract: None,
        };
        Ok((report, claims))
    }

    /// Is this group's *presence* in the root output settled? A group
    /// backed by at least one deterministically-folded tuple can never
    /// vanish. A group whose only support is cached uncertain tuples — or,
    /// for semi-join aggregation, partitions whose membership is still
    /// range-classified `Maybe` — disappears if they all resolve false.
    fn group_membership_certain(
        &self,
        cb: &CompiledBlock,
        rt: &BlockRuntime,
        key: &[Value],
    ) -> bool {
        if let Some((id, _, negated)) = &cb.semi_join {
            let members = &self.published[id.0].members;
            // golint: allow(hash-order-leak) -- order-insensitive boolean OR
            // over partitions; no value escapes
            return rt.semi_groups.iter().any(|(mkey, groups)| {
                if !groups.contains_key(key) {
                    return false;
                }
                // Deterministically *in* the (possibly negated) set.
                match members.get(mkey.as_slice()) {
                    Some(m) if *negated => m.tri == Tri::False,
                    Some(m) => m.tri == Tri::True,
                    None => false,
                }
            });
        }
        rt.groups.contains_key(key)
    }

    // -----------------------------------------------------------------
    // Static (non-streaming) blocks
    // -----------------------------------------------------------------

    fn compute_static_blocks(&mut self, catalog: &Catalog) -> Result<()> {
        let order = self.meta.order.clone();
        for &b in &order {
            if self.compiled[b].block.is_streaming || self.compiled[b].block.role == BlockRole::Root
            {
                continue;
            }
            let cb = &self.compiled[b];
            let table = catalog.get(&cb.block.source_table)?;
            // Exact fold: no bootstrap replicas (a full table has no
            // sampling error).
            let mut groups: FxHashMap<Vec<Value>, Vec<gola_agg::AggState>> = FxHashMap::default();
            let mut joined_buf: Vec<Row> = Vec::new();
            for row in table.rows() {
                joined_buf.clear();
                join_one(&row, &self.dims[b], &cb.block.dims, &mut joined_buf)?;
                'rows: for joined in &joined_buf {
                    let ctx = TupleCtx {
                        row: joined.values(),
                        pubs: &self.published,
                        mode: CtxMode::Point,
                    };
                    for f in &cb.block.filters {
                        if !eval_predicate(f, &ctx)? {
                            continue 'rows;
                        }
                    }
                    let key: Result<Vec<Value>> =
                        cb.block.group_by.iter().map(|g| eval(g, &ctx)).collect();
                    let args: Result<Vec<Value>> =
                        cb.block.aggs.iter().map(|a| eval(&a.arg, &ctx)).collect();
                    let args = args?;
                    let states = groups
                        .entry(key?)
                        .or_insert_with(|| cb.agg_kinds.iter().map(|k| k.new_state()).collect());
                    for (s, v) in states.iter_mut().zip(&args) {
                        s.update(v, 1.0);
                    }
                }
            }
            if groups.is_empty() && cb.num_keys() == 0 {
                groups.insert(
                    Vec::new(),
                    cb.agg_kinds.iter().map(|k| k.new_state()).collect(),
                );
            }
            let trials = self.config.bootstrap.trials as usize;
            let mut out = Published {
                live: false,
                ..Default::default()
            };
            for (key, states) in sorted_into_entries(groups) {
                let aggs: Vec<Value> = states.iter().map(|s| s.finalize(1.0)).collect();
                match cb.block.role {
                    BlockRole::Scalar => {
                        // golint: allow(panic-surface) -- Scalar blocks are
                        // built with a post projection by MetaPlan construction
                        let post = &cb.block.post_project.as_ref().expect("scalar projection")[0];
                        let ctx = GroupCtx {
                            keys: &key,
                            aggs: &aggs,
                            agg_ranges: None,
                            pubs: &self.published,
                            mode: CtxMode::Point,
                        };
                        let value = eval(post, &ctx)?;
                        let env = RangeVal::Exact(value.clone());
                        out.scalars.insert(
                            key.into(),
                            PublishedScalar {
                                trials: vec![value.clone(); trials],
                                value,
                                env,
                                used: AtomicBool::new(false),
                            },
                        );
                    }
                    BlockRole::Membership => {
                        let point = self.having_pass(cb, &key, &aggs, CtxMode::Point)?;
                        out.members.insert(
                            key.into(),
                            PublishedMember {
                                point,
                                trials: vec![point; trials],
                                tri: Tri::from(point),
                                relied: std::sync::atomic::AtomicU8::new(0),
                            },
                        );
                    }
                    // golint: allow(panic-surface) -- the loop above skips the
                    // root block; only Scalar/Membership reach here
                    BlockRole::Root => unreachable!(),
                }
            }
            self.published[b] = out;
            self.runtimes[b].static_done = true;
        }
        Ok(())
    }
}

/// The subquery id of a block's fast scalar comparison (by construction it
/// exists when `fast_scalar_cmp` is set).
fn fsc_subquery(cb: &CompiledBlock) -> usize {
    let mut refs = Vec::new();
    cb.fast_scalar_cmp
        .as_ref()
        // golint: allow(panic-surface) -- callers test fast_scalar_cmp.is_some()
        // before dispatching here
        .expect("caller checked")
        .rhs
        .collect_subquery_refs(&mut refs);
    refs[0].0
}

/// Classify `lhs θ rhs-range` exactly like the generic three-valued
/// evaluator's comparison branch (NULL operands filter deterministically).
fn classify_cmp(lhs: &Value, op: gola_expr::BinOp, rhs: &RangeVal) -> Tri {
    use gola_expr::BinOp;
    if lhs.is_null() {
        return Tri::False;
    }
    if matches!(rhs, RangeVal::Exact(v) if v.is_null()) {
        return Tri::False;
    }
    let l = RangeVal::Exact(lhs.clone());
    match op {
        BinOp::Lt => l.lt(rhs),
        BinOp::LtEq => l.le(rhs),
        BinOp::Gt => l.gt(rhs),
        BinOp::GtEq => l.ge(rhs),
        BinOp::Eq => l.eq_tri(rhs),
        BinOp::NotEq => l.eq_tri(rhs).not(),
        _ => Tri::Maybe,
    }
}

/// Join one fact row against the block's broadcast dimensions, appending
/// every joined output row to `out`. Shared with the baseline executors.
pub fn join_one(
    fact_row: &Row,
    dim_maps: &[FxHashMap<Vec<Value>, Vec<Row>>],
    dims: &[gola_plan::DimJoin],
    out: &mut Vec<Row>,
) -> Result<()> {
    out.push(fact_row.clone());
    // golint: allow(hash-order-leak) -- both are slices walked in slice
    // order; the names collide with hash-typed symbols elsewhere
    for (d, map) in dims.iter().zip(dim_maps) {
        let mut next = Vec::with_capacity(out.len());
        // golint: allow(hash-order-leak) -- `out` here is a Vec of rows; the
        // name collides with a hash-typed symbol elsewhere
        for acc in out.iter() {
            let ctx = ExactContext::new(acc);
            let key: Result<Vec<Value>> = d.fact_keys.iter().map(|k| eval(k, &ctx)).collect();
            let key = key?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = map.get(&key) {
                for mrow in matches {
                    next.push(acc.concat(mrow));
                }
            }
        }
        *out = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gola_expr::BinOp;

    #[test]
    fn classify_cmp_matches_range_semantics() {
        let r = RangeVal::num(10.0, 20.0);
        // Deterministic on either side of the range.
        assert_eq!(classify_cmp(&Value::Float(5.0), BinOp::Lt, &r), Tri::True);
        assert_eq!(classify_cmp(&Value::Float(25.0), BinOp::Lt, &r), Tri::False);
        assert_eq!(classify_cmp(&Value::Float(15.0), BinOp::Lt, &r), Tri::Maybe);
        assert_eq!(classify_cmp(&Value::Float(25.0), BinOp::Gt, &r), Tri::True);
        assert_eq!(
            classify_cmp(&Value::Float(15.0), BinOp::GtEq, &r),
            Tri::Maybe
        );
        // Equality against a non-degenerate range can only be refuted.
        assert_eq!(classify_cmp(&Value::Float(5.0), BinOp::Eq, &r), Tri::False);
        assert_eq!(classify_cmp(&Value::Float(15.0), BinOp::Eq, &r), Tri::Maybe);
    }

    #[test]
    fn classify_cmp_null_semantics() {
        let r = RangeVal::num(0.0, 1.0);
        // NULL lhs: the predicate is SQL NULL → deterministically filtered.
        assert_eq!(classify_cmp(&Value::Null, BinOp::Lt, &r), Tri::False);
        // NULL rhs (finished empty subquery): also filtered.
        assert_eq!(
            classify_cmp(&Value::Float(1.0), BinOp::Lt, &RangeVal::Exact(Value::Null)),
            Tri::False
        );
        // Unknown rhs: cannot classify.
        assert_eq!(
            classify_cmp(&Value::Float(1.0), BinOp::Lt, &RangeVal::Unknown),
            Tri::Maybe
        );
    }

    #[test]
    fn classify_cmp_boundaries() {
        let r = RangeVal::num(10.0, 20.0);
        // x = hi: x < u still possible only if u > 20 — impossible → False.
        assert_eq!(classify_cmp(&Value::Float(20.0), BinOp::Lt, &r), Tri::False);
        // x = lo: x <= u always true (u >= 10).
        assert_eq!(
            classify_cmp(&Value::Float(10.0), BinOp::LtEq, &r),
            Tri::True
        );
        // Degenerate (point) range: fully deterministic.
        let p = RangeVal::point(5.0);
        assert_eq!(classify_cmp(&Value::Float(5.0), BinOp::Eq, &p), Tri::True);
        assert_eq!(
            classify_cmp(&Value::Float(5.0), BinOp::NotEq, &p),
            Tri::False
        );
    }
}
