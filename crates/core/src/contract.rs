//! Honoring `ERROR`/`WITHIN` query contracts (BlinkDB-style, PAPERS.md
//! §1203.5485) on top of the mini-batch executor.
//!
//! The [`ContractDriver`] sits between [`crate::OnlineExecution`] and the
//! executor. For an **error-bounded** query it annotates every report with
//! the achieved relative error (worst CI half-width over |value| across
//! all estimated cells, at the contract's confidence) and stops at the
//! first batch where it meets the target — a decision computed purely from
//! the report's floats, so it is deterministic and thread-invariant. For a
//! **time-bounded** query it adapts the *effective* mini-batch size to the
//! deadline (PF-OLA-style report coalescing, PAPERS.md §1206.0051): it
//! tracks an EMA of per-batch wall time from the executor's existing
//! timings, folds several partitioner batches into one published report
//! when the remaining budget allows, and stops once one more batch would
//! cross the deadline. The *stopping batch index* of a deadline run is the
//! one explicitly nondeterministic output of this module — it depends on
//! observed throughput; everything inside each report remains the
//! deterministic function of (data, seed, batch index) it always was.
//!
//! Wall-clock reads go through the blessed [`Stopwatch`] only, keeping
//! golint's schedule-leak rule clean.

use gola_common::timing::Stopwatch;
use gola_plan::QueryContract;

use crate::report::{BatchReport, ContractProgress, ContractStop};

/// Per-run state for one contract. Created by the session when the query
/// (or the config) carries a contract.
#[derive(Debug)]
pub(crate) struct ContractDriver {
    contract: QueryContract,
    /// Planted-bug knob ([`crate::OnlineConfig::stopping_rule_absolute`]):
    /// compare the CI half-width against the target absolutely instead of
    /// relative to the estimate. Exists so the contract-conformance oracle
    /// has a real bug to catch.
    absolute_rule: bool,
    /// Started immediately before the first batch of a deadline run.
    clock: Option<Stopwatch>,
    /// EMA (α = 0.5) of observed per-batch wall seconds.
    ema_batch_secs: Option<f64>,
    stopped: bool,
}

impl ContractDriver {
    pub fn new(contract: QueryContract, absolute_rule: bool) -> ContractDriver {
        ContractDriver {
            contract,
            absolute_rule,
            clock: None,
            ema_batch_secs: None,
            stopped: false,
        }
    }

    pub fn contract(&self) -> QueryContract {
        self.contract
    }

    /// `true` once a stop decision has been made; the execution yields no
    /// further reports.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Start the deadline clock (idempotent; no-op for error contracts,
    /// which never read the wall clock).
    pub fn start_clock(&mut self) {
        if matches!(self.contract, QueryContract::Within { .. }) && self.clock.is_none() {
            self.clock = Some(Stopwatch::start());
        }
    }

    /// Feed one executed batch's wall time into the throughput model.
    pub fn note_batch(&mut self, secs: f64) {
        self.ema_batch_secs = Some(match self.ema_batch_secs {
            None => secs,
            Some(e) => 0.5 * e + 0.5 * secs,
        });
    }

    /// How many partitioner batches to fold into the next published report
    /// (PF-OLA report coalescing). Error-bounded runs always report every
    /// batch — each report is a stopping opportunity. Deadline runs size
    /// the round so roughly two more reports fit in the remaining budget.
    pub fn batches_this_round(&self, remaining: usize) -> usize {
        let QueryContract::Within { seconds } = self.contract else {
            return 1;
        };
        let (Some(clock), Some(ema)) = (&self.clock, self.ema_batch_secs) else {
            return 1; // first round: no throughput observation yet
        };
        let remaining = remaining.max(1);
        if ema <= 0.0 {
            // Batches are too fast to time: no need to coalesce.
            return 1;
        }
        let left = seconds - clock.elapsed().as_secs_f64();
        let mut c = 1usize;
        // Grow the round while twice its predicted cost still fits, so a
        // second report remains affordable after this one.
        while c < remaining && (c + 1) as f64 * ema * 2.0 <= left {
            c += 1;
        }
        c
    }

    /// Inspect the report that ends a round, annotate it with contract
    /// progress, and decide whether the run stops here.
    pub fn observe(&mut self, report: &mut BatchReport, finished: bool) {
        let stop = match self.contract {
            QueryContract::Error { target, confidence } => {
                let achieved = report.achieved_rel_error(confidence);
                let met = if self.absolute_rule {
                    // Deliberately broken stopping rule (see field docs):
                    // a small-magnitude estimate trivially "meets" an
                    // absolute half-width bound long before its relative
                    // error does.
                    worst_abs_half_width(report, confidence).is_some_and(|h| h <= target)
                } else {
                    achieved.is_some_and(|a| a <= target)
                };
                if finished {
                    Some(ContractStop::Exhausted)
                } else if met {
                    Some(ContractStop::ErrorTargetMet)
                } else {
                    None
                }
            }
            QueryContract::Within { seconds } => {
                let elapsed = self
                    .clock
                    .as_ref()
                    .map_or(0.0, |c| c.elapsed().as_secs_f64());
                let next = self.ema_batch_secs.unwrap_or(0.0);
                if finished {
                    Some(ContractStop::Exhausted)
                } else if elapsed + next >= seconds {
                    Some(ContractStop::DeadlineReached)
                } else {
                    None
                }
            }
        };
        let confidence = match self.contract {
            QueryContract::Error { confidence, .. } => confidence,
            QueryContract::Within { .. } => report.ci_level,
        };
        report.contract = Some(ContractProgress {
            contract: self.contract,
            achieved_rel_error: report.achieved_rel_error(confidence),
            stop,
        });
        if stop.is_some() {
            self.stopped = true;
        }
    }
}

/// Worst (largest) CI half-width across estimated cells, in absolute
/// units. `None` if any cell lacks an interval.
fn worst_abs_half_width(report: &BatchReport, level: f64) -> Option<f64> {
    let mut worst: Option<f64> = None;
    for cell in &report.estimates {
        let half = cell.estimate.ci_percentile(level)?.half_width();
        worst = Some(worst.map_or(half, |w: f64| w.max(half)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{BatchTiming, CellEstimate};
    use gola_bootstrap::Estimate;
    use gola_common::{row, DataType, Schema};
    use gola_storage::Table;
    use std::sync::Arc;
    use std::time::Duration;

    fn report(value: f64, replicas: Vec<f64>, finalish: bool) -> BatchReport {
        let schema = Arc::new(Schema::from_pairs(&[("v", DataType::Float)]));
        BatchReport {
            batch_index: if finalish { 7 } else { 2 },
            num_batches: 8,
            rows_seen: 100,
            total_rows: 800,
            multiplicity: 8.0,
            table: Table::new_unchecked(schema, vec![row![value]]),
            estimates: vec![CellEstimate {
                row: 0,
                col: 0,
                estimate: Estimate::new(value, replicas),
            }],
            row_certain: vec![false],
            ci_level: 0.95,
            uncertain_tuples: 0,
            recomputations: 0,
            batch_time: Duration::from_millis(5),
            cumulative_time: Duration::from_millis(15),
            timing: BatchTiming::default(),
            contract: None,
        }
    }

    #[test]
    fn error_contract_stops_on_tight_ci_only() {
        let c = QueryContract::Error {
            target: 0.05,
            confidence: 0.95,
        };
        // Loose CI: half-width ~50% of the value — keep running.
        let mut d = ContractDriver::new(c, false);
        let mut loose = report(10.0, vec![5.0, 7.0, 10.0, 13.0, 15.0], false);
        d.observe(&mut loose, false);
        assert!(!d.is_stopped());
        let p = loose.contract.as_ref().unwrap();
        assert!(p.stop.is_none());
        assert!(p.achieved_rel_error.unwrap() > 0.05);
        // Tight CI: half-width ~1% — stop.
        let mut tight = report(10.0, vec![9.9, 9.95, 10.0, 10.05, 10.1], false);
        d.observe(&mut tight, false);
        assert!(d.is_stopped());
        assert_eq!(
            tight.contract.unwrap().stop,
            Some(ContractStop::ErrorTargetMet)
        );
    }

    #[test]
    fn exhaustion_beats_error_target() {
        let c = QueryContract::Error {
            target: 0.0001,
            confidence: 0.95,
        };
        let mut d = ContractDriver::new(c, false);
        let mut r = report(10.0, vec![5.0, 10.0, 15.0], true);
        d.observe(&mut r, true);
        assert!(d.is_stopped());
        assert_eq!(r.contract.unwrap().stop, Some(ContractStop::Exhausted));
    }

    #[test]
    fn absolute_rule_stops_small_values_prematurely() {
        // value 0.05, CI half-width ~0.04 → relative error ~80%, but the
        // absolute half-width is far under the 5% "target". The broken
        // rule stops; the honest rule keeps running.
        let replicas = vec![0.01, 0.03, 0.05, 0.07, 0.09];
        let c = QueryContract::Error {
            target: 0.05,
            confidence: 0.95,
        };
        let mut broken = ContractDriver::new(c, true);
        let mut r = report(0.05, replicas.clone(), false);
        broken.observe(&mut r, false);
        assert_eq!(
            r.contract.as_ref().unwrap().stop,
            Some(ContractStop::ErrorTargetMet),
            "the planted bug must fire on small-magnitude estimates"
        );
        assert!(r.contract.unwrap().achieved_rel_error.unwrap() > 0.05);
        let mut honest = ContractDriver::new(c, false);
        let mut r = report(0.05, replicas, false);
        honest.observe(&mut r, false);
        assert!(r.contract.unwrap().stop.is_none());
    }

    #[test]
    fn deadline_coalescing_grows_with_budget() {
        let c = QueryContract::Within { seconds: 60.0 };
        let mut d = ContractDriver::new(c, false);
        assert_eq!(d.batches_this_round(100), 1, "no observations yet");
        d.start_clock();
        d.note_batch(0.1); // 100ms/batch, 60s budget → large rounds
        let round = d.batches_this_round(100);
        assert!(round > 10, "round {round}");
        assert_eq!(d.batches_this_round(4), 4, "capped by remaining");
        // A nearly-spent budget forces the round back to 1.
        let mut tight = ContractDriver::new(QueryContract::Within { seconds: 1e-9 }, false);
        tight.start_clock();
        tight.note_batch(0.1);
        assert_eq!(tight.batches_this_round(100), 1);
    }

    #[test]
    fn deadline_stop_is_flagged() {
        let mut d = ContractDriver::new(QueryContract::Within { seconds: 1e-9 }, false);
        d.start_clock();
        d.note_batch(0.5);
        let mut r = report(10.0, vec![9.0, 10.0, 11.0], false);
        d.observe(&mut r, false);
        assert!(d.is_stopped());
        assert_eq!(
            r.contract.unwrap().stop,
            Some(ContractStop::DeadlineReached)
        );
    }
}
