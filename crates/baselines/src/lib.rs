//! Baseline execution strategies that G-OLA is evaluated against.
//!
//! * [`cdm`] — **classical delta maintenance** (paper §3.1, Figure 3(b)
//!   baseline): monotonic blocks are maintained incrementally, but every
//!   block whose predicates reference an inner aggregate is recomputed over
//!   *all* data seen so far at every batch, because the inner value changed.
//!   Total work across `k` batches is `O(k²)·n` versus G-OLA's `O(k)·n`.
//! * [`naive`] — full per-batch recomputation of the whole query with the
//!   exact engine (no incremental state at all).
//! * [`ola`] — classic Hellerstein-style online aggregation: incremental
//!   maintenance plus CLT confidence intervals, but **only** for monotonic
//!   SPJA queries — nested aggregates are rejected, demonstrating exactly
//!   the limitation G-OLA lifts.

pub mod cdm;
pub mod naive;
pub mod ola;

pub use cdm::CdmExecutor;
pub use naive::NaiveExecutor;
pub use ola::ClassicOlaExecutor;
