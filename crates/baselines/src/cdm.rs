//! Classical delta maintenance (CDM).
//!
//! The paper's §3.1 baseline: aggregation is blocking, so when an inner
//! aggregate's value is refined, every decision the outer query made
//! becomes suspect and classical incremental view maintenance has no
//! recourse but to re-evaluate the outer query over *all previously seen
//! data*. Blocks whose predicates carry no subquery references stay
//! incremental (they are monotonic); every block with uncertain predicates
//! is recomputed from scratch each batch.
//!
//! CDM maintains the same bootstrap replicas as G-OLA so the per-tuple work
//! is comparable and the Figure 3(b) time ratio isolates the *algorithmic*
//! difference (O(|Dᵢ|) vs O(|ΔDᵢ| + |Uᵢ|) per batch).

use std::sync::Arc;
use std::time::Duration;

use gola_common::timing::Stopwatch;

use gola_agg::ReplicatedStates;
use gola_bootstrap::Estimate;
use gola_common::{Error, FxHashMap, Result, Row, Value};
use gola_core::compiled::CompiledBlock;
use gola_core::executor::join_one;
use gola_core::report::{BatchReport, CellEstimate};
use gola_core::runtime::{
    CtxMode, GroupCtx, Published, PublishedMember, PublishedScalar, TupleCtx,
};
use gola_core::OnlineConfig;
use gola_expr::eval::{eval, eval_predicate, ExactContext};
use gola_expr::{Expr, RangeVal, Tri};
use gola_plan::{BlockRole, MetaPlan};
use gola_storage::{Catalog, MiniBatchPartitioner};

/// Classical-delta-maintenance executor with the same reporting interface
/// as [`gola_core::OnlineExecutor`].
pub struct CdmExecutor {
    config: OnlineConfig,
    meta: MetaPlan,
    compiled: Vec<CompiledBlock>,
    partitioner: Arc<MiniBatchPartitioner>,
    dims: Vec<Vec<FxHashMap<Vec<Value>, Vec<Row>>>>,
    /// Incrementally maintained group states (blocks without uncertain
    /// predicates).
    groups: Vec<FxHashMap<Vec<Value>, ReplicatedStates>>,
    published: Vec<Published>,
    /// All fact tuples seen so far — CDM must retain them to recompute.
    seen: Vec<(u64, Row)>,
    batches_done: usize,
    cumulative: Duration,
    /// Tuples re-processed due to outer-query recomputation (telemetry).
    pub reprocessed_tuples: u64,
}

impl CdmExecutor {
    pub fn new(
        catalog: &Catalog,
        meta: MetaPlan,
        partitioner: Arc<MiniBatchPartitioner>,
        config: OnlineConfig,
    ) -> Result<CdmExecutor> {
        config.validate()?;
        let compiled: Vec<CompiledBlock> = meta
            .blocks
            .iter()
            .cloned()
            .map(CompiledBlock::new)
            .collect();
        let mut dims = Vec::with_capacity(compiled.len());
        for cb in &compiled {
            let mut block_dims = Vec::with_capacity(cb.block.dims.len());
            for d in &cb.block.dims {
                let table = catalog.get(&d.table)?;
                let mut map: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
                for row in table.rows() {
                    let ctx = ExactContext::new(&row);
                    let key: Result<Vec<Value>> =
                        d.dim_keys.iter().map(|k| eval(k, &ctx)).collect();
                    let key = key?;
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    map.entry(key).or_default().push(row.clone());
                }
                block_dims.push(map);
            }
            dims.push(block_dims);
        }
        for cb in &compiled {
            if !cb.block.is_streaming {
                return Err(Error::plan(
                    "CDM baseline supports fully-streaming queries only",
                ));
            }
        }
        let groups = (0..compiled.len()).map(|_| FxHashMap::default()).collect();
        let published = (0..compiled.len()).map(|_| Published::default()).collect();
        Ok(CdmExecutor {
            config,
            meta,
            compiled,
            partitioner,
            dims,
            groups,
            published,
            seen: Vec::new(),
            batches_done: 0,
            cumulative: Duration::ZERO,
            reprocessed_tuples: 0,
        })
    }

    pub fn is_finished(&self) -> bool {
        self.batches_done == self.partitioner.num_batches()
    }

    pub fn batches_done(&self) -> usize {
        self.batches_done
    }

    /// Process the next batch. Non-monotonic blocks re-read all seen data.
    pub fn step(&mut self) -> Result<BatchReport> {
        if self.is_finished() {
            return Err(Error::exec("all mini-batches already processed"));
        }
        let start = Stopwatch::start();
        let i = self.batches_done;
        let batch = self.partitioner.batch(i);
        let m = self.partitioner.multiplicity_after(i);
        let last = i + 1 == self.partitioner.num_batches();
        let prev_seen = self.seen.len();
        self.seen
            .extend(batch.tuple_ids.iter().copied().zip(batch.rows()));

        let order = self.meta.order.clone();
        for &b in &order {
            let incremental = !self.compiled[b].block.has_uncertain_predicates();
            let range = if incremental {
                // Monotonic: fold only the new tuples.
                prev_seen..self.seen.len()
            } else {
                // Non-monotonic: the inner aggregate moved → recompute over
                // everything (the classical behaviour).
                self.groups[b].clear();
                self.reprocessed_tuples += self.seen.len() as u64;
                0..self.seen.len()
            };
            self.fold_range(b, range)?;
            if self.compiled[b].block.role != BlockRole::Root {
                self.publish_block(b, m, last)?;
            }
        }

        let mut report = self.build_report(i, m)?;
        self.batches_done += 1;
        let elapsed = start.elapsed();
        self.cumulative += elapsed;
        report.batch_time = elapsed;
        report.cumulative_time = self.cumulative;
        Ok(report)
    }

    fn fold_range(&mut self, b: usize, range: std::ops::Range<usize>) -> Result<()> {
        let mut groups = std::mem::take(&mut self.groups[b]);
        let cb = &self.compiled[b];
        let trials = self.config.bootstrap.trials;
        let mut joined_buf: Vec<Row> = Vec::new();
        for idx in range {
            let (tid, fact_row) = &self.seen[idx];
            joined_buf.clear();
            join_one(fact_row, &self.dims[b], &cb.block.dims, &mut joined_buf)?;
            'rows: for joined in &joined_buf {
                let point_ctx = TupleCtx {
                    row: joined.values(),
                    pubs: &self.published,
                    mode: CtxMode::Point,
                };
                for f in &cb.certain_filters {
                    if !eval_predicate(f, &point_ctx)? {
                        continue 'rows;
                    }
                }
                let key: Result<Vec<Value>> = cb
                    .block
                    .group_by
                    .iter()
                    .map(|g| eval(g, &point_ctx))
                    .collect();
                let args: Result<Vec<Value>> = cb
                    .block
                    .aggs
                    .iter()
                    .map(|a| eval(&a.arg, &point_ctx))
                    .collect();
                let args = args?;
                let states = groups
                    .entry(key?)
                    .or_insert_with(|| ReplicatedStates::new(&cb.agg_kinds, trials));
                // Point inclusion under the current inner estimates.
                let mut pass = true;
                for f in &cb.uncertain_filters {
                    if !eval_predicate(f, &point_ctx)? {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    states.update_main(&args);
                }
                // Per-trial inclusion with that trial's inner values.
                for t in 0..trials {
                    let w = self.config.bootstrap.weight(*tid, t);
                    if w == 0 {
                        continue;
                    }
                    let trial_ctx = TupleCtx {
                        row: joined.values(),
                        pubs: &self.published,
                        mode: CtxMode::Trial(t),
                    };
                    let mut pass = true;
                    for f in &cb.uncertain_filters {
                        if !eval_predicate(f, &trial_ctx)? {
                            pass = false;
                            break;
                        }
                    }
                    if pass {
                        states.update_replica(t, &args, w as f64);
                    }
                }
            }
        }
        self.groups[b] = groups;
        Ok(())
    }

    fn publish_block(&mut self, b: usize, m: f64, last: bool) -> Result<()> {
        let cb = &self.compiled[b];
        let groups = &self.groups[b];
        let trials = self.config.bootstrap.trials;
        let n_aggs = cb.agg_kinds.len();
        let mut out = Published {
            live: !last,
            ..Default::default()
        };
        let empty;
        let iter: Box<dyn Iterator<Item = (&Vec<Value>, &ReplicatedStates)>> =
            if groups.is_empty() && cb.num_keys() == 0 {
                empty = ReplicatedStates::new(&cb.agg_kinds, trials);
                static EMPTY_KEY: Vec<Value> = Vec::new();
                Box::new(std::iter::once((&EMPTY_KEY, &empty)))
            } else {
                Box::new(groups.iter())
            };
        for (key, states) in iter {
            let point_aggs: Vec<Value> = (0..n_aggs).map(|j| states.value(j, m)).collect();
            match cb.block.role {
                BlockRole::Scalar => {
                    let post = &cb.block.post_project.as_ref().expect("scalar projection")[0];
                    let ctx = GroupCtx {
                        keys: key,
                        aggs: &point_aggs,
                        agg_ranges: None,
                        pubs: &self.published,
                        mode: CtxMode::Point,
                    };
                    let value = eval(post, &ctx)?;
                    let mut trial_vals = Vec::with_capacity(trials as usize);
                    for t in 0..trials {
                        let agg_t: Vec<Value> =
                            (0..n_aggs).map(|j| states.trial_value(j, t, m)).collect();
                        let ctx = GroupCtx {
                            keys: key,
                            aggs: &agg_t,
                            agg_ranges: None,
                            pubs: &self.published,
                            mode: CtxMode::Trial(t),
                        };
                        trial_vals.push(eval(post, &ctx)?);
                    }
                    out.scalars.insert(
                        key.as_slice().into(),
                        PublishedScalar {
                            value,
                            trials: trial_vals,
                            // CDM has no envelopes — it never classifies.
                            env: RangeVal::Unknown,
                            used: std::sync::atomic::AtomicBool::new(false),
                        },
                    );
                }
                BlockRole::Membership => {
                    let point = self.having_pass(cb, key, &point_aggs, CtxMode::Point)?;
                    let mut trial_pass = Vec::with_capacity(trials as usize);
                    for t in 0..trials {
                        let agg_t: Vec<Value> =
                            (0..n_aggs).map(|j| states.trial_value(j, t, m)).collect();
                        trial_pass.push(self.having_pass(cb, key, &agg_t, CtxMode::Trial(t))?);
                    }
                    out.members.insert(
                        key.as_slice().into(),
                        PublishedMember {
                            point,
                            trials: trial_pass,
                            tri: Tri::Maybe,
                            relied: std::sync::atomic::AtomicU8::new(0),
                        },
                    );
                }
                BlockRole::Root => unreachable!(),
            }
        }
        self.published[b] = out;
        Ok(())
    }

    fn having_pass(
        &self,
        cb: &CompiledBlock,
        keys: &[Value],
        aggs: &[Value],
        mode: CtxMode,
    ) -> Result<bool> {
        let ctx = GroupCtx {
            keys,
            aggs,
            agg_ranges: None,
            pubs: &self.published,
            mode,
        };
        for h in &cb.block.having {
            if !eval_predicate(h, &ctx)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn build_report(&self, batch_index: usize, m: f64) -> Result<BatchReport> {
        let root = self.meta.root;
        let cb = &self.compiled[root];
        let trials = self.config.bootstrap.trials;
        let n_keys = cb.num_keys();
        let n_aggs = cb.agg_kinds.len();
        let identity: Vec<Expr> = (0..cb.block.agg_row_schema.len()).map(Expr::col).collect();
        let post: &[Expr] = cb.block.post_project.as_deref().unwrap_or(&identity);
        let has_error: Vec<bool> = post
            .iter()
            .map(|e| {
                let mut cols = Vec::new();
                e.collect_columns(&mut cols);
                cols.iter().any(|&c| c >= n_keys) || e.has_subquery_ref()
            })
            .collect();

        let empty;
        let groups = &self.groups[root];
        let iter: Box<dyn Iterator<Item = (&Vec<Value>, &ReplicatedStates)>> =
            if groups.is_empty() && n_keys == 0 {
                empty = ReplicatedStates::new(&cb.agg_kinds, trials);
                static EMPTY_KEY: Vec<Value> = Vec::new();
                Box::new(std::iter::once((&EMPTY_KEY, &empty)))
            } else {
                Box::new(groups.iter())
            };

        let mut rows: Vec<Row> = Vec::new();
        let mut cell_replicas: Vec<Vec<Vec<f64>>> = Vec::new();
        for (key, states) in iter {
            let point_aggs: Vec<Value> = (0..n_aggs).map(|j| states.value(j, m)).collect();
            if !self.having_pass(cb, key, &point_aggs, CtxMode::Point)? {
                continue;
            }
            let ctx = GroupCtx {
                keys: key,
                aggs: &point_aggs,
                agg_ranges: None,
                pubs: &self.published,
                mode: CtxMode::Point,
            };
            let out_vals: Result<Vec<Value>> = post.iter().map(|e| eval(e, &ctx)).collect();
            let mut col_reps: Vec<Vec<f64>> = vec![Vec::new(); post.len()];
            for t in 0..trials {
                let agg_t: Vec<Value> = (0..n_aggs).map(|j| states.trial_value(j, t, m)).collect();
                let ctx = GroupCtx {
                    keys: key,
                    aggs: &agg_t,
                    agg_ranges: None,
                    pubs: &self.published,
                    mode: CtxMode::Trial(t),
                };
                for (c, e) in post.iter().enumerate() {
                    if has_error[c] {
                        if let Some(x) = eval(e, &ctx)?.as_f64() {
                            col_reps[c].push(x);
                        }
                    }
                }
            }
            rows.push(Row::new(out_vals?));
            cell_replicas.push(col_reps);
        }

        let mut perm: Vec<usize> = (0..rows.len()).collect();
        if !cb.block.order_by.is_empty() {
            let keys = &cb.block.order_by;
            perm.sort_by(|&a, &b| {
                for &(idx, desc) in keys.iter() {
                    let ord = rows[a].get(idx).total_cmp(rows[b].get(idx));
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        } else if n_keys > 0 {
            perm.sort_by(|&a, &b| {
                for idx in 0..n_keys.min(rows[a].len()) {
                    let ord = rows[a].get(idx).total_cmp(rows[b].get(idx));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = cb.block.limit {
            perm.truncate(n);
        }

        // Finite-population correction, same convention as the G-OLA
        // executor: √(1 − n/N), pinned to exactly 0 at the final batch so
        // the last CI collapses to a point.
        let rows_seen = self.partitioner.rows_seen_through(batch_index);
        let total_rows = self.partitioner.total_rows();
        let last = batch_index + 1 == self.partitioner.num_batches();
        let fpc = if last || total_rows == 0 {
            0.0
        } else {
            (1.0 - rows_seen as f64 / total_rows as f64).max(0.0).sqrt()
        };
        let mut table_rows = Vec::with_capacity(perm.len());
        let mut estimates = Vec::new();
        for (out_idx, &src) in perm.iter().enumerate() {
            table_rows.push(rows[src].clone());
            for (c, reps) in cell_replicas[src].iter().enumerate() {
                if has_error[c] {
                    if let Some(v) = rows[src].get(c).as_f64() {
                        estimates.push(CellEstimate {
                            row: out_idx,
                            col: c,
                            estimate: Estimate::new(v, reps.clone()).with_fpc(fpc),
                        });
                    }
                }
            }
        }
        let row_certain = vec![false; table_rows.len()];
        let table =
            gola_storage::Table::new_unchecked(Arc::clone(&cb.block.output_schema), table_rows);
        Ok(BatchReport {
            batch_index,
            num_batches: self.partitioner.num_batches(),
            rows_seen,
            total_rows,
            multiplicity: m,
            table,
            estimates,
            row_certain,
            ci_level: self.config.ci_level,
            uncertain_tuples: 0,
            recomputations: 0,
            batch_time: Duration::ZERO,
            cumulative_time: Duration::ZERO,
            timing: Default::default(),
            contract: None,
        })
    }
}
