//! Naive per-batch recomputation.
//!
//! The simplest online strategy: after every mini-batch, run the whole
//! query from scratch on the data seen so far with the exact engine. No
//! incremental state, no error estimation — a pure latency baseline.

use std::sync::Arc;
use std::time::Duration;

use gola_common::timing::Stopwatch;

use gola_common::{Error, Result, Row};
use gola_engine::BatchEngine;
use gola_plan::QueryGraph;
use gola_storage::{Catalog, MiniBatchPartitioner, Table};

/// Re-runs the exact engine on the seen prefix after every batch.
pub struct NaiveExecutor {
    catalog: Catalog,
    graph: QueryGraph,
    stream_table: String,
    partitioner: Arc<MiniBatchPartitioner>,
    seen: Vec<Row>,
    batches_done: usize,
    cumulative: Duration,
}

/// A minimal per-batch result for the naive baseline.
#[derive(Debug, Clone)]
pub struct NaiveReport {
    pub batch_index: usize,
    pub num_batches: usize,
    pub rows_seen: usize,
    pub table: Table,
    pub batch_time: Duration,
    pub cumulative_time: Duration,
}

impl NaiveExecutor {
    pub fn new(
        catalog: &Catalog,
        graph: QueryGraph,
        stream_table: &str,
        partitioner: Arc<MiniBatchPartitioner>,
    ) -> Result<NaiveExecutor> {
        if !catalog.contains(stream_table) {
            return Err(Error::catalog(format!(
                "unknown stream table '{stream_table}'"
            )));
        }
        Ok(NaiveExecutor {
            catalog: catalog.clone(),
            graph,
            stream_table: stream_table.to_ascii_lowercase(),
            partitioner,
            seen: Vec::new(),
            batches_done: 0,
            cumulative: Duration::ZERO,
        })
    }

    pub fn is_finished(&self) -> bool {
        self.batches_done == self.partitioner.num_batches()
    }

    pub fn step(&mut self) -> Result<NaiveReport> {
        if self.is_finished() {
            return Err(Error::exec("all mini-batches already processed"));
        }
        let start = Stopwatch::start();
        let i = self.batches_done;
        let batch = self.partitioner.batch(i);
        self.seen.extend(batch.rows());

        // Swap in the seen prefix as the stream table and re-run exactly.
        let schema = Arc::clone(self.partitioner.table().schema());
        let prefix = Arc::new(Table::new_unchecked(schema, self.seen.clone()));
        let mut catalog = self.catalog.clone();
        catalog.register_or_replace(&self.stream_table, prefix);
        let table = BatchEngine::new(&catalog).execute(&self.graph)?;

        self.batches_done += 1;
        let elapsed = start.elapsed();
        self.cumulative += elapsed;
        Ok(NaiveReport {
            batch_index: i,
            num_batches: self.partitioner.num_batches(),
            rows_seen: self.seen.len(),
            table,
            batch_time: elapsed,
            cumulative_time: self.cumulative,
        })
    }
}
