//! Classic online aggregation (Hellerstein, Haas & Wang, SIGMOD '97).
//!
//! Incremental running aggregates with closed-form CLT confidence
//! intervals. Exactly as the G-OLA paper notes, this only works for
//! *monotonic* SPJA queries: any nested aggregate subquery is rejected at
//! construction — the limitation G-OLA exists to lift.
//!
//! Interval formulas (per group, `n` = tuples folded into the group, `s` =
//! sample standard deviation of the aggregate argument, `m` = multiplicity,
//! `fpc = √(1 − n_seen/N)` the finite-population correction):
//!
//! * `AVG`:   mean ± z·s/√n · fpc
//! * `SUM`:   m·Σx ± z·m·s·√n · fpc
//! * `COUNT`: m·n ± z·m·√(n·(1 − n/n_seen)) · fpc

use std::sync::Arc;
use std::time::Duration;

use gola_common::timing::Stopwatch;

use gola_agg::AggKind;
use gola_bootstrap::ci::z_for_level;
use gola_bootstrap::ConfidenceInterval;
use gola_common::stats::Welford;
use gola_common::{Error, FxHashMap, Result, Row, Value};
use gola_core::compiled::CompiledBlock;
use gola_core::executor::join_one;
use gola_core::runtime::{CtxMode, GroupCtx, TupleCtx};
use gola_expr::eval::{eval, eval_predicate, ExactContext};
use gola_expr::Expr;
use gola_plan::{AggCall, BlockRole, MetaPlan};
use gola_storage::{Catalog, MiniBatchPartitioner};

/// One interval-annotated output cell.
#[derive(Debug, Clone)]
pub struct OlaCell {
    pub row: usize,
    pub col: usize,
    pub estimate: f64,
    pub ci: ConfidenceInterval,
}

/// Per-batch output of classic OLA.
#[derive(Debug, Clone)]
pub struct OlaReport {
    pub batch_index: usize,
    pub num_batches: usize,
    pub rows_seen: usize,
    pub total_rows: usize,
    pub table: gola_storage::Table,
    pub cells: Vec<OlaCell>,
    pub batch_time: Duration,
    pub cumulative_time: Duration,
}

struct GroupState {
    /// Welford accumulator per aggregate argument.
    accs: Vec<Welford>,
}

/// Classic OLA executor for monotonic single-block aggregate queries.
pub struct ClassicOlaExecutor {
    compiled: CompiledBlock,
    partitioner: Arc<MiniBatchPartitioner>,
    dims: Vec<FxHashMap<Vec<Value>, Vec<Row>>>,
    groups: FxHashMap<Vec<Value>, GroupState>,
    ci_level: f64,
    batches_done: usize,
    rows_folded: usize,
    cumulative: Duration,
}

impl ClassicOlaExecutor {
    /// Build from a compiled meta plan. Errors when the query is not a
    /// single monotonic SPJA block or uses aggregates outside
    /// COUNT/SUM/AVG.
    pub fn new(
        catalog: &Catalog,
        meta: &MetaPlan,
        partitioner: Arc<MiniBatchPartitioner>,
        ci_level: f64,
    ) -> Result<ClassicOlaExecutor> {
        if meta.blocks.len() != 1 {
            return Err(Error::plan(
                "classic OLA only supports monotonic SPJA queries \
                 (no nested aggregate subqueries)",
            ));
        }
        let block = meta.root_block().clone();
        if block.role != BlockRole::Root || !block.having.is_empty() {
            return Err(Error::plan("classic OLA does not support HAVING"));
        }
        for AggCall { kind, .. } in &block.aggs {
            match kind {
                AggKind::Count | AggKind::Sum | AggKind::Avg => {}
                other => {
                    return Err(Error::plan(format!(
                        "classic OLA has closed-form intervals only for \
                         COUNT/SUM/AVG, not {other}"
                    )))
                }
            }
        }
        let compiled = CompiledBlock::new(block);
        let mut dims = Vec::with_capacity(compiled.block.dims.len());
        for d in &compiled.block.dims {
            let table = catalog.get(&d.table)?;
            let mut map: FxHashMap<Vec<Value>, Vec<Row>> = FxHashMap::default();
            for row in table.rows() {
                let ctx = ExactContext::new(&row);
                let key: Result<Vec<Value>> = d.dim_keys.iter().map(|k| eval(k, &ctx)).collect();
                let key = key?;
                if key.iter().any(Value::is_null) {
                    continue;
                }
                map.entry(key).or_default().push(row.clone());
            }
            dims.push(map);
        }
        Ok(ClassicOlaExecutor {
            compiled,
            partitioner,
            dims,
            groups: FxHashMap::default(),
            ci_level,
            batches_done: 0,
            rows_folded: 0,
            cumulative: Duration::ZERO,
        })
    }

    pub fn is_finished(&self) -> bool {
        self.batches_done == self.partitioner.num_batches()
    }

    pub fn step(&mut self) -> Result<OlaReport> {
        if self.is_finished() {
            return Err(Error::exec("all mini-batches already processed"));
        }
        let start = Stopwatch::start();
        let i = self.batches_done;
        let batch = self.partitioner.batch(i);
        let cb = &self.compiled;
        let no_pubs: Vec<gola_core::runtime::Published> = Vec::new();
        let mut joined_buf: Vec<Row> = Vec::new();
        for (_tid, fact_row) in batch.iter() {
            joined_buf.clear();
            join_one(&fact_row, &self.dims, &cb.block.dims, &mut joined_buf)?;
            'rows: for joined in &joined_buf {
                let ctx = TupleCtx {
                    row: joined.values(),
                    pubs: &no_pubs,
                    mode: CtxMode::Point,
                };
                for f in &cb.block.filters {
                    if !eval_predicate(f, &ctx)? {
                        continue 'rows;
                    }
                }
                let key: Result<Vec<Value>> =
                    cb.block.group_by.iter().map(|g| eval(g, &ctx)).collect();
                let state = self.groups.entry(key?).or_insert_with(|| GroupState {
                    accs: vec![Welford::new(); cb.block.aggs.len()],
                });
                for (acc, call) in state.accs.iter_mut().zip(&cb.block.aggs) {
                    if let Some(x) = eval(&call.arg, &ctx)?.as_f64() {
                        acc.add(x);
                    }
                }
                self.rows_folded += 1;
            }
        }

        let report = self.build_report(i)?;
        self.batches_done += 1;
        let elapsed = start.elapsed();
        self.cumulative += elapsed;
        let mut report = report;
        report.batch_time = elapsed;
        report.cumulative_time = self.cumulative;
        Ok(report)
    }

    fn build_report(&self, batch_index: usize) -> Result<OlaReport> {
        let cb = &self.compiled;
        let n_keys = cb.num_keys();
        let n_seen = self.partitioner.rows_seen_through(batch_index) as f64;
        let total = self.partitioner.total_rows() as f64;
        let m = total / n_seen;
        let fpc = (1.0 - n_seen / total).max(0.0).sqrt();
        let z = z_for_level(self.ci_level);

        let identity: Vec<Expr> = (0..cb.block.agg_row_schema.len()).map(Expr::col).collect();
        let post: &[Expr] = cb.block.post_project.as_deref().unwrap_or(&identity);
        let no_pubs: Vec<gola_core::runtime::Published> = Vec::new();

        let mut entries: Vec<(&Vec<Value>, &GroupState)> = self.groups.iter().collect();
        entries.sort_by(|a, b| {
            for (x, y) in a.0.iter().zip(b.0.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let empty_key: Vec<Value> = Vec::new();
        let empty_state = GroupState {
            accs: vec![Welford::new(); cb.block.aggs.len()],
        };
        if entries.is_empty() && n_keys == 0 {
            entries.push((&empty_key, &empty_state));
        }

        let mut rows = Vec::with_capacity(entries.len());
        let mut cells = Vec::new();
        for (out_idx, (key, state)) in entries.iter().enumerate() {
            // Point estimates + closed-form errors per aggregate.
            let mut agg_vals = Vec::with_capacity(state.accs.len());
            let mut agg_ses = Vec::with_capacity(state.accs.len());
            for (acc, call) in state.accs.iter().zip(&cb.block.aggs) {
                let n = acc.count;
                let s = acc.variance_sample().map(f64::sqrt).unwrap_or(0.0);
                let (v, se) = match call.kind {
                    AggKind::Avg => {
                        if n == 0.0 {
                            (Value::Null, 0.0)
                        } else {
                            (Value::Float(acc.mean), s / n.sqrt() * fpc)
                        }
                    }
                    AggKind::Sum => {
                        if n == 0.0 {
                            (Value::Null, 0.0)
                        } else {
                            (Value::Float(m * acc.mean * n), m * s * n.sqrt() * fpc)
                        }
                    }
                    AggKind::Count => {
                        let p = if n_seen > 0.0 { n / n_seen } else { 0.0 };
                        (
                            Value::Float(m * n),
                            m * (n * (1.0 - p)).max(0.0).sqrt() * fpc,
                        )
                    }
                    _ => unreachable!("validated in constructor"),
                };
                agg_vals.push(v);
                agg_ses.push(se);
            }
            let ctx = GroupCtx {
                keys: key,
                aggs: &agg_vals,
                agg_ranges: None,
                pubs: &no_pubs,
                mode: CtxMode::Point,
            };
            let out_vals: Result<Vec<Value>> = post.iter().map(|e| eval(e, &ctx)).collect();
            let out_vals = out_vals?;
            // Attach intervals only to cells that are exactly one aggregate
            // column (classic OLA's closed forms do not compose through
            // arbitrary projections).
            for (c, e) in post.iter().enumerate() {
                if let Expr::Column(idx) = e {
                    if *idx >= n_keys {
                        if let Some(v) = out_vals[c].as_f64() {
                            let se = agg_ses[*idx - n_keys];
                            cells.push(OlaCell {
                                row: out_idx,
                                col: c,
                                estimate: v,
                                ci: ConfidenceInterval {
                                    lo: v - z * se,
                                    hi: v + z * se,
                                    level: self.ci_level,
                                },
                            });
                        }
                    }
                }
            }
            rows.push(Row::new(out_vals));
        }
        let table = gola_storage::Table::new_unchecked(Arc::clone(&cb.block.output_schema), rows);
        Ok(OlaReport {
            batch_index,
            num_batches: self.partitioner.num_batches(),
            rows_seen: n_seen as usize,
            total_rows: total as usize,
            table,
            cells,
            batch_time: Duration::ZERO,
            cumulative_time: Duration::ZERO,
        })
    }
}
