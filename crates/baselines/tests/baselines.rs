//! Baseline correctness: CDM and naive must agree with the exact engine
//! (and, per batch, with G-OLA — both report `Q(Dᵢ, k/i)`), and classic OLA
//! must work for monotonic queries while rejecting nested aggregates.

use std::sync::Arc;

use gola_baselines::{CdmExecutor, ClassicOlaExecutor, NaiveExecutor};
use gola_common::rng::SplitMix64;
use gola_common::{DataType, Row, Schema, Value};
use gola_core::{OnlineConfig, OnlineExecutor, OnlineSession};
use gola_storage::{Catalog, MiniBatchPartitioner, Table};

fn sessions_table(n: usize, seed: u64) -> Table {
    let schema = Arc::new(Schema::from_pairs(&[
        ("session_id", DataType::Int),
        ("ad_id", DataType::Int),
        ("buffer_time", DataType::Float),
        ("play_time", DataType::Float),
    ]));
    let mut rng = SplitMix64::new(seed);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            let ad = (rng.next_below(6) + 1) as i64;
            let buffer = 5.0 + 40.0 * rng.next_f64() * rng.next_f64();
            let play = 30.0 + 400.0 * rng.next_f64() + ad as f64 * 10.0;
            Row::new(vec![
                Value::Int(i as i64),
                Value::Int(ad),
                Value::Float(buffer),
                Value::Float(play),
            ])
        })
        .collect();
    Table::new_unchecked(schema, rows)
}

fn catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    c.register("sessions", Arc::new(sessions_table(n, 7)))
        .unwrap();
    c
}

fn approx_eq_tables(a: &Table, b: &Table, tol: f64) {
    assert_eq!(a.num_rows(), b.num_rows());
    for (ra, rb) in a.rows().iter().zip(b.rows()) {
        for (x, y) in ra.iter().zip(rb.iter()) {
            match (x.as_f64(), y.as_f64()) {
                (Some(fx), Some(fy)) => {
                    let scale = fy.abs().max(1.0);
                    assert!((fx - fy).abs() / scale < tol, "{fx} vs {fy}");
                }
                _ => assert_eq!(x, y),
            }
        }
    }
}

const SBI: &str = "SELECT AVG(play_time) FROM sessions \
                   WHERE buffer_time > (SELECT AVG(buffer_time) FROM sessions)";

fn setup(
    sql: &str,
    n: usize,
    k: usize,
) -> (
    Catalog,
    gola_core::PreparedQuery,
    Arc<MiniBatchPartitioner>,
    OnlineConfig,
) {
    let cat = catalog(n);
    let config = OnlineConfig::for_tests(k);
    let session = OnlineSession::new(cat.clone(), config.clone());
    let prepared = session.prepare(sql).unwrap();
    let table = cat.get("sessions").unwrap();
    let partitioner = Arc::new(MiniBatchPartitioner::new(table, k, config.partition_seed).unwrap());
    (cat, prepared, partitioner, config)
}

#[test]
fn cdm_final_matches_exact() {
    for sql in [
        SBI,
        "SELECT SUM(play_time) FROM sessions s \
         WHERE buffer_time > 1.1 * (SELECT AVG(buffer_time) FROM sessions t \
                                    WHERE t.ad_id = s.ad_id)",
        "SELECT COUNT(*) FROM sessions WHERE ad_id IN \
         (SELECT ad_id FROM sessions GROUP BY ad_id HAVING AVG(buffer_time) > 14)",
    ] {
        let (cat, prepared, partitioner, config) = setup(sql, 1500, 6);
        let exact = gola_engine::BatchEngine::new(&cat)
            .execute(&prepared.graph)
            .unwrap();
        let mut cdm = CdmExecutor::new(&cat, prepared.meta.clone(), partitioner, config).unwrap();
        let mut last = None;
        while !cdm.is_finished() {
            last = Some(cdm.step().unwrap());
        }
        approx_eq_tables(&last.unwrap().table, &exact, 1e-6);
    }
}

#[test]
fn cdm_and_gola_agree_every_batch() {
    // Both strategies report Q(Dᵢ, k/i): their point estimates must agree
    // at every batch, not just the last.
    let (cat, prepared, partitioner, config) = setup(SBI, 1200, 6);
    let mut cdm = CdmExecutor::new(
        &cat,
        prepared.meta.clone(),
        Arc::clone(&partitioner),
        config.clone(),
    )
    .unwrap();
    let uniform = Arc::new(gola_storage::Partitioner::Uniform((*partitioner).clone()));
    let mut gola = OnlineExecutor::new(&cat, prepared.meta.clone(), uniform, config).unwrap();
    for _ in 0..6 {
        let a = cdm.step().unwrap();
        let b = gola.step().unwrap();
        approx_eq_tables(&a.table, &b.table, 1e-6);
        // Bootstrap replicas must agree too — same weights, same semantics.
        let ra = &a.estimates[0].estimate;
        let rb = &b.estimates[0].estimate;
        assert_eq!(ra.replicas.len(), rb.replicas.len());
        for (x, y) in ra.replicas.iter().zip(&rb.replicas) {
            assert!((x - y).abs() / y.abs().max(1.0) < 1e-6, "{x} vs {y}");
        }
    }
}

#[test]
fn cdm_work_grows_quadratically() {
    let (cat, prepared, partitioner, config) = setup(SBI, 1200, 6);
    let mut cdm = CdmExecutor::new(&cat, prepared.meta, partitioner, config).unwrap();
    let mut reprocessed = Vec::new();
    while !cdm.is_finished() {
        cdm.step().unwrap();
        reprocessed.push(cdm.reprocessed_tuples);
    }
    // After batch i the outer block has re-read 200·(1+2+…+i) tuples.
    let per = 1200 / 6;
    let expect: Vec<u64> = (1..=6u64).map(|i| per as u64 * i * (i + 1) / 2).collect();
    assert_eq!(reprocessed, expect);
}

#[test]
fn naive_final_matches_exact() {
    let (cat, prepared, partitioner, _config) = setup(SBI, 900, 4);
    let exact = gola_engine::BatchEngine::new(&cat)
        .execute(&prepared.graph)
        .unwrap();
    let mut naive =
        NaiveExecutor::new(&cat, prepared.graph.clone(), "sessions", partitioner).unwrap();
    let mut last = None;
    while !naive.is_finished() {
        last = Some(naive.step().unwrap());
    }
    approx_eq_tables(&last.unwrap().table, &exact, 1e-9);
}

#[test]
fn classic_ola_simple_avg() {
    let sql = "SELECT AVG(play_time) FROM sessions";
    let (cat, prepared, partitioner, config) = setup(sql, 4000, 10);
    let exact = gola_engine::BatchEngine::new(&cat)
        .execute(&prepared.graph)
        .unwrap();
    let truth = exact.rows()[0].get(0).as_f64().unwrap();
    let mut ola =
        ClassicOlaExecutor::new(&cat, &prepared.meta, partitioner, config.ci_level).unwrap();
    let mut widths = Vec::new();
    let mut last = None;
    while !ola.is_finished() {
        let r = ola.step().unwrap();
        let cell = r.cells[0].clone();
        widths.push(cell.ci.width());
        last = Some(r);
    }
    let last = last.unwrap();
    assert!((last.cells[0].estimate - truth).abs() < 1e-9);
    // Final interval collapses (fpc = 0); early intervals cover the truth.
    assert!(widths.last().unwrap() < &1e-9);
    assert!(widths[0] > widths[5]);
    // Early (batch 1) 95% intervals should cover the truth for most
    // partition seeds — a single seed can legitimately miss.
    let mut covered = 0;
    for seed in 0..10u64 {
        let part =
            Arc::new(MiniBatchPartitioner::new(cat.get("sessions").unwrap(), 10, seed).unwrap());
        let mut early = ClassicOlaExecutor::new(&cat, &prepared.meta, part, 0.95).unwrap();
        let r = early.step().unwrap();
        if r.cells[0].ci.contains(truth) {
            covered += 1;
        }
    }
    assert!(
        covered >= 7,
        "early CI covered truth only {covered}/10 times"
    );
}

#[test]
fn classic_ola_grouped_sum_and_count() {
    let sql = "SELECT ad_id, SUM(play_time), COUNT(*) FROM sessions GROUP BY ad_id";
    let (cat, prepared, partitioner, config) = setup(sql, 3000, 6);
    let exact = gola_engine::BatchEngine::new(&cat)
        .execute(&prepared.graph)
        .unwrap();
    let mut ola =
        ClassicOlaExecutor::new(&cat, &prepared.meta, partitioner, config.ci_level).unwrap();
    let mut last = None;
    while !ola.is_finished() {
        last = Some(ola.step().unwrap());
    }
    approx_eq_tables(&last.unwrap().table, &exact, 1e-9);
}

#[test]
fn classic_ola_rejects_nested_aggregates() {
    let (cat, prepared, partitioner, config) = setup(SBI, 600, 3);
    let err = match ClassicOlaExecutor::new(&cat, &prepared.meta, partitioner, config.ci_level) {
        Err(e) => e,
        Ok(_) => panic!("nested aggregates should be rejected"),
    };
    assert!(err.to_string().contains("nested"), "{err}");
}

#[test]
fn classic_ola_rejects_unsupported_aggregates() {
    let sql = "SELECT MEDIAN(play_time) FROM sessions";
    let (cat, prepared, partitioner, config) = setup(sql, 600, 3);
    let err = match ClassicOlaExecutor::new(&cat, &prepared.meta, partitioner, config.ci_level) {
        Err(e) => e,
        Ok(_) => panic!("MEDIAN should be rejected"),
    };
    assert!(err.to_string().contains("closed-form"), "{err}");
}
