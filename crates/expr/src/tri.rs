//! Three-valued (Kleene) logic for predicate classification.
//!
//! A predicate over uncertain values evaluates to [`Tri::True`] or
//! [`Tri::False`] only when the answer cannot change as variation ranges
//! refine; otherwise it is [`Tri::Maybe`] and the tuple belongs in the
//! uncertain set `Uᵢ` (paper §3.2).

/// Three-valued truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tri {
    True,
    False,
    /// The answer may flip as more mini-batches arrive.
    Maybe,
}

impl Tri {
    /// Kleene conjunction.
    pub fn and(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Maybe,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Tri) -> Tri {
        use Tri::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Maybe,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // domain term; `!tri` reads worse
    pub fn not(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Maybe => Tri::Maybe,
        }
    }

    /// `true` iff the truth value can no longer change.
    pub fn is_deterministic(self) -> bool {
        self != Tri::Maybe
    }

    /// Collapse to a bool using the current best estimate (`Maybe` needs a
    /// point decision supplied by the caller).
    pub fn resolve_with(self, point: bool) -> bool {
        match self {
            Tri::True => true,
            Tri::False => false,
            Tri::Maybe => point,
        }
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Tri::*;

    const ALL: [Tri; 3] = [True, False, Maybe];

    #[test]
    fn kleene_tables() {
        assert_eq!(True.and(Maybe), Maybe);
        assert_eq!(False.and(Maybe), False);
        assert_eq!(True.or(Maybe), True);
        assert_eq!(False.or(Maybe), Maybe);
        assert_eq!(Maybe.not(), Maybe);
        assert_eq!(True.not(), False);
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn and_or_commute() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
            }
        }
    }

    #[test]
    fn resolve() {
        assert!(True.resolve_with(false));
        assert!(!False.resolve_with(true));
        assert!(Maybe.resolve_with(true));
        assert!(!Maybe.resolve_with(false));
    }
}
